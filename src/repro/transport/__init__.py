"""Transport substrate: UDP, simplified TCP, FCVC credits, socket striping.

* :mod:`repro.transport.udp` — datagram sockets over the simulated stack.
* :mod:`repro.transport.tcp` — the sliding-window TCP used to drive the
  Figure 15 throughput measurements (dup-ACK fast retransmit + AIMD, so
  reordering and loss have their real effects).
* :mod:`repro.transport.credit` — Kung/Chapman credit-based flow control
  (section 6.3).
* :mod:`repro.transport.endpoint` — the transport-agnostic striping
  endpoint layer: channel-port protocol and sender/receiver pipelines.
* :mod:`repro.transport.discipline` — the striping-discipline registry
  with its receiver-mode and synchronization-model axes.
* :mod:`repro.transport.sync_model` — synchronization models: how the
  endpoints agree on packet order (marker-based, hash-based/marker-free,
  header-based).
* :mod:`repro.transport.health` — channel-health machinery: failure
  detection, the channel lifecycle, the sender stall watch.
* :mod:`repro.transport.socket_striping` — striping across UDP sockets at
  the transport layer (section 6.3's experimental harness).
* :mod:`repro.transport.fabric` — the multi-tenant session fabric: a
  flow table plus a weighted-DRR scheduler mounted above any sender
  pipeline (FQ across flows x SRR across channels).
"""

from repro.transport.endpoint import (
    DISCIPLINES,
    SYNC_MODELS,
    ChannelFailureDetector,
    ChannelLifecycleManager,
    ChannelPort,
    FastStriper,
    HashSyncModel,
    HeaderSyncModel,
    MarkerSyncModel,
    SenderHealthMonitor,
    StripeReceiverPipeline,
    StripeSenderPipeline,
    SynchronizationModel,
    make_discipline,
    make_sync_model,
    receiver_mode_for,
    resolve_discipline,
    sync_model_for,
)
from repro.transport.udp import UDP_HEADER_BYTES, UdpDatagram, UdpLayer, UdpSocket
from repro.transport.tcp import (
    BulkReceiver,
    BulkSender,
    TCP_HEADER_BYTES,
    TcpLayer,
    TcpSegment,
)
from repro.transport.credit import CreditPacket, CreditReceiver, CreditSender
from repro.transport.socket_striping import (
    StripedSocketReceiver,
    StripedSocketSender,
    UdpChannelPort,
)
from repro.transport.session_striping import (
    SessionSocketReceiver,
    SessionSocketSender,
)
from repro.transport.fast_path import (
    FastChannelPort,
    FastStripedReceiver,
    FastStripedSender,
    wire_size,
)
from repro.transport.duplex import DuplexStripedEndpoint, connect_duplex
from repro.transport.fabric import (
    FabricScheduler,
    FlowTable,
    logarithmic_tenant_weights,
)
from repro.transport.tcp_striping import (
    StripedTcpReceiver,
    StripedTcpSender,
    TcpChannelPort,
)

__all__ = [
    "ChannelPort",
    "StripeSenderPipeline",
    "StripeReceiverPipeline",
    "FastStriper",
    "DISCIPLINES",
    "SYNC_MODELS",
    "make_discipline",
    "resolve_discipline",
    "receiver_mode_for",
    "sync_model_for",
    "make_sync_model",
    "SynchronizationModel",
    "MarkerSyncModel",
    "HashSyncModel",
    "HeaderSyncModel",
    "ChannelLifecycleManager",
    "SenderHealthMonitor",
    "UdpChannelPort",
    "FastChannelPort",
    "FastStripedSender",
    "FastStripedReceiver",
    "wire_size",
    "UdpDatagram",
    "UdpLayer",
    "UdpSocket",
    "UDP_HEADER_BYTES",
    "TcpLayer",
    "TcpSegment",
    "BulkSender",
    "BulkReceiver",
    "TCP_HEADER_BYTES",
    "CreditPacket",
    "CreditReceiver",
    "CreditSender",
    "StripedSocketSender",
    "StripedSocketReceiver",
    "SessionSocketSender",
    "SessionSocketReceiver",
    "ChannelFailureDetector",
    "DuplexStripedEndpoint",
    "connect_duplex",
    "FlowTable",
    "FabricScheduler",
    "logarithmic_tenant_weights",
    "StripedTcpSender",
    "StripedTcpReceiver",
    "TcpChannelPort",
]
