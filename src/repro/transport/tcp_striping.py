"""Striping across TCP connections — the paper's §2 transport channels.

"Since most transport protocols like TCP provide a stream service, it is
possible to think of a channel as a transport connection.  A fast CPU may
achieve higher throughput by striping data across multiple 'intelligent'
adaptors, each of which implements a TCP connection."

Each striped channel is one :class:`~repro.transport.tcp.BulkSender` /
``BulkReceiver`` pair running in *message mode*; both classes are thin
adapters over the shared endpoint pipelines
(:mod:`repro.transport.endpoint`).  Because TCP channels are reliable
**and** FIFO, logical reception alone yields *guaranteed* FIFO delivery —
no markers, no quasi-FIFO caveat: the loss-recovery machinery exists
precisely because raw links lose packets, and these channels do not.
(Table 1's "Fair Queuing algorithm, no header" row upgrades from
"Quasi-FIFO" to "Guaranteed FIFO" when the channels are transport
connections.)  A whole *connection* can still die, though — pass a
:class:`~repro.transport.endpoint.ChannelFailureDetector` to the receiver
and delivery degrades to quasi-FIFO with gaps instead of stalling forever.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.packet import Packet
from repro.transport.endpoint import (
    ChannelFailureDetector,
    StripeReceiverPipeline,
    StripeSenderPipeline,
    make_discipline,
    receiver_mode_for,
)
from repro.transport.tcp import BulkReceiver, BulkSender, TcpLayer


class TcpChannelPort:
    """Adapts one message-mode TCP connection to the endpoint port API.

    Backpressure comes from the connection's own send state: the port
    refuses new messages while more than ``max_backlog_bytes`` are queued
    but unsent (cwnd-limited), so the causal striper waits exactly when
    the channel is congestion-limited.
    """

    def __init__(self, sender: BulkSender, max_backlog_bytes: int = 64 * 1024):
        self.sender = sender
        self.max_backlog_bytes = max_backlog_bytes
        self.messages_sent = 0

    def send(self, packet: Any, force: bool = False) -> bool:
        self.sender.write_message(packet, int(packet.size))
        self.messages_sent += 1
        return True

    def can_accept(self) -> bool:
        if self.sender.state != "ESTABLISHED":
            return False
        return self.sender.queued_message_bytes < self.max_backlog_bytes

    @property
    def queue_length(self) -> int:
        return self.sender.queued_messages


class StripedTcpSender(StripeSenderPipeline):
    """Stripes application messages across N TCP connections.

    Args:
        tcp_layer: local TCP layer.
        dst: peer address (as reachable per channel — multihomed hosts pass
            per-channel addresses via ``dst_ips``).
        base_port: connection *i* runs ``(src 41000+i) -> (dst base_port+i)``.
        algorithm: any discipline spec the endpoint layer resolves — a CFQ
            algorithm (markers are unnecessary here), a registry name, or
            a ready-made load sharer (e.g. marker-free Sprinklers).
        discipline_options: forwarded to ``make_discipline`` for names.
    """

    def __init__(
        self,
        tcp_layer: TcpLayer,
        dst: str,
        n_channels: int,
        algorithm: Any,
        base_port: int = 8800,
        dst_ips: Optional[Sequence[str]] = None,
        mss: int = 1460,
        max_backlog_bytes: int = 64 * 1024,
        discipline_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        connections: List[BulkSender] = []
        ports: List[TcpChannelPort] = []
        for index in range(n_channels):
            target = dst_ips[index] if dst_ips is not None else dst
            sender = BulkSender(
                tcp_layer, target, base_port + index, 41000 + index, mss=mss
            )
            sender.on_writable = self._pump
            connections.append(sender)
            ports.append(TcpChannelPort(sender, max_backlog_bytes))
        self.connections = connections
        super().__init__(ports, algorithm, discipline_options=discipline_options)

    def start(self) -> None:
        for connection in self.connections:
            connection.start()


class StripedTcpReceiver(StripeReceiverPipeline):
    """Reassembles the striped FIFO stream from N TCP connections.

    Guaranteed FIFO: the channels are reliable, so plain logical reception
    (Theorem 4.1) suffices with no recovery machinery at all — unless a
    connection dies outright, which the optional ``failure_detector``
    turns into assumed-lost gaps instead of a permanent stall.

    The reception mode follows the discipline: a CFQ ``algorithm`` gets
    plain logical reception (above), while marker-free disciplines
    (registry name or load-sharer instance with ``marker_free``) get
    ``"direct"`` — no resequencer at all, since per-flow pinning plus FIFO
    channels already deliver each flow in order.  ``mode`` overrides the
    derivation explicitly.
    """

    def __init__(
        self,
        tcp_layer: TcpLayer,
        n_channels: int,
        algorithm: Any,
        base_port: int = 8800,
        on_message: Optional[Callable[[Packet], None]] = None,
        failure_detector: Optional[ChannelFailureDetector] = None,
        mode: Optional[str] = None,
        discipline_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        spec = algorithm
        if isinstance(spec, str):
            spec = make_discipline(
                spec, n_channels, **(discipline_options or {})
            )
        if mode is None:
            mode = receiver_mode_for(spec)
        # Logical-reception modes simulate the sender's CFQ algorithm;
        # the other engines (direct, header-based) need no algorithm.
        cfq = spec if mode in ("marker", "plain") else None
        if cfq is not None and hasattr(cfq, "algorithm"):
            cfq = cfq.algorithm
        super().__init__(
            n_channels,
            cfq,
            mode=mode,
            on_message=on_message,
            failure_detector=failure_detector,
        )
        self.connections: List[BulkReceiver] = []
        for index in range(n_channels):
            receiver = BulkReceiver(
                tcp_layer, base_port + index,
                on_message=self.channel_handler(index),
            )
            self.connections.append(receiver)
