"""UDP over the simulated stack.

Minimal but real: a per-stack :class:`UdpLayer` demultiplexes by
destination port to bound :class:`UdpSocket` objects.  Used by the
section 6.3 experiments (transport-level striping over UDP channels) and
by the video workload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.net.addresses import IPAddress
from repro.net.ip import IPPacket, PROTO_UDP
from repro.net.stack import Stack

UDP_HEADER_BYTES = 8

_dgram_ids = itertools.count(1)


@dataclass
class UdpDatagram:
    """A UDP datagram (header + opaque payload)."""

    src_port: int
    dst_port: int
    payload: Any
    payload_size: int
    uid: int = field(default_factory=lambda: next(_dgram_ids))

    @property
    def size(self) -> int:
        return UDP_HEADER_BYTES + self.payload_size

    def __repr__(self) -> str:
        return f"UdpDatagram({self.src_port}->{self.dst_port} {self.size}B)"


class UdpLayer:
    """Registers as protocol 17 on a stack and demuxes to sockets."""

    def __init__(self, stack: Stack) -> None:
        self.stack = stack
        self.sockets: Dict[int, "UdpSocket"] = {}
        self._ephemeral = itertools.count(49152)
        stack.register_protocol(PROTO_UDP, self._input)
        self.received = 0
        self.no_socket_drops = 0

    def bind(
        self,
        port: Optional[int] = None,
        on_datagram: Optional[Callable[[UdpDatagram, IPAddress], None]] = None,
    ) -> "UdpSocket":
        """Create a socket bound to ``port`` (or an ephemeral one)."""
        if port is None:
            port = next(self._ephemeral)
            while port in self.sockets:
                port = next(self._ephemeral)
        if port in self.sockets:
            raise ValueError(f"port {port} already bound on {self.stack.name}")
        socket = UdpSocket(self, port, on_datagram)
        self.sockets[port] = socket
        return socket

    def close(self, socket: "UdpSocket") -> None:
        self.sockets.pop(socket.port, None)

    def _input(self, packet: IPPacket, interface: Any) -> None:
        datagram = packet.payload
        if not isinstance(datagram, UdpDatagram):
            return
        self.received += 1
        socket = self.sockets.get(datagram.dst_port)
        if socket is None:
            self.no_socket_drops += 1
            return
        socket._deliver(datagram, packet.src)


class UdpSocket:
    """A bound UDP endpoint."""

    def __init__(
        self,
        layer: UdpLayer,
        port: int,
        on_datagram: Optional[Callable[[UdpDatagram, IPAddress], None]] = None,
    ) -> None:
        self.layer = layer
        self.port = port
        self.on_datagram = on_datagram
        self.sent = 0
        self.received = 0

    def sendto(
        self,
        payload: Any,
        payload_size: int,
        dst: IPAddress | str,
        dst_port: int,
        src: Optional[IPAddress | str] = None,
        force: bool = False,
    ) -> bool:
        """Send one datagram.  Returns False if the egress queue dropped it.

        ``force`` bypasses egress queue limits (control traffic).
        """
        stack = self.layer.stack
        source = (
            IPAddress.parse(src)
            if src is not None
            else stack.local_addresses()[0]
        )
        datagram = UdpDatagram(
            src_port=self.port,
            dst_port=dst_port,
            payload=payload,
            payload_size=payload_size,
        )
        packet = IPPacket(
            src=source,
            dst=IPAddress.parse(dst),
            proto=PROTO_UDP,
            payload=datagram,
        )
        ok = stack.ip_output(packet, force=force)
        if ok:
            self.sent += 1
        return ok

    def close(self) -> None:
        self.layer.close(self)

    def _deliver(self, datagram: UdpDatagram, src: IPAddress) -> None:
        self.received += 1
        if self.on_datagram is not None:
            self.on_datagram(datagram, src)
