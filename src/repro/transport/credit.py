"""Credit-based flow control (Kung & Chapman's FCVC, section 6.3).

"For channels not providing flow control, e.g., UDP channels, a simple
credit based flow control scheme proposed by Kung et. al. proved very
effective in eliminating packet loss due to channel congestion.  This
scheme was particularly well suited to our striping scheme, since the
credits could be piggybacked on the periodic marker packets."

The FCVC idea, adapted per striped channel:

* The receiver keeps a per-channel buffer of ``buffer_packets`` slots and a
  cumulative count of packets *consumed* (removed by logical reception).
* It advertises a per-channel **credit limit** = consumed + buffer size:
  the highest cumulative packet count the sender may have pushed into that
  channel without ever overflowing the buffer.
* The sender counts packets sent per channel and sends on a channel only
  while ``sent < limit``.

Credits travel on whatever reverse path the deployment has; the API
supports both standalone :class:`CreditPacket` messages and piggybacking
(``MarkerPacket.credit``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import itertools
from typing import Callable, List, Optional

_credit_ids = itertools.count(1)


@dataclass
class CreditPacket:
    """A standalone credit advertisement for one channel."""

    channel: int
    limit: int
    size: int = 16
    uid: int = field(default_factory=lambda: next(_credit_ids))
    codepoint: str = "credit"

    def __repr__(self) -> str:
        return f"CreditPacket(ch={self.channel}, limit={self.limit})"


class CreditSender:
    """Sender-side credit accounting for N striped channels.

    ``initial_credit`` packets per channel may be sent before the first
    advertisement arrives (the receiver's initial buffer).
    """

    def __init__(
        self,
        n_channels: int,
        initial_credit: int,
        on_unblocked: Optional[Callable[[], None]] = None,
    ) -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        if initial_credit < 0:
            raise ValueError("initial credit must be >= 0")
        self.limits: List[int] = [initial_credit] * n_channels
        self.sent: List[int] = [0] * n_channels
        self.on_unblocked = on_unblocked
        self.stalls = 0
        #: advertisements rejected because they would have *shrunk* the
        #: window (a reordered CreditPacket overtaken by a newer
        #: piggybacked credit); limits are monotone, so stale ones are
        #: dropped rather than applied
        self.stale_credits = 0

    def can_send(self, channel: int) -> bool:
        return self.sent[channel] < self.limits[channel]

    def on_send(self, channel: int) -> None:
        if not self.can_send(channel):
            raise RuntimeError(f"channel {channel} has no credit")
        self.sent[channel] += 1

    def on_credit(self, channel: int, limit: int) -> None:
        """A credit advertisement arrived (possibly stale — keep the max).

        FCVC limits are cumulative (consumed + buffer), hence monotone
        non-decreasing at the receiver; an advertisement at or below the
        current limit is a reordered or duplicated stale one and must
        not regress the window.  Stale arrivals are counted and ignored.
        """
        was_blocked = not self.can_send(channel)
        if limit > self.limits[channel]:
            self.limits[channel] = limit
        else:
            self.stale_credits += 1
            return
        if was_blocked and self.can_send(channel):
            if self.on_unblocked is not None:
                self.on_unblocked()

    def available(self, channel: int) -> int:
        return max(0, self.limits[channel] - self.sent[channel])


class CreditReceiver:
    """Receiver-side credit generation.

    Call :meth:`on_consumed` whenever logical reception removes a packet
    from a channel buffer; an advertisement is issued every
    ``advertise_every`` consumptions (1 = per packet) through the
    ``send_credit(channel, limit)`` callback.  :meth:`piggyback_limit`
    returns the current limit for stamping onto reverse-direction markers.
    """

    def __init__(
        self,
        n_channels: int,
        buffer_packets: int,
        send_credit: Optional[Callable[[int, int], None]] = None,
        advertise_every: int = 1,
    ) -> None:
        if buffer_packets < 1:
            raise ValueError("buffer must hold at least one packet")
        if advertise_every < 1:
            raise ValueError("advertise_every must be >= 1")
        self.buffer_packets = buffer_packets
        self.send_credit = send_credit
        self.advertise_every = advertise_every
        self.consumed: List[int] = [0] * n_channels
        self._last_advertised: List[int] = [0] * n_channels
        self.advertisements = 0

    def on_consumed(self, channel: int) -> None:
        self.consumed[channel] += 1
        if (
            self.consumed[channel] - self._last_advertised[channel]
            >= self.advertise_every
        ):
            self.advertise(channel)

    def advertise(self, channel: int) -> None:
        self._last_advertised[channel] = self.consumed[channel]
        self.advertisements += 1
        if self.send_credit is not None:
            self.send_credit(channel, self.piggyback_limit(channel))

    def piggyback_limit(self, channel: int) -> int:
        """The limit to advertise for ``channel`` right now."""
        return self.consumed[channel] + self.buffer_packets
