"""The striping-discipline registry: any (s0, f, g) scheme -> any transport.

Split out of :mod:`repro.transport.endpoint` by the synchronization-model
refactor.  Three axes are resolved here:

* **discipline** — who picks the channel for each packet
  (:func:`make_discipline` / :func:`resolve_discipline`);
* **receiver mode** — which logical-reception engine matches the sender
  (:func:`receiver_mode_for`, feeding
  :func:`~repro.core.resequencer.make_resequencer`);
* **synchronization model** — *how* sender and receiver agree on order
  (:func:`sync_model_for`): marker-based schemes ship a marker stream and
  simulate the sender; hash-based (marker-free) schemes derive order from
  per-flow pinning and need neither markers nor a resequencer; header-based
  schemes carry explicit sequence state in every packet.

Marker-free disciplines declare ``marker_free = True`` and get the
``"direct"`` receiver mode: the receiver pipeline allocates no resequencer
and no marker-decode path at all (see
:class:`repro.transport.sync_model.HashSyncModel`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.core.cfq import CausalFQ
from repro.core.transform import LoadSharer, TransformedLoadSharer

__all__ = [
    "DISCIPLINES",
    "SYNC_MODELS",
    "make_discipline",
    "receiver_mode_for",
    "resolve_discipline",
    "sync_model_for",
]


def _make_srr(n: int, **options: Any) -> LoadSharer:
    from repro.core.srr import SRR

    quanta = options.get("quanta")
    if quanta is None:
        quanta = [float(options.get("quantum", 1500.0))] * n
    return TransformedLoadSharer(
        SRR(quanta, count_packets=options.get("count_packets", False))
    )


def _make_rr(n: int, **options: Any) -> LoadSharer:
    from repro.core.srr import make_rr

    return TransformedLoadSharer(make_rr(n))


def _make_grr(n: int, **options: Any) -> LoadSharer:
    from repro.core.srr import make_grr

    weights = options.get("weights")
    if weights is None:
        weights = [1.0] * n
    return TransformedLoadSharer(make_grr(weights))


def _make_sqf(n: int, **options: Any) -> LoadSharer:
    from repro.baselines.sqf import ShortestQueueFirst

    return ShortestQueueFirst(n)


def _make_random(n: int, **options: Any) -> LoadSharer:
    import random

    from repro.baselines.random_selection import RandomSelection

    return RandomSelection(n, random.Random(options.get("seed", 0)))


def _make_hash(n: int, **options: Any) -> LoadSharer:
    from repro.baselines.address_hash import AddressHashing

    return AddressHashing(n)


def _make_mppp(n: int, **options: Any) -> LoadSharer:
    from repro.baselines.mppp import MPPP_HEADER_BYTES, MpppDiscipline

    return MpppDiscipline(
        n, header_bytes=options.get("header_bytes", MPPP_HEADER_BYTES)
    )


def _make_bonding(n: int, **options: Any) -> LoadSharer:
    from repro.baselines.bonding import BondingDiscipline

    return BondingDiscipline(n, frame_bytes=options.get("frame_bytes", 512))


def _make_sprinklers(n: int, **options: Any) -> LoadSharer:
    from repro.core.sprinklers import SprinklersDiscipline

    return SprinklersDiscipline(
        n,
        weights=options.get("weights"),
        resize_interval=options.get("resize_interval", 64),
        hysteresis=options.get("hysteresis", 2.0),
        window_bytes=options.get("window_bytes", 512 * 1024),
        initial_share=options.get("initial_share", 0.0),
        clock=options.get("clock"),
    )


#: Named striping disciplines: factory(n_channels, **options) -> LoadSharer.
DISCIPLINES: Dict[str, Callable[..., LoadSharer]] = {
    "srr": _make_srr,
    "rr": _make_rr,
    "grr": _make_grr,
    "sqf": _make_sqf,
    "random_selection": _make_random,
    "random": _make_random,
    "address_hash": _make_hash,
    "hash": _make_hash,
    "mppp": _make_mppp,
    "bonding": _make_bonding,
    "sprinklers": _make_sprinklers,
}


def make_discipline(name: str, n_channels: int, **options: Any) -> LoadSharer:
    """Build a named striping discipline for ``n_channels`` channels.

    Names: ``srr`` (quanta/quantum/count_packets options), ``rr``, ``grr``
    (weights), ``sqf``, ``random_selection``/``random`` (seed),
    ``address_hash``/``hash``, ``mppp`` (header_bytes), ``bonding``
    (frame_bytes), ``sprinklers`` (weights/resize_interval/hysteresis/
    window_bytes/initial_share).
    """
    factory = DISCIPLINES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown discipline {name!r}; known: {sorted(set(DISCIPLINES))}"
        )
    return factory(n_channels, **options)


def resolve_discipline(
    spec: Any, n_channels: int, **options: Any
) -> LoadSharer:
    """Normalize any striping-policy spec to a :class:`LoadSharer`.

    Accepts a discipline name (see :func:`make_discipline`), a
    :class:`~repro.core.cfq.CausalFQ` algorithm (wrapped via the paper's
    transformation), or any ready-made load sharer (two-phase
    ``choose``/``notify_sent`` object).
    """
    if isinstance(spec, str):
        sharer = make_discipline(spec, n_channels, **options)
    elif isinstance(spec, CausalFQ):
        sharer = TransformedLoadSharer(spec)
    elif isinstance(spec, LoadSharer) or (
        hasattr(spec, "choose") and hasattr(spec, "notify_sent")
    ):
        sharer = spec
    else:
        raise TypeError(f"cannot use {type(spec).__name__} as a discipline")
    if sharer.n_channels != n_channels:
        raise ValueError(
            f"policy expects {sharer.n_channels} channels, got {n_channels}"
        )
    return sharer


def receiver_mode_for(spec: Any, markers: bool = False) -> str:
    """The resequencing mode matching a sender-side discipline.

    Disciplines that bring their own receiver half declare it via a
    ``receiver_mode`` attribute (MPPP, BONDING).  Marker-free disciplines
    (``marker_free = True``: address hashing, Sprinklers) get ``"direct"``
    — per-flow pinning makes physical arrival order the delivery order, so
    the receiver allocates no resequencer and no marker-decode path.
    Simulatable (causal) policies get logical reception — ``"marker"``
    when the sender emits markers, ``"plain"`` otherwise.  Remaining
    non-causal policies cannot be simulated at all, so they fall back to
    physical arrival order through the ``"none"`` ablation engine.
    """
    mode = getattr(spec, "receiver_mode", None)
    if mode is not None:
        return mode
    if getattr(spec, "marker_free", False):
        return "direct"
    if isinstance(spec, CausalFQ) or getattr(spec, "simulatable", False):
        return "marker" if markers else "plain"
    return "none"


#: Synchronization-model families, by what the receiver needs from the
#: pipeline.  ``marker``: simulated-sender reception, marker codec, credit/
#: SACK piggyback, lag flush.  ``hash``: nothing — delivery at arrival.
#: ``header``: per-packet sequence state, discipline-owned receiver half.
SYNC_MODELS = ("marker", "hash", "header")

_SYNC_MODEL_BY_MODE = {
    "marker": "marker",
    "plain": "marker",
    "none": "marker",
    "direct": "hash",
    "mppp": "header",
    "bonding": "header",
}


def sync_model_for(spec: Any, markers: bool = False) -> str:
    """The synchronization-model family of a discipline (or mode string).

    ``"marker"`` covers the whole simulated-sender family (``marker`` /
    ``plain`` / the ``none`` ablation — all built on the same pipeline
    machinery), ``"hash"`` the marker-free direct-delivery family, and
    ``"header"`` the disciplines that own their receiver half outright.
    """
    mode = spec if isinstance(spec, str) else receiver_mode_for(spec, markers)
    family = _SYNC_MODEL_BY_MODE.get(mode)
    if family is None:
        raise ValueError(f"unknown receiver mode {mode!r}")
    return family
