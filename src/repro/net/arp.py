"""ARP — the Ethernet convergence layer's address resolution.

Section 6.1: "The convergence layer is responsible for mapping IP addresses
to data link addresses... For example, for Ethernet interfaces, the
convergence layer performs ARP."

We implement a real request/reply exchange over the simulated LAN: the
first packet to an unresolved next hop queues while a broadcast request is
outstanding; the reply fills the cache and flushes the queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.addresses import IPAddress, MACAddress

ARP_REQUEST = "request"
ARP_REPLY = "reply"

#: Size of an ARP packet inside an Ethernet frame (padded minimum payload).
ARP_PACKET_BYTES = 46


@dataclass
class ArpPacket:
    """An ARP request or reply."""

    op: str
    sender_ip: IPAddress
    sender_mac: MACAddress
    target_ip: IPAddress
    target_mac: Optional[MACAddress] = None
    size: int = ARP_PACKET_BYTES

    def __repr__(self) -> str:
        return (
            f"ArpPacket({self.op} {self.sender_ip}/{self.sender_mac} -> "
            f"{self.target_ip})"
        )


@dataclass
class ArpEntry:
    mac: MACAddress
    installed_at: float


class ArpCache:
    """Per-interface IP→MAC cache with optional entry timeout."""

    def __init__(self, timeout: Optional[float] = None) -> None:
        self.timeout = timeout
        self._entries: Dict[IPAddress, ArpEntry] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, ip: IPAddress, now: float = 0.0) -> Optional[MACAddress]:
        entry = self._entries.get(ip)
        if entry is None:
            self.misses += 1
            return None
        if self.timeout is not None and now - entry.installed_at > self.timeout:
            del self._entries[ip]
            self.misses += 1
            return None
        self.hits += 1
        return entry.mac

    def install(self, ip: IPAddress, mac: MACAddress, now: float = 0.0) -> None:
        self._entries[ip] = ArpEntry(mac, now)

    def __len__(self) -> int:
        return len(self._entries)
