"""Internal fragmentation/reassembly — lifting the min-MTU restriction.

Section 6.2: "our striping algorithm restricts the MTU size used for a
collection of links to be the smallest MTU size ...  This problem does not
appear to be specific to our scheme, but seems to apply to any striping
algorithm that does not internally fragment and reassemble packets.  Since
the overall throughput is considerably dependent on MTU size, we recommend
that striping be done on links with similar MTU sizes."

This module implements the alternative the paper chose not to take —
*internal* fragmentation — so the trade-off can be measured:

* :class:`FragmentingStriper` cuts each upper-layer packet into fragments
  sized to the MTU of whichever channel the **causal** algorithm selects:
  the channel is chosen first (from state alone, so logical reception
  still works), then the fragment is cut to fit it.  Fairness is
  preserved because SRR charges actual bytes sent.
* :class:`Reassembler` rebuilds packets from in-order fragments on the
  receiver side (after logical reception, fragments of one packet are
  consecutive, so reassembly is a simple accumulator; losses abort the
  packet in progress).

The cost, which the paper's no-modification goal forbids: each fragment
carries a small header (:data:`FRAGMENT_HEADER_BYTES`).  The benefit: the
striped interface's MTU becomes the *largest* member MTU, so a CPU-bound
receiver handles fewer, bigger packets (the paper's 8 KB-MTU observation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.core.striper import ChannelPort, MarkerPolicy, Striper
from repro.core.transform import LoadSharer

FRAGMENT_HEADER_BYTES = 8

_fragment_packet_ids = itertools.count(1)


@dataclass
class Fragment:
    """One piece of a fragmented upper-layer packet.

    ``size`` is the wire size (payload share + fragment header); the
    striping algorithm charges it like any data packet.
    """

    packet_id: int
    index: int
    count: int
    payload_bytes: int
    inner: Any  # the original packet (carried on the last fragment only
    #             in a real system; here for reconstruction convenience)

    @property
    def size(self) -> int:
        return self.payload_bytes + FRAGMENT_HEADER_BYTES

    def __repr__(self) -> str:
        return (
            f"Fragment(pkt={self.packet_id} {self.index + 1}/{self.count} "
            f"{self.size}B)"
        )


def plan_fragments(total_bytes: int, mtu_for: Callable[[int], int],
                   channel_for: Callable[[int], int]) -> List[int]:
    """Pure helper used by tests: fragment sizes for a byte count given
    per-step channel choices (documents the cut-to-fit rule)."""
    sizes = []
    remaining = total_bytes
    step = 0
    while remaining > 0:
        channel = channel_for(step)
        chunk = min(remaining, mtu_for(channel) - FRAGMENT_HEADER_BYTES)
        sizes.append(chunk)
        remaining -= chunk
        step += 1
    return sizes


class FragmentingStriper(Striper):
    """A striper that cuts packets to the selected channel's MTU.

    The order of operations preserves causality: ``f(state)`` picks the
    channel **first**; the fragment is then sized to that channel's MTU and
    ``g(state, fragment_size)`` advances the state.  The receiver running
    the same algorithm predicts the same channels and sees the same sizes.

    Args:
        mtus: per-channel maximum fragment wire size.
    """

    def __init__(
        self,
        sharer: LoadSharer,
        ports: Sequence[ChannelPort],
        mtus: Sequence[int],
        marker_policy: Optional[MarkerPolicy] = None,
        marker_decorator=None,
    ) -> None:
        super().__init__(
            sharer, ports, marker_policy, marker_decorator=marker_decorator
        )
        if len(mtus) != len(ports):
            raise ValueError("one MTU per channel required")
        if any(m <= FRAGMENT_HEADER_BYTES for m in mtus):
            raise ValueError("MTUs must exceed the fragment header")
        self.mtus = list(mtus)
        #: in-progress packet: (original, bytes_remaining, packet_id,
        #: fragments_emitted, fragment_count)
        self._current: Optional[list] = None
        self.fragments_sent = 0
        self.fragment_overhead_bytes = 0

    def pump(self) -> int:
        if self._initial_markers_pending:
            self._initial_markers_pending = False
            self._emit_markers()
        sent = 0
        kernel = self._kernel
        markers = self._markers_enabled
        while True:
            if self._current is None:
                if not self.input_queue:
                    break
                packet = self.input_queue.popleft()
                self._current = [
                    packet, int(packet.size), next(_fragment_packet_ids), [],
                ]
            packet, remaining, packet_id, fragments = self._current
            if kernel is not None:
                channel = kernel.ptr
            else:
                depths = [p.queue_length for p in self.ports]
                channel = self.sharer.choose(packet, depths)
            port = self.ports[channel]
            if not port.can_accept():
                return sent  # causal blocking, mid-packet included
            chunk = min(remaining, self.mtus[channel] - FRAGMENT_HEADER_BYTES)
            fragment = Fragment(
                packet_id=packet_id,
                index=len(fragments),
                count=0,  # patched below when the packet completes
                payload_bytes=chunk,
                inner=packet,
            )
            fragments.append(fragment)
            remaining -= chunk
            self._current[1] = remaining
            if markers:
                old_ptr, old_round = kernel.ptr, kernel.round_number
            port.send(fragment)
            self.sharer.notify_sent(channel, fragment)
            self.fragments_sent += 1
            self.fragment_overhead_bytes += FRAGMENT_HEADER_BYTES
            sent += 1
            if remaining <= 0:
                for piece in fragments:
                    piece.count = len(fragments)
                self.packets_sent += 1
                self.bytes_sent += packet.size
                self._current = None
            if markers:
                self._check_marker_crossing(old_ptr, old_round)
        return sent


class Reassembler:
    """Rebuilds packets from logically ordered fragments.

    After logical reception the fragments of one packet arrive
    consecutively; a fragment from a *different* packet id aborts any
    packet in progress (its missing fragments were lost).
    """

    def __init__(self, on_packet: Optional[Callable[[Any], None]] = None) -> None:
        self.on_packet = on_packet
        self._current_id: Optional[int] = None
        self._got = 0
        self._need = 0
        self._inner: Any = None
        self.packets_completed = 0
        self.packets_aborted = 0
        self.fragments_seen = 0

    def push(self, fragment: Any) -> Optional[Any]:
        """Feed the next in-order fragment; returns a completed packet."""
        if not isinstance(fragment, Fragment):
            return None
        self.fragments_seen += 1
        if fragment.packet_id != self._current_id:
            if self._current_id is not None and self._got < self._need:
                self.packets_aborted += 1
            self._current_id = fragment.packet_id
            self._got = 0
            self._need = max(fragment.count, 1)
            self._inner = fragment.inner
        if fragment.index != self._got:
            # out-of-sequence within the packet (mid-packet loss): abort
            self.packets_aborted += 1
            self._current_id = None
            return None
        self._got += 1
        self._need = max(fragment.count, self._need)
        if fragment.count and self._got == fragment.count:
            inner = self._inner
            self._current_id = None
            self.packets_completed += 1
            if self.on_packet is not None:
                self.on_packet(inner)
            return inner
        return None
