"""The strIPe architecture substrate: IP over striped heterogeneous links.

Provides address types, the IP packet model, longest-prefix routing with
host-route overrides, ARP, Ethernet and ATM-PVC interfaces, and the strIPe
virtual interface itself (section 6.1 of the paper).
"""

from repro.net.addresses import IPAddress, MACAddress, fresh_mac
from repro.net.ip import (
    IP_HEADER_BYTES,
    IPPacket,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.net.routing import Route, RoutingTable
from repro.net.arp import ArpCache, ArpPacket
from repro.net.interface import Frame, FrameType, NetworkInterface
from repro.net.ethernet import (
    ETHERNET_MTU,
    ETHERNET_OVERHEAD,
    EthernetInterface,
    ethernet_wire_size,
)
from repro.net.atm import (
    ATM_CELL_BYTES,
    ATM_DEFAULT_MTU,
    AtmInterface,
    aal5_cell_count,
    aal5_wire_size,
)
from repro.net.stripe import (
    RESEQ_MARKER,
    RESEQ_NONE,
    RESEQ_PLAIN,
    StripeInterface,
    StripeMemberPort,
)
from repro.net.stack import Link, Stack
from repro.net.fragmentation import (
    FRAGMENT_HEADER_BYTES,
    Fragment,
    FragmentingStriper,
    Reassembler,
)

__all__ = [
    "IPAddress",
    "MACAddress",
    "fresh_mac",
    "IPPacket",
    "IP_HEADER_BYTES",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Route",
    "RoutingTable",
    "ArpCache",
    "ArpPacket",
    "Frame",
    "FrameType",
    "NetworkInterface",
    "EthernetInterface",
    "ETHERNET_MTU",
    "ETHERNET_OVERHEAD",
    "ethernet_wire_size",
    "AtmInterface",
    "ATM_CELL_BYTES",
    "ATM_DEFAULT_MTU",
    "aal5_wire_size",
    "aal5_cell_count",
    "StripeInterface",
    "StripeMemberPort",
    "RESEQ_MARKER",
    "RESEQ_PLAIN",
    "RESEQ_NONE",
    "Link",
    "Stack",
    "Fragment",
    "FragmentingStriper",
    "Reassembler",
    "FRAGMENT_HEADER_BYTES",
]
