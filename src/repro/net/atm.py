"""ATM PVC interface with AAL5 segmentation.

The paper's second link was "an ATM interface, which sent IP packets
through a Permanent Virtual Circuit (PVC).  The bandwidth of the PVC could
be modified in hardware" (section 6.2).  We model:

* AAL5 encapsulation: payload + 8-byte trailer, padded up to a multiple of
  48 bytes, carried in 53-byte cells — so PVC *goodput* is below line rate
  and depends on packet size, just like real hardware.
* A settable PVC rate (:meth:`set_rate`), the knob Figure 15 sweeps.
* Marker codepoints via LLC/SNAP-style demux info, per section 5 ("such
  codepoints are available for ATM virtual circuits, e.g., OAM cells or
  LLC/SNAP encapsulation").

A PVC is point-to-point: no ARP, the peer is implicit.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.net.addresses import IPAddress
from repro.net.interface import Frame, FrameType, NetworkInterface
from repro.sim.engine import Simulator

ATM_CELL_BYTES = 53
ATM_CELL_PAYLOAD_BYTES = 48
AAL5_TRAILER_BYTES = 8
#: Classic IP over ATM default MTU (RFC 1626).
ATM_DEFAULT_MTU = 9180


def aal5_wire_size(payload_bytes: int) -> int:
    """Bytes on the wire for an AAL5 PDU of ``payload_bytes``.

    The PDU (payload + trailer) is padded to a whole number of 48-byte cell
    payloads; each cell costs 53 bytes of line capacity.
    """
    cells = math.ceil((payload_bytes + AAL5_TRAILER_BYTES) / ATM_CELL_PAYLOAD_BYTES)
    return cells * ATM_CELL_BYTES


def aal5_cell_count(payload_bytes: int) -> int:
    """Number of 53-byte cells for a payload."""
    return math.ceil((payload_bytes + AAL5_TRAILER_BYTES) / ATM_CELL_PAYLOAD_BYTES)


class AtmInterface(NetworkInterface):
    """An IP interface over an ATM PVC.

    Args:
        sim: event engine.
        name: interface label.
        ip_address: this end's IP address.
        mtu: IP MTU of the PVC (default 9180; Figure 15 effectively runs it
            at the Ethernet MTU because strIPe clamps to the minimum member
            MTU).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip_address: IPAddress | str,
        mtu: int = ATM_DEFAULT_MTU,
    ) -> None:
        super().__init__(sim, name, ip_address, mtu)
        self.cells_sent = 0

    def set_rate(self, bandwidth_bps: float) -> None:
        """Change the PVC line rate — the hardware knob of Figure 15."""
        if self.channel_out is None:
            raise RuntimeError("interface not attached to a channel")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.channel_out.bandwidth_bps = bandwidth_bps

    def encapsulate(
        self, payload: Any, codepoint: str, next_hop: Optional[IPAddress]
    ) -> Optional[Frame]:
        size = aal5_wire_size(payload.size)
        return Frame(codepoint=codepoint, payload=payload, size=size)

    def send_ip(
        self, packet: Any, next_hop: Optional[IPAddress], force: bool = False
    ) -> bool:
        return self.send_with_codepoint(packet, FrameType.IPV4, next_hop, force=force)

    def send_with_codepoint(
        self,
        packet: Any,
        codepoint: str,
        next_hop: Optional[IPAddress] = None,
        force: bool = False,
    ) -> bool:
        frame = self.encapsulate(packet, codepoint, next_hop)
        assert frame is not None
        ok = self.transmit_frame(frame, force=force)
        if ok:
            self.cells_sent += aal5_cell_count(packet.size)
        return ok
