"""Network interface base machinery shared by Ethernet and ATM.

A :class:`NetworkInterface` joins an IP stack to a pair of simulated
channels (one per direction).  Its receive path optionally flows through the
host CPU / interrupt model, which is how the Figure 15 interrupt bottleneck
enters the picture.

Frames carry a *codepoint* — the link-layer demultiplexing field the paper
relies on: ordinary IP, strIPe data, strIPe markers, and ARP are all told
apart by codepoint, never by modifying packet contents.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.addresses import IPAddress
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.host import NicQueue


class FrameType:
    """Link-layer codepoints (Ethernet type field / LLC-SNAP equivalents)."""

    IPV4 = "ipv4"
    ARP = "arp"
    STRIPE_DATA = "stripe_data"
    STRIPE_MARKER = "stripe_marker"
    STRIPE_CREDIT = "stripe_credit"


@dataclass
class Frame:
    """A generic link-layer frame.

    Attributes:
        codepoint: one of :class:`FrameType`.
        payload: the encapsulated packet (IP packet, marker, ARP, ...).
        size: total bytes on the wire, including link overhead.
        dst_mac / src_mac: used by broadcast media (Ethernet); None on
            point-to-point links.
    """

    codepoint: str
    payload: Any
    size: int
    dst_mac: Any = None
    src_mac: Any = None


class NetworkInterface(abc.ABC):
    """Base class for simulated IP interfaces.

    Subclasses implement framing (:meth:`encapsulate`) and next-hop
    delivery (:meth:`send_ip`).  The base class owns channel attachment and
    the receive path.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip_address: IPAddress | str,
        mtu: int,
    ) -> None:
        if mtu <= 0:
            raise ValueError("MTU must be positive")
        self.sim = sim
        self.name = name
        self.ip_address = IPAddress.parse(ip_address)
        self.mtu = mtu
        self.stack: Optional[Any] = None  # set by Stack.add_interface
        self.channel_out: Optional[Channel] = None
        self.channel_in: Optional[Channel] = None
        self.nic_queue: Optional[NicQueue] = None
        #: demux hooks: codepoint -> callable(payload, interface)
        self.demux: dict[str, Callable[[Any, "NetworkInterface"], None]] = {}
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0

    # ------------------------------------------------------------------ #
    # wiring

    def attach(self, channel_out: Channel, channel_in: Channel) -> None:
        """Connect to a bidirectional link (two FIFO channels)."""
        self.channel_out = channel_out
        self.channel_in = channel_in
        channel_in.on_deliver = self._physical_receive

    def use_cpu(self, nic_queue: NicQueue) -> None:
        """Route received frames through the host CPU model.

        The owning :class:`~repro.net.stack.Stack` dispatches processed
        frames back to :meth:`handle_frame` via the CPU's ``on_packet``.
        """
        self.nic_queue = nic_queue

    # ------------------------------------------------------------------ #
    # send path

    @abc.abstractmethod
    def encapsulate(
        self, payload: Any, codepoint: str, next_hop: Optional[IPAddress]
    ) -> Optional[Frame]:
        """Build a frame, or None if the payload cannot be framed yet
        (e.g. awaiting ARP resolution, which the subclass must handle)."""

    @abc.abstractmethod
    def send_ip(
        self, packet: Any, next_hop: Optional[IPAddress], force: bool = False
    ) -> bool:
        """Transmit an IP packet toward ``next_hop`` (or its destination).

        ``force`` bypasses transmit-queue limits for small control packets
        (markers, credits) that must not be lost to transient backlog.
        """

    def transmit_frame(self, frame: Frame, force: bool = False) -> bool:
        """Hand a frame to the outgoing channel."""
        if self.channel_out is None:
            raise RuntimeError(f"interface {self.name} is not attached")
        ok = self.channel_out.send(frame, force=force)
        if ok:
            self.tx_frames += 1
            self.tx_bytes += frame.size
        return ok

    def can_accept(self) -> bool:
        """True if the transmit queue has room (striper backpressure)."""
        if self.channel_out is None:
            return False
        return self.channel_out.can_accept()

    @property
    def queue_length(self) -> int:
        return self.channel_out.queue_length if self.channel_out else 0

    # ------------------------------------------------------------------ #
    # receive path

    def _physical_receive(self, frame: Frame) -> None:
        """Frame arrival from the wire: NIC queue (CPU model) or direct."""
        if self.nic_queue is not None:
            self.nic_queue.enqueue(frame)
        else:
            self.handle_frame(frame)

    def handle_frame(self, frame: Frame) -> None:
        """Demultiplex a received frame by codepoint."""
        self.rx_frames += 1
        self.rx_bytes += frame.size
        handler = self.demux.get(frame.codepoint)
        if handler is not None:
            handler(frame.payload, self)
            return
        if frame.codepoint == FrameType.IPV4 and self.stack is not None:
            self.stack.ip_input(frame.payload, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.ip_address} mtu={self.mtu}>"
