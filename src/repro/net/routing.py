"""Longest-prefix-match routing table.

The strIPe deployment trick (section 6.1): "it is possible for host
specific routes to override network specific routes.  Thus, if the two
ethernets are on IP networks Net1 and Net2, and the receiving host's two IP
addresses are Net1.B and Net2.B, then we simply make entries in the sending
host's routing table, asking it to route packets to Net1.B and Net2.B to
interface C, which corresponds to the strIPe interface."

Host routes are just /32 prefixes, so longest-prefix match gives exactly
that override behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.net.addresses import IPAddress


@dataclass(frozen=True)
class Route:
    """One routing table entry.

    Attributes:
        network: destination network address.
        prefix_len: prefix length; 32 = host route.
        interface: the egress interface object.
        next_hop: optional gateway address (None = directly connected).
        metric: tie-break among equal-length prefixes (lower wins).
    """

    network: IPAddress
    prefix_len: int
    interface: Any
    next_hop: Optional[IPAddress] = None
    metric: int = 0


class RoutingTable:
    """A simple longest-prefix-match table."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(
        self,
        network: str | IPAddress,
        prefix_len: int,
        interface: Any,
        next_hop: Optional[str | IPAddress] = None,
        metric: int = 0,
    ) -> Route:
        """Install a route; returns the entry."""
        route = Route(
            network=IPAddress.parse(network).network(prefix_len),
            prefix_len=prefix_len,
            interface=interface,
            next_hop=IPAddress.parse(next_hop) if next_hop is not None else None,
            metric=metric,
        )
        self._routes.append(route)
        return route

    def add_host_route(self, host: str | IPAddress, interface: Any) -> Route:
        """Host-specific (/32) route — the strIPe override mechanism."""
        return self.add(host, 32, interface)

    def remove(self, route: Route) -> None:
        self._routes.remove(route)

    def lookup(self, dst: str | IPAddress) -> Optional[Route]:
        """Longest-prefix match; among equal prefixes the lowest metric wins."""
        address = IPAddress.parse(dst)
        best: Optional[Route] = None
        for route in self._routes:
            if not address.in_network(route.network, route.prefix_len):
                continue
            if (
                best is None
                or route.prefix_len > best.prefix_len
                or (route.prefix_len == best.prefix_len and route.metric < best.metric)
            ):
                best = route
        return best

    def __len__(self) -> int:
        return len(self._routes)

    def entries(self) -> List[Route]:
        return list(self._routes)
