"""The per-host IP stack: interfaces, routing, protocol demux, CPU model.

A :class:`Stack` is one host.  It owns a routing table, a set of
interfaces, and upper-layer protocol handlers (TCP/UDP bind here).  If a
:class:`~repro.sim.host.HostCPU` is attached, every received frame flows
through the NIC-queue/interrupt model before reaching the stack — the
mechanism behind Figure 15's throughput ceiling.

:class:`Link` is the convenience wrapper joining two interfaces with a pair
of simulated FIFO channels.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.net.addresses import IPAddress
from repro.net.interface import Frame, NetworkInterface
from repro.net.ip import IPPacket
from repro.net.routing import RoutingTable
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.host import HostCPU


class Stack:
    """A simulated host's network stack."""

    def __init__(self, sim: Simulator, name: str, cpu: Optional[HostCPU] = None) -> None:
        self.sim = sim
        self.name = name
        self.routing = RoutingTable()
        self.interfaces: List[NetworkInterface] = []
        self.protocols: Dict[int, Callable[[IPPacket, NetworkInterface], None]] = {}
        self.cpu = cpu
        self._nic_by_name: Dict[str, NetworkInterface] = {}
        if cpu is not None:
            cpu.on_packet = self._cpu_done
        self.ip_sent = 0
        self.ip_received = 0
        self.ip_forwarded = 0
        self.ip_dropped = 0

    # ------------------------------------------------------------------ #
    # configuration

    def add_interface(
        self, interface: NetworkInterface, use_cpu: bool = True
    ) -> NetworkInterface:
        """Register an interface; optionally route its RX through the CPU."""
        interface.stack = self
        self.interfaces.append(interface)
        if self.cpu is not None and use_cpu:
            nic_queue = self.cpu.new_nic(interface.name)
            interface.use_cpu(nic_queue)
            self._nic_by_name[interface.name] = interface
        return interface

    def register_protocol(
        self, proto: int, handler: Callable[[IPPacket, NetworkInterface], None]
    ) -> None:
        """Bind an upper-layer protocol (e.g. TCP=6, UDP=17)."""
        self.protocols[proto] = handler

    def local_addresses(self) -> List[IPAddress]:
        return [iface.ip_address for iface in self.interfaces]

    # ------------------------------------------------------------------ #
    # data path

    def ip_output(self, packet: IPPacket, force: bool = False) -> bool:
        """Route and transmit a locally generated datagram.

        ``force`` lets small control packets (markers, credits) bypass the
        egress queue limit.
        """
        route = self.routing.lookup(packet.dst)
        if route is None:
            self.ip_dropped += 1
            return False
        next_hop = route.next_hop if route.next_hop is not None else packet.dst
        self.ip_sent += 1
        return route.interface.send_ip(packet, next_hop, force=force)

    def ip_input(self, packet: IPPacket, interface: NetworkInterface) -> None:
        """A datagram arrived (post-resequencing for strIPe members)."""
        if packet.dst in self.local_addresses():
            self.ip_received += 1
            handler = self.protocols.get(packet.proto)
            if handler is not None:
                handler(packet, interface)
            return
        # Not ours: forward (decrement TTL, re-route).
        if packet.ttl <= 1:
            self.ip_dropped += 1
            return
        packet.ttl -= 1
        self.ip_forwarded += 1
        self.ip_output(packet)

    def _cpu_done(self, frame: Frame, nic_name: str) -> None:
        interface = self._nic_by_name.get(nic_name)
        if interface is not None:
            interface.handle_frame(frame)


class Link:
    """A bidirectional link: two FIFO channels joining two interfaces."""

    def __init__(
        self,
        sim: Simulator,
        a: NetworkInterface,
        b: NetworkInterface,
        bandwidth_bps: float,
        prop_delay: float,
        *,
        bandwidth_ba: Optional[float] = None,
        queue_limit: Optional[int] = 50,
        loss_ab: Any = None,
        loss_ba: Any = None,
        skew_ab: Optional[Callable[[], float]] = None,
        skew_ba: Optional[Callable[[], float]] = None,
        name: Optional[str] = None,
    ) -> None:
        label = name if name is not None else f"{a.name}<->{b.name}"
        self.ab = Channel(
            sim,
            bandwidth_bps,
            prop_delay,
            name=f"{label}:ab",
            queue_limit=queue_limit,
            loss_model=loss_ab,
            skew=skew_ab,
        )
        self.ba = Channel(
            sim,
            bandwidth_ba if bandwidth_ba is not None else bandwidth_bps,
            prop_delay,
            name=f"{label}:ba",
            queue_limit=queue_limit,
            loss_model=loss_ba,
            skew=skew_ba,
        )
        a.attach(channel_out=self.ab, channel_in=self.ba)
        b.attach(channel_out=self.ba, channel_in=self.ab)

    def set_rate(self, bandwidth_bps: float, both_directions: bool = True) -> None:
        """Change the link rate (Figure 15's PVC knob)."""
        self.ab.bandwidth_bps = bandwidth_bps
        if both_directions:
            self.ba.bandwidth_bps = bandwidth_bps
