"""The strIPe virtual interface (section 6.1).

strIPe sits between IP and the real data-link interfaces: to IP it looks
like one more interface; internally it runs the sender striping algorithm
and the receiver resequencing algorithm over its *member* interfaces.
Striped data and markers travel under dedicated link-layer codepoints
(``STRIPE_DATA`` / ``STRIPE_MARKER``), so member interfaces hand them to
the strIPe layer instead of IP — and data packets are never modified.

The interface's MTU is the minimum of the member MTUs, as the paper
requires for any striping scheme that does not fragment internally.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.cfq import CausalFQ
from repro.core.packet import is_marker
from repro.core.resequencer import make_resequencer
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy, Striper
from repro.core.transform import LoadSharer, TransformedLoadSharer
from repro.net.fragmentation import FragmentingStriper, Reassembler
from repro.net.addresses import IPAddress
from repro.net.ethernet import EthernetInterface
from repro.net.interface import Frame, FrameType, NetworkInterface
from repro.sim.engine import Simulator

#: Receiver modes for the strIPe layer.
RESEQ_MARKER = "marker"  # logical reception + marker recovery (the paper)
RESEQ_PLAIN = "plain"  # logical reception, no loss recovery (Theorem 4.1)
RESEQ_NONE = "none"  # no resequencing (the Figure 15 ablation)


class StripeMemberPort:
    """Adapts a member interface to the striper's :class:`ChannelPort`.

    Also folds ARP into backpressure: until the member's next hop resolves,
    the port reports "cannot accept" and kicks resolution, so the causal
    striper simply waits instead of reordering.
    """

    def __init__(self, interface: NetworkInterface, peer_ip: IPAddress) -> None:
        self.interface = interface
        self.peer_ip = peer_ip

    def send(self, packet: Any, force: bool = False) -> bool:
        codepoint = (
            FrameType.STRIPE_MARKER if is_marker(packet) else FrameType.STRIPE_DATA
        )
        return self.interface.send_with_codepoint(  # type: ignore[attr-defined]
            packet, codepoint, self.peer_ip, force=force
        )

    def can_accept(self) -> bool:
        iface = self.interface
        if isinstance(iface, EthernetInterface) and not iface.resolved(self.peer_ip):
            iface.start_resolution(self.peer_ip)
            return False
        return iface.can_accept()

    @property
    def queue_length(self) -> int:
        return self.interface.queue_length


class StripeInterface(NetworkInterface):
    """A virtual IP interface that stripes across member interfaces.

    Args:
        sim: event engine.
        name: interface label (the paper's "interface C").
        ip_address: the address IP uses to talk to this interface.
        members: ``(interface, peer_ip)`` pairs — each member link and the
            receiver's address on that link.
        algorithm: the CFQ algorithm (SRR family for marker mode).
        resequencing: one of :data:`RESEQ_MARKER`, :data:`RESEQ_PLAIN`,
            :data:`RESEQ_NONE`.
        marker_policy: marker emission policy (marker mode only).
        input_queue_limit: max packets in the striper's input queue;
            overflow is dropped (kernel ifqueue semantics) so TCP sees
            congestion.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip_address: IPAddress | str,
        members: Sequence[Tuple[NetworkInterface, IPAddress | str]],
        algorithm: CausalFQ,
        resequencing: str = RESEQ_MARKER,
        marker_policy: Optional[MarkerPolicy] = None,
        input_queue_limit: int = 200,
        fragmentation: bool = False,
    ) -> None:
        if not members:
            raise ValueError("strIPe needs at least one member interface")
        if len(members) != algorithm.n_channels:
            raise ValueError(
                f"algorithm expects {algorithm.n_channels} channels, "
                f"got {len(members)} members"
            )
        # Without internal fragmentation the bundle is stuck at the
        # smallest member MTU (the paper's §6.2 restriction); with it, the
        # largest member MTU is usable.
        if fragmentation:
            mtu = max(iface.mtu for iface, _ in members)
        else:
            mtu = min(iface.mtu for iface, _ in members)
        super().__init__(sim, name, ip_address, mtu)
        self.fragmentation = fragmentation
        self.members: List[NetworkInterface] = [iface for iface, _ in members]
        self.peer_ips: List[IPAddress] = [
            IPAddress.parse(peer) for _, peer in members
        ]
        self.algorithm = algorithm
        self.resequencing = resequencing
        self.input_queue_limit = input_queue_limit
        self.input_drops = 0

        # --- sender side -------------------------------------------------
        self.ports = [
            StripeMemberPort(iface, peer)
            for iface, peer in zip(self.members, self.peer_ips)
        ]
        sharer: LoadSharer = TransformedLoadSharer(algorithm)
        if resequencing == RESEQ_MARKER:
            if marker_policy is None:
                marker_policy = MarkerPolicy()
            if not isinstance(algorithm, SRR):
                raise ValueError("marker mode requires an SRR-family algorithm")
        else:
            marker_policy = None
        if fragmentation:
            self.striper: Striper = FragmentingStriper(
                sharer, self.ports,
                mtus=[iface.mtu for iface in self.members],
                marker_policy=marker_policy,
            )
            self._reassembler: Optional[Reassembler] = Reassembler(
                on_packet=self._deliver_up
            )
        else:
            self.striper = Striper(sharer, self.ports, marker_policy)
            self._reassembler = None

        # --- receiver side ------------------------------------------------
        deliver = (
            self._reassembler.push if self._reassembler is not None
            else self._deliver_up
        )
        self.receiver: Any = make_resequencer(
            algorithm, resequencing,
            on_deliver=deliver, clock=lambda: self.sim.now,
        )

        # --- wiring --------------------------------------------------------
        self._member_index = {id(iface): i for i, iface in enumerate(self.members)}
        for iface in self.members:
            iface.demux[FrameType.STRIPE_DATA] = self._rx_striped
            iface.demux[FrameType.STRIPE_MARKER] = self._rx_striped
            if iface.channel_out is not None:
                iface.channel_out.on_space = self._on_member_space
            resolved_hook = getattr(iface, "on_arp_resolved", None)
            if resolved_hook is not None:
                resolved_hook.append(lambda ip: self.striper.pump())

    def wire_members(self) -> None:
        """(Re)hook member channel on_space callbacks; call after attach()."""
        for iface in self.members:
            if iface.channel_out is not None:
                iface.channel_out.on_space = self._on_member_space

    # ------------------------------------------------------------------ #
    # sender path

    def encapsulate(
        self, payload: Any, codepoint: str, next_hop: Optional[IPAddress]
    ) -> Optional[Frame]:
        raise NotImplementedError("strIPe is virtual; members do the framing")

    def send_ip(
        self, packet: Any, next_hop: Optional[IPAddress], force: bool = False
    ) -> bool:
        if packet.size > self.mtu:  # MTU = whole IP datagram on the link
            raise ValueError(
                f"packet of {packet.size}B exceeds strIPe MTU {self.mtu}"
            )
        if self.striper.backlog >= self.input_queue_limit:
            self.input_drops += 1
            return False
        self.tx_frames += 1
        self.tx_bytes += packet.size
        self.striper.submit(packet)
        return True

    def can_accept(self) -> bool:
        return self.striper.backlog < self.input_queue_limit

    @property
    def queue_length(self) -> int:
        return self.striper.backlog

    def _on_member_space(self) -> None:
        self.striper.pump()

    # ------------------------------------------------------------------ #
    # receiver path

    def _rx_striped(self, payload: Any, member: NetworkInterface) -> None:
        index = self._member_index.get(id(member))
        if index is None:
            return  # frame from an unknown member; ignore
        self.receiver.push(index, payload)

    def _deliver_up(self, packet: Any) -> None:
        self.rx_frames += 1
        self.rx_bytes += getattr(packet, "size", 0)
        if self.stack is not None:
            self.stack.ip_input(packet, self)
