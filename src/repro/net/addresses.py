"""IP and MAC address types for the simulated protocol stack.

Real dotted-quad semantics (32-bit integers, prefix matching) so the
routing-table behaviour the strIPe architecture relies on — host-specific
routes overriding network routes (section 6.1) — is exercised for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


def _parse_ipv4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet {part!r} in {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True, order=True)
class IPAddress:
    """A 32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 address out of range: {self.value}")

    @classmethod
    def parse(cls, text: Union[str, "IPAddress"]) -> "IPAddress":
        if isinstance(text, IPAddress):
            return text
        return cls(_parse_ipv4(text))

    def network(self, prefix_len: int) -> "IPAddress":
        """The network address under a prefix length."""
        mask = _prefix_mask(prefix_len)
        return IPAddress(self.value & mask)

    def in_network(self, network: "IPAddress", prefix_len: int) -> bool:
        mask = _prefix_mask(prefix_len)
        return (self.value & mask) == (network.value & mask)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPAddress({str(self)!r})"


def _prefix_mask(prefix_len: int) -> int:
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix length must be 0..32, got {prefix_len}")
    if prefix_len == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF


@dataclass(frozen=True, order=True)
class MACAddress:
    """A 48-bit link-layer address."""

    value: int

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFFFFFF:
            raise ValueError(f"MAC address out of range: {self.value}")

    @classmethod
    def parse(cls, text: Union[str, "MACAddress"]) -> "MACAddress":
        if isinstance(text, MACAddress):
            return text
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"invalid MAC address {text!r}")
        value = 0
        for part in parts:
            octet = int(part, 16)
            if not 0 <= octet <= 255:
                raise ValueError(f"invalid MAC octet {part!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def broadcast(cls) -> "MACAddress":
        return cls(cls.BROADCAST_VALUE)

    @property
    def is_broadcast(self) -> bool:
        return self.value == self.BROADCAST_VALUE

    def __str__(self) -> str:
        octets = [(self.value >> (8 * i)) & 255 for i in range(5, -1, -1)]
        return ":".join(f"{o:02x}" for o in octets)

    def __repr__(self) -> str:
        return f"MACAddress({str(self)!r})"


_next_mac = [1]


def fresh_mac() -> MACAddress:
    """Allocate a unique locally-administered MAC address."""
    value = (0x02 << 40) | _next_mac[0]
    _next_mac[0] += 1
    return MACAddress(value)
