"""Ethernet interface: broadcast LAN framing, ARP, distinct type fields.

The paper's receiver-side trick needs nothing more from Ethernet than "a
different packet type field" for striped packets and markers (section 5) —
which is exactly the ``codepoint`` on our frames.

Framing overhead is the real 18 bytes (14 header + 4 FCS); minimum payload
is padded to 46 bytes.  The default MTU is 1500.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.net.addresses import IPAddress, MACAddress, fresh_mac
from repro.net.arp import ARP_REPLY, ARP_REQUEST, ArpCache, ArpPacket
from repro.net.interface import Frame, FrameType, NetworkInterface
from repro.sim.engine import Simulator

ETHERNET_OVERHEAD = 18  # 14-byte header + 4-byte FCS
ETHERNET_MIN_PAYLOAD = 46
ETHERNET_MTU = 1500


def ethernet_wire_size(payload_bytes: int) -> int:
    """Bytes on the wire for a given payload size (padding + overhead)."""
    return max(payload_bytes, ETHERNET_MIN_PAYLOAD) + ETHERNET_OVERHEAD


class EthernetInterface(NetworkInterface):
    """An Ethernet NIC on a (two-party or multi-party) LAN segment.

    ARP is performed lazily: IP packets to an unresolved next hop are
    queued per-address while a broadcast request is outstanding.  For
    striping members, :meth:`resolved` participates in backpressure: the
    striper simply waits until the peer's MAC is known.
    """

    #: Max packets parked behind one unresolved ARP entry (kernels keep
    #: very few; excess is dropped and counted).
    ARP_PENDING_LIMIT = 32

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip_address: IPAddress | str,
        mtu: int = ETHERNET_MTU,
        mac: Optional[MACAddress] = None,
        arp_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(sim, name, ip_address, mtu)
        self.mac = mac if mac is not None else fresh_mac()
        self.arp_cache = ArpCache(timeout=arp_timeout)
        self._pending_arp: Dict[IPAddress, Deque[Any]] = {}
        self.arp_requests_sent = 0
        self.arp_replies_sent = 0
        self.arp_pending_drops = 0
        #: callbacks invoked as fn(resolved_ip) when an ARP entry is
        #: learned — lets senders blocked on resolution (strIPe backpressure)
        #: resume without polling.
        self.on_arp_resolved: list = []

    # ------------------------------------------------------------------ #
    # framing

    def encapsulate(
        self, payload: Any, codepoint: str, next_hop: Optional[IPAddress]
    ) -> Optional[Frame]:
        if next_hop is None:
            raise ValueError("Ethernet encapsulation requires a next hop")
        dst_mac = self.arp_cache.lookup(next_hop, self.sim.now)
        if dst_mac is None:
            return None
        size = ethernet_wire_size(payload.size)
        return Frame(
            codepoint=codepoint,
            payload=payload,
            size=size,
            dst_mac=dst_mac,
            src_mac=self.mac,
        )

    def send_ip(
        self, packet: Any, next_hop: Optional[IPAddress], force: bool = False
    ) -> bool:
        return self.send_with_codepoint(packet, FrameType.IPV4, next_hop, force=force)

    def send_with_codepoint(
        self,
        packet: Any,
        codepoint: str,
        next_hop: Optional[IPAddress],
        force: bool = False,
    ) -> bool:
        """Send a packet; queue it behind an ARP exchange if unresolved."""
        target = next_hop if next_hop is not None else getattr(packet, "dst", None)
        if target is None:
            raise ValueError("cannot determine next hop for packet")
        frame = self.encapsulate(packet, codepoint, target)
        if frame is None:
            self._queue_for_arp(target, (packet, codepoint, force))
            return True  # queued, will go out after resolution
        return self.transmit_frame(frame, force=force)

    # ------------------------------------------------------------------ #
    # ARP

    def resolved(self, next_hop: IPAddress) -> bool:
        """True if the next hop's MAC is cached (no ARP stall pending)."""
        return self.arp_cache.lookup(next_hop, self.sim.now) is not None

    def start_resolution(self, next_hop: IPAddress) -> None:
        """Kick off an ARP request if one is not already outstanding."""
        if next_hop not in self._pending_arp and not self.resolved(next_hop):
            self._pending_arp[next_hop] = deque()
            self._send_arp_request(next_hop)

    def _queue_for_arp(self, target: IPAddress, entry: Any) -> None:
        pending = self._pending_arp.get(target)
        if pending is None:
            pending = deque()
            self._pending_arp[target] = pending
            self._send_arp_request(target)
        if len(pending) >= self.ARP_PENDING_LIMIT:
            self.arp_pending_drops += 1
            return
        pending.append(entry)

    #: seconds between ARP request retries while unresolved
    ARP_RETRY_S = 0.25

    def _send_arp_request(self, target: IPAddress) -> None:
        request = ArpPacket(
            op=ARP_REQUEST,
            sender_ip=self.ip_address,
            sender_mac=self.mac,
            target_ip=target,
        )
        frame = Frame(
            codepoint=FrameType.ARP,
            payload=request,
            size=ethernet_wire_size(request.size),
            dst_mac=MACAddress.broadcast(),
            src_mac=self.mac,
        )
        self.arp_requests_sent += 1
        self.transmit_frame(frame, force=True)
        # Requests (or replies) can be lost; retry while still unresolved.
        self.sim.schedule(self.ARP_RETRY_S, self._arp_retry, target)

    def _arp_retry(self, target: IPAddress) -> None:
        if target in self._pending_arp and not self.resolved(target):
            self._send_arp_request(target)

    def handle_frame(self, frame: Frame) -> None:
        # Ethernet address filter: accept broadcast or our own MAC.
        if (
            frame.dst_mac is not None
            and not frame.dst_mac.is_broadcast
            and frame.dst_mac != self.mac
        ):
            return
        if frame.codepoint == FrameType.ARP:
            self.rx_frames += 1
            self.rx_bytes += frame.size
            self._handle_arp(frame.payload)
            return
        super().handle_frame(frame)

    def _handle_arp(self, packet: ArpPacket) -> None:
        # Learn the sender either way (standard ARP behaviour).
        self.arp_cache.install(packet.sender_ip, packet.sender_mac, self.sim.now)
        self._flush_pending(packet.sender_ip)
        for callback in list(self.on_arp_resolved):
            callback(packet.sender_ip)
        if packet.op == ARP_REQUEST and packet.target_ip == self.ip_address:
            reply = ArpPacket(
                op=ARP_REPLY,
                sender_ip=self.ip_address,
                sender_mac=self.mac,
                target_ip=packet.sender_ip,
                target_mac=packet.sender_mac,
            )
            frame = Frame(
                codepoint=FrameType.ARP,
                payload=reply,
                size=ethernet_wire_size(reply.size),
                dst_mac=packet.sender_mac,
                src_mac=self.mac,
            )
            self.arp_replies_sent += 1
            self.transmit_frame(frame, force=True)

    def _flush_pending(self, resolved_ip: IPAddress) -> None:
        pending = self._pending_arp.pop(resolved_ip, None)
        if not pending:
            return
        for packet, codepoint, force in pending:
            frame = self.encapsulate(packet, codepoint, resolved_ip)
            if frame is not None:
                self.transmit_frame(frame, force=force)
