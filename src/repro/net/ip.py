"""The IP packet model and protocol numbers.

An :class:`IPPacket` is what the strIPe layer stripes: a self-contained
datagram with a 20-byte header, a source/destination address, an upper-layer
protocol number and an opaque payload.  Consistent with the paper's headline
constraint, the striping layer never adds anything to these packets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net.addresses import IPAddress

IP_HEADER_BYTES = 20

#: Upper-layer protocol numbers (real IANA values where they exist).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_ip_ids = itertools.count(1)


@dataclass
class IPPacket:
    """A simulated IPv4 datagram.

    Attributes:
        src, dst: endpoint addresses.
        proto: upper-layer protocol number (see PROTO_*).
        payload: opaque transport segment (must expose ``size`` in bytes,
            or set ``payload_size`` explicitly).
        payload_size: payload length in bytes.
        ttl: decremented on forwarding; packet dies at 0.
        ident: IP identification field (unique per packet here).
    """

    src: IPAddress
    dst: IPAddress
    proto: int
    payload: Any = None
    payload_size: Optional[int] = None
    ttl: int = 64
    ident: int = field(default_factory=lambda: next(_ip_ids))
    #: harness-only input sequence (never read by the protocol; for metrics)
    seq: Optional[int] = None

    def __post_init__(self) -> None:
        self.src = IPAddress.parse(self.src)
        self.dst = IPAddress.parse(self.dst)
        if self.payload_size is None:
            size = getattr(self.payload, "size", None)
            if size is None:
                raise ValueError(
                    "payload has no size; pass payload_size explicitly"
                )
            self.payload_size = int(size)
        if self.payload_size < 0:
            raise ValueError("payload_size must be >= 0")

    @property
    def size(self) -> int:
        """Total datagram size in bytes (header + payload)."""
        return IP_HEADER_BYTES + int(self.payload_size)

    def __repr__(self) -> str:
        return (
            f"IPPacket(#{self.ident} {self.src}->{self.dst} "
            f"proto={self.proto} {self.size}B)"
        )
