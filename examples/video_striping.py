#!/usr/bin/env python3
"""Striping a video conference stream: is quasi-FIFO good enough?

Recreates the paper's NV experiment (section 6.3): an NV-like synthetic
video trace is striped over two lossy UDP channels with quasi-FIFO
delivery, played back through a playout-deadline model, and compared with a
pure-loss control (same losses, ideal FIFO timing).

Run with::

    python examples/video_striping.py
"""

from repro.experiments.video_quality import run_video_quality
from repro.workloads.video import synthesize_nv_trace


def main() -> None:
    trace = synthesize_nv_trace(duration_s=8.0)
    print(f"Synthetic NV trace: {len(trace.frames)} frames @ {trace.fps:.0f} fps, "
          f"{trace.total_packets} packets, "
          f"{sum(f.total_bytes for f in trace.frames) / 1e6:.2f} MB")
    print()

    result = run_video_quality(
        loss_rates=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6), duration_s=8.0
    )
    print(result.render())
    print()
    if result.reordering_insignificant():
        print("Conclusion (matches the paper): the reordering introduced by")
        print("quasi-FIFO delivery is insignificant next to the loss itself;")
        print("video degrades because packets are LOST, not because the")
        print("survivors occasionally arrive out of order.")
    else:
        print("Unexpected: reordering penalty visible — inspect the rows.")


if __name__ == "__main__":
    main()
