#!/usr/bin/env python3
"""Surviving the real world: link death, corrupted state, shifting capacity.

The paper handles crashes with a *reset* and sketches self-stabilization via
periodic checking; this example exercises the full implementation of those
ideas (``repro.core.session``) in three live scenarios:

1. a channel in a 3-link bundle dies mid-stream,
2. the receiver's protocol state is corrupted by a fault,
3. one link's capacity silently drops 4x.

Run with::

    python examples/fault_tolerance.py
"""

from repro.experiments.fault_tolerance import run_fault_tolerance


def main() -> None:
    print("Running the three fault scenarios (each with/without handling)…\n")
    report = run_fault_tolerance()
    print(report.render())
    print()
    print("Mechanism summary:")
    print(" * link failure  -> watchdog notices the silent channel and the")
    print("   sender reconfigures the bundle with a RESET carrying the new")
    print("   channel set; the stream resumes on the survivors.")
    print(" * corruption    -> markers alone cannot re-arm condition C1 once")
    print("   the receiver's round counter runs ahead; the local checker")
    print("   ([Var93]-style local checking) spots the divergence on the")
    print("   next marker and requests a correcting reset.")
    print(" * capacity drop -> quanta are re-estimated from the sender's own")
    print("   egress statistics and installed atomically at a reset epoch,")
    print("   restoring weighted-fair striping.")


if __name__ == "__main__":
    main()
