#!/usr/bin/env python3
"""Bring your own algorithm: writing a custom causal fair-queuing scheme.

The paper's framework is generic: ANY causal FQ algorithm — one whose next
choice is a function of its own state only — can stripe, and its receiver
can simulate it.  This example defines a new scheme from scratch
("two visits per channel, byte-capped"), plugs it into the library, and
checks the two properties that make it work:

1. the Theorem 3.1 reverse correspondence (executable proof), and
2. end-to-end FIFO delivery through logical reception under worst-case
   skew.

Run with::

    python examples/custom_scheme.py
"""

from dataclasses import dataclass

from repro.core import (
    CausalFQ,
    Packet,
    Resequencer,
    TransformedLoadSharer,
    stripe_sequence,
    verify_reverse_correspondence,
)


@dataclass(frozen=True)
class TwoVisitState:
    """(channel pointer, visits left this turn, bytes left this visit)."""

    ptr: int
    visits_left: int
    byte_budget: int


class TwoVisitScheme(CausalFQ):
    """A deliberately quirky CFQ scheme: each channel is visited twice in a
    row, and a visit ends after ``cap`` bytes (overdraw allowed, like SRR).

    The point is not that this is a *good* scheduler — it is that nothing
    about it is special-cased in the library: it defines ``(s0, f, g)``
    over its own state and everything else (transformation, striping,
    logical reception, the reverse-correspondence check) just works.
    """

    def __init__(self, n: int, cap: int = 2000) -> None:
        if n < 1 or cap < 1:
            raise ValueError("need n >= 1 channels and a positive cap")
        self._n = n
        self.cap = cap

    @property
    def n_channels(self) -> int:
        return self._n

    def initial_state(self) -> TwoVisitState:
        return TwoVisitState(ptr=0, visits_left=2, byte_budget=self.cap)

    def select(self, state: TwoVisitState) -> int:
        return state.ptr

    def update(self, state: TwoVisitState, size: int) -> TwoVisitState:
        budget = state.byte_budget - size
        if budget > 0:
            return TwoVisitState(state.ptr, state.visits_left, budget)
        if state.visits_left > 1:  # same channel, fresh visit
            return TwoVisitState(state.ptr, state.visits_left - 1, self.cap)
        return TwoVisitState((state.ptr + 1) % self._n, 2, self.cap)


def main() -> None:
    import random

    rng = random.Random(4)
    packets = [Packet(rng.randint(100, 1500), seq=i) for i in range(200)]

    print("custom scheme: TwoVisitScheme(n=3, cap=2500)")

    ok = verify_reverse_correspondence(TwoVisitScheme(3, 2500), packets)
    print(f"1. Theorem 3.1 reverse correspondence holds: {ok}")

    channels = stripe_sequence(
        TransformedLoadSharer(TwoVisitScheme(3, 2500)), packets
    )
    byte_split = [sum(p.size for p in c) for c in channels]
    print(f"2. byte split across channels: {byte_split}")

    receiver = Resequencer(TwoVisitScheme(3, 2500))
    delivered = []
    receiver.on_deliver = lambda p: delivered.append(p.seq)
    for index in reversed(range(3)):  # worst-case skew: reversed channels
        for packet in channels[index]:
            receiver.push(index, packet)
    fifo = delivered == [p.seq for p in packets]
    print(f"3. FIFO through logical reception under worst-case skew: {fifo}")
    print()
    print("Any (s0, f, g) whose choice depends only on its own state gets")
    print("striping + receiver simulation for free — the paper's framework")
    print("at work.  (Marker recovery additionally needs the SRR family's")
    print("round/deficit structure; see repro.core.markers.)")


if __name__ == "__main__":
    main()
