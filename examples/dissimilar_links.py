#!/usr/bin/env python3
"""strIPe over dissimilar links: the paper's headline deployment.

Builds the section 6.2 testbed — two hosts joined by a 10 Mbps Ethernet and
an ATM PVC — and measures TCP goodput three ways:

* each interface alone,
* striped with strIPe (SRR + logical reception + markers),
* striped with plain round robin (what most 1996 systems did).

Run with::

    python examples/dissimilar_links.py [pvc_mbps]
"""

import random
import sys

from repro.experiments.topology import (
    R_ATM_IP,
    R_ETH_IP,
    SCHEME_RR,
    SCHEME_SRR,
    TestbedConfig,
    measure_tcp_goodput,
)
from dataclasses import replace


def main() -> None:
    pvc_mbps = float(sys.argv[1]) if len(sys.argv) > 1 else 13.8
    base = TestbedConfig(atm_mbps=pvc_mbps)
    duration, warmup = 3.0, 1.0

    print(f"Two hosts: 10 Mbps Ethernet + {pvc_mbps} Mbps ATM PVC")
    print(f"TCP bulk transfer, random 200/1000/1460-byte messages, "
          f"{duration:.0f}s measurement\n")

    eth = measure_tcp_goodput(
        replace(base, stripe_scheme=None), R_ETH_IP, duration, warmup
    )
    print(f"Ethernet alone:            {eth['goodput_mbps']:6.2f} Mbps")

    atm = measure_tcp_goodput(
        replace(base, stripe_scheme=None), R_ATM_IP, duration, warmup
    )
    print(f"ATM PVC alone:             {atm['goodput_mbps']:6.2f} Mbps")
    upper = eth["goodput_mbps"] + atm["goodput_mbps"]
    print(f"Sum (upper bound):         {upper:6.2f} Mbps\n")

    stripe = measure_tcp_goodput(
        replace(base, stripe_scheme=SCHEME_SRR), R_ETH_IP, duration, warmup
    )
    print(f"strIPe (SRR + log. rcpt.): {stripe['goodput_mbps']:6.2f} Mbps "
          f"({stripe['goodput_mbps'] / upper:5.1%} of upper bound)")

    rr = measure_tcp_goodput(
        replace(base, stripe_scheme=SCHEME_RR), R_ETH_IP, duration, warmup
    )
    print(f"Plain round robin:         {rr['goodput_mbps']:6.2f} Mbps "
          f"({rr['goodput_mbps'] / upper:5.1%} of upper bound)")

    print()
    print("strIPe aggregates dissimilar links; RR is dragged down to the")
    print("slower link's pace because each channel carries equal packet")
    print("counts regardless of capacity.")


if __name__ == "__main__":
    main()
