#!/usr/bin/env python3
"""Quickstart: the striping protocol in five minutes.

Walks the core API end to end, using the paper's own worked example:

1. build an SRR algorithm and transform it into a load sharer,
2. stripe a packet stream across two channels,
3. reassemble the FIFO stream with logical reception,
4. lose a packet and watch marker recovery restore synchronization.

Run with::

    python examples/quickstart.py
"""

from repro.core import (
    MarkerPolicy,
    Packet,
    Resequencer,
    SRR,
    SRRReceiver,
    Striper,
    TransformedLoadSharer,
    is_marker,
)
from repro.core.striper import ListPort


def main() -> None:
    # ------------------------------------------------------------------
    print("=" * 64)
    print("1. Fair striping with Surplus Round Robin (paper fig. 6)")
    print("=" * 64)

    # Two channels, 500-byte quantum each; the paper's packets a..f.
    algorithm = SRR(quanta=[500, 500])
    sharer = TransformedLoadSharer(algorithm)

    packets = [
        Packet(550, label="a"), Packet(200, label="d"),
        Packet(400, label="e"), Packet(150, label="b"),
        Packet(300, label="c"), Packet(400, label="f"),
    ]
    ports = [ListPort(), ListPort()]
    striper = Striper(sharer, ports)
    for packet in packets:
        striper.submit(packet)

    for index, port in enumerate(ports):
        labels = " ".join(p.label for p in port.sent)
        size = sum(p.size for p in port.sent)
        print(f"  channel {index + 1}: {labels}  ({size} bytes)")
    print("  -> roughly equal bytes per channel despite mixed sizes")

    # ------------------------------------------------------------------
    print()
    print("=" * 64)
    print("2. Logical reception: FIFO restored from skewed channels")
    print("=" * 64)

    receiver = Resequencer(SRR(quanta=[500, 500]))
    delivered = []
    receiver.on_deliver = lambda p: delivered.append(p.label)

    # Worst-case skew: ALL of channel 2 arrives before channel 1.
    for packet in ports[1].sent:
        receiver.push(1, packet)
    print(f"  after channel 2 arrived: delivered = {delivered} (blocked)")
    for packet in ports[0].sent:
        receiver.push(0, packet)
    print(f"  after channel 1 arrived: delivered = {delivered}")
    print("  -> exact sender order, no sequence numbers anywhere")

    # ------------------------------------------------------------------
    print()
    print("=" * 64)
    print("3. Losing a packet and recovering with markers (paper figs. 8-13)")
    print("=" * 64)

    algorithm = SRR(quanta=[100.0, 100.0])  # unit packets: SRR becomes RR
    ports = [ListPort(), ListPort()]
    striper = Striper(
        TransformedLoadSharer(algorithm),
        ports,
        MarkerPolicy(interval_rounds=6, initial_markers=False),
    )
    for n in range(1, 19):
        striper.submit(Packet(100, seq=n))

    # Channel 1 loses packet 7 in transit.
    channel1 = [p for p in ports[0].sent if is_marker(p) or p.seq != 7]
    channel2 = list(ports[1].sent)
    print("  channel 1 carries:",
          " ".join("M" if is_marker(p) else str(p.seq) for p in channel1))
    print("  channel 2 carries:",
          " ".join("M" if is_marker(p) else str(p.seq) for p in channel2))

    receiver = SRRReceiver(SRR(quanta=[100.0, 100.0]))
    order = []
    receiver.on_deliver = lambda p: order.append(p.seq)
    for i in range(max(len(channel1), len(channel2))):
        if i < len(channel1):
            receiver.push(0, channel1[i])
        if i < len(channel2):
            receiver.push(1, channel2[i])

    print(f"  delivered: {' '.join(str(s) for s in order)}")
    print(f"  channel skips during recovery: {receiver.stats.channel_skips}")
    print("  -> quasi-FIFO: misordered only between the loss and the marker,")
    print("     perfectly FIFO again from packet 13 on (Theorem 5.1)")


if __name__ == "__main__":
    main()
