#!/usr/bin/env python3
"""Striping over lossy UDP channels with marker recovery and credits.

Reproduces the section 6.3 operating conditions: application messages
striped across two UDP flows, heavy Bernoulli loss on both channels for a
while, then clean channels.  Shows

* quasi-FIFO delivery while losses last,
* exact FIFO delivery restored right after the losses stop,
* FCVC credit flow control bounding receiver buffering on mismatched links.

Run with::

    python examples/lossy_channels.py [loss_rate]
"""

import sys

from repro.analysis.reorder import analyze_order
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator


def recovery_demo(loss_rate: float) -> None:
    print(f"--- phase demo: {loss_rate:.0%} loss for 1s, then clean ---")
    sim = Simulator()
    config = SocketTestbedConfig(loss_rates=(loss_rate,))
    testbed = build_socket_testbed(sim, config)
    testbed.stop_losses_at(1.0)
    sim.run(until=2.5)

    full = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
    after = analyze_order([d.seq for d in testbed.deliveries_after(1.2)])
    stats = testbed.receiver.resequencer.stats
    print(f"  sent {testbed.messages_sent}, delivered {full.delivered}, "
          f"lost {full.missing}")
    print(f"  out-of-order while lossy:   {full.out_of_order - after.out_of_order}")
    print(f"  out-of-order after recovery: {after.out_of_order}   "
          f"(markers received: {stats.markers_received}, "
          f"channel skips: {stats.channel_skips})")
    print()


def credit_demo() -> None:
    print("--- credit flow control on mismatched links (10 vs 2 Mbps) ---")
    for use_credit in (False, True):
        sim = Simulator()
        config = SocketTestbedConfig(
            link_mbps=(10.0, 2.0),
            prop_delay_s=(0.5e-3, 0.5e-3),
            buffer_packets=12,
            use_credit=use_credit,
        )
        testbed = build_socket_testbed(sim, config)
        sim.run(until=2.0)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        goodput = sum(d.size for d in testbed.deliveries) * 8 / 2.0 / 1e6
        label = "with FCVC credits" if use_credit else "without credits  "
        print(f"  {label}: delivered {report.delivered}, "
              f"buffer drops {testbed.receiver.buffer_drops}, "
              f"goodput {goodput:.2f} Mbps")
    print()
    print("Credits throttle the fast channel to the receiver's pace, so the")
    print("bounded reassembly buffer never overflows (Kung-Chapman FCVC,")
    print("advertisements piggybacked on the reverse control path).")


def main() -> None:
    loss = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    recovery_demo(loss)
    recovery_demo(0.8)
    credit_demo()


if __name__ == "__main__":
    main()
