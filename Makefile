# Convenience targets for the reproduction repo.

.PHONY: install test bench experiments quick-experiments examples clean \
	endpoints-smoke chaos-smoke reliability-smoke fabric-smoke \
	fast-reliable-smoke sprinklers-smoke fec-smoke recovery-smoke \
	lint-endpoints

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Fast confidence check for the endpoint layer: unit/regression tests for
# the pipelines plus the cross-transport equivalence properties.
endpoints-smoke:
	PYTHONPATH=src pytest tests/transport/test_endpoint.py \
		tests/properties/test_endpoint_equivalence.py \
		tests/core/test_marker_codec.py

# Fast confidence check for the fault-injection and lifecycle machinery:
# the seeded chaos invariant suite, the lifecycle state-machine tests, the
# injector unit tests, and a quick pass of the chaos experiment itself.
chaos-smoke:
	PYTHONPATH=src pytest tests/properties/test_chaos_invariants.py \
		tests/transport/test_lifecycle.py \
		tests/sim/test_faults.py
	PYTHONPATH=src python -m repro.experiments.runner chaos --quick

# Fast confidence check for the reliability layer: ARQ unit/e2e tests,
# the marker/SACK codec, the persistent-loss chaos family, and a quick
# pass of the best-effort-vs-reliable experiment.
reliability-smoke:
	PYTHONPATH=src pytest tests/transport/test_reliability.py \
		tests/core/test_marker_codec.py
	PYTHONPATH=src pytest tests/properties/test_chaos_invariants.py \
		-k "persistent or duplicated"
	PYTHONPATH=src python -m repro.experiments.runner reliability --quick

# Fast confidence check for the multi-tenant session fabric: flow-table /
# scheduler unit tests (incl. the reliable-mode interop regression), the
# composed FQ x SRR fairness invariants, and the 512-flow quick fairness
# run (Jain >= 0.95 per tenant, weighted shares within 10%).
fabric-smoke:
	PYTHONPATH=src pytest tests/transport/test_fabric.py \
		tests/properties/test_fabric_invariants.py
	PYTHONPATH=src python -m repro.experiments.runner fabric --quick

# Fast confidence check for the fast path x reliability work: the
# per-mode ref/fast equivalence properties (clean, lossy, crash,
# persistent loss), the batched-ARQ unit tests, the vectorized-kernel
# tests (skipped gracefully when numpy is absent), then the sim
# benchmark gate — >= 3x fast-path speedup on every reliability mode
# with bit-identical delivery records (SIM_BENCH_* env knobs apply).
fast-reliable-smoke:
	PYTHONPATH=src pytest tests/properties/test_fast_path_equivalence.py \
		tests/transport/test_reliability.py \
		tests/core/test_numpy_kernel.py
	PYTHONPATH=src pytest benchmarks/test_bench_sim.py -x -q

# Fast confidence check for the synchronization-model work: the
# Sprinklers discipline unit/property tests (in-order proof obligations),
# the sync-model family tests (incl. the zero-marker-codec regression),
# then the quick head-to-head benchmark, which asserts reorder rate 0 and
# receiver high-water mark 0 for Sprinklers on every stable transport.
sprinklers-smoke:
	PYTHONPATH=src pytest tests/core/test_sprinklers.py \
		tests/transport/test_sync_model.py
	SPRINKLERS_BENCH_QUICK=1 PYTHONPATH=src pytest \
		benchmarks/test_bench_sprinklers.py -x -q

# Fast confidence check for the erasure-coding work: the GF(256) codec
# suite (numpy legs skip gracefully when numpy is absent), the FEC
# transport-layer unit tests (group lifecycle, gap-skip, escalation,
# pool contract), the e2e recovery properties (pure-fec acceptance,
# hybrid exactly-once + fairness envelope, hybrid <= ARQ
# retransmissions), then the quick sweep benchmark, which asserts
# hybrid goodput >= pure ARQ at every point (FEC_BENCH_* env knobs).
fec-smoke:
	PYTHONPATH=src pytest tests/core/test_fec.py \
		tests/transport/test_fec_transport.py \
		tests/properties/test_fec_properties.py
	FEC_BENCH_TOTAL_S=0.4 FEC_BENCH_RATES=0.03,0.10 \
		PYTHONPATH=src pytest benchmarks/test_bench_fec.py -x -q

# Fast confidence check for the crash-recovery work: the checkpoint
# codec/store/handshake unit suite (incl. the 39-cell registry
# serialization fixpoint), the kill/restart chaos properties (warm
# checkpointed restarts and the cold marker-resync leg), the extended
# fault-injector suite (corrupt_deliver, endpoint_crash, pool
# double-release guard), and a quick pass of the recovery experiment.
recovery-smoke:
	PYTHONPATH=src pytest tests/transport/test_recovery.py \
		tests/properties/test_recovery_properties.py \
		tests/sim/test_faults.py
	PYTHONPATH=src python -m repro.experiments.runner recovery --quick

# Complexity/length guard for src/repro/transport/ (C901, PLR0915);
# ruff is not vendored — install it locally to run this target.
lint-endpoints:
	ruff check src/repro/transport/

experiments:
	python -m repro.experiments --all --json results.json

quick-experiments:
	python -m repro.experiments --all --quick

examples:
	python examples/quickstart.py
	python examples/custom_scheme.py
	python examples/dissimilar_links.py
	python examples/lossy_channels.py
	python examples/video_striping.py
	python examples/fault_tolerance.py

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
