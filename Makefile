# Convenience targets for the reproduction repo.

.PHONY: install test bench experiments quick-experiments examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.experiments --all --json results.json

quick-experiments:
	python -m repro.experiments --all --quick

examples:
	python examples/quickstart.py
	python examples/custom_scheme.py
	python examples/dissimilar_links.py
	python examples/lossy_channels.py
	python examples/video_striping.py
	python examples/fault_tolerance.py

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
