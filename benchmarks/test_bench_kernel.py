"""Scheduler-kernel throughput tracking: frozen state vs kernel vs batched.

The acceptance bar for the kernel refactor: the batched
``stripe_sequence`` hot path must stripe at least 3x the packets/sec of
the legacy frozen-dataclass path (per-packet ``select``/``update`` with a
new :class:`~repro.core.srr.SRRState` allocated each step), with
byte-identical channel assignments.

Results are written to ``BENCH_kernel.json`` at the repo root so the
numbers are tracked across PRs.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import List

from repro.core.kernel import SRRKernel
from repro.core.packet import Packet
from repro.core.srr import SRR
from repro.core.transform import TransformedLoadSharer, stripe_sequence
from repro.experiments.kernel_bench import run_kernel_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

N_PACKETS = 100_000
QUANTA = [1500.0, 2070.0, 900.0]
UNIFORM_SIZE = 1000
REPEATS = 3


def make_packets(n=N_PACKETS, seed=1):
    rng = random.Random(seed)
    return [Packet(rng.randint(40, 1500), seq=i) for i in range(n)]


def stripe_frozen(algorithm: SRR, packets) -> List[List[Packet]]:
    """The pre-kernel reference: frozen-dataclass stepping per packet."""
    channels: List[List[Packet]] = [[] for _ in range(algorithm.n_channels)]
    state = algorithm.initial_state()
    for packet in packets:
        channel = algorithm.select(state)
        channels[channel].append(packet)
        state = algorithm.update(state, packet.size)
    return channels


def best_rate(fn, n_packets: int, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return n_packets / best


def test_bench_stripe_sequence_speedup():
    """Batched stripe_sequence >= 3x the frozen-dataclass path; emit JSON."""
    packets = make_packets()
    algorithm = SRR(QUANTA)

    frozen_channels = stripe_frozen(algorithm, packets)
    kernel_channels = stripe_sequence(TransformedLoadSharer(algorithm), packets)
    assert [
        [p.uid for p in ch] for ch in frozen_channels
    ] == [[p.uid for p in ch] for ch in kernel_channels]

    frozen_rate = best_rate(
        lambda: stripe_frozen(algorithm, packets), len(packets)
    )
    batched_rate = best_rate(
        lambda: stripe_sequence(TransformedLoadSharer(algorithm), packets),
        len(packets),
    )
    speedup = batched_rate / frozen_rate

    stepping = run_kernel_bench(n_packets=N_PACKETS, quanta=QUANTA)
    assert stepping.assignments_identical

    # Uniform-cost workload: the shape the closed-form numpy kernel
    # vectorizes (every message the same size — the harness's constant
    # 1000 B source).  The numpy path is added only when importable.
    uniform = run_kernel_bench(
        n_packets=N_PACKETS, quanta=QUANTA,
        uniform_size=UNIFORM_SIZE, numpy=True,
    )
    assert uniform.assignments_identical

    def stepping_json(result):
        return {
            name: {
                "pkts_per_sec": round(rate),
                "speedup_vs_frozen": round(
                    result.speedup_vs_frozen[name], 2
                ),
            }
            for name, rate in result.packets_per_sec.items()
        }

    report = {
        "workload": {
            "n_packets": N_PACKETS,
            "quanta": QUANTA,
            "size_range": [40, 1500],
        },
        "stripe_sequence": {
            "frozen_pkts_per_sec": round(frozen_rate),
            "batched_pkts_per_sec": round(batched_rate),
            "speedup": round(speedup, 2),
        },
        "stepping": stepping_json(stepping),
        "stepping_uniform": {
            "uniform_size": UNIFORM_SIZE,
            "numpy_available": "numpy" in uniform.packets_per_sec,
            **stepping_json(uniform),
        },
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nstripe_sequence: frozen {frozen_rate:,.0f} pkt/s, "
          f"batched {batched_rate:,.0f} pkt/s ({speedup:.2f}x)")
    print(stepping.render())
    print("uniform workload:")
    print(uniform.render())
    print(f"results written to {BENCH_JSON}")

    assert speedup >= 3.0, (
        f"batched stripe_sequence is only {speedup:.2f}x the frozen path"
    )
    if "numpy" in uniform.packets_per_sec:
        numpy_speedup = uniform.speedup_vs_frozen["numpy"]
        assert numpy_speedup >= 10.0, (
            f"numpy stepping is only {numpy_speedup:.2f}x the frozen path "
            "on the uniform workload"
        )


def test_bench_kernel_step(benchmark):
    """Per-packet mutable kernel stepping (pytest-benchmark timing)."""
    sizes = [p.size for p in make_packets(20_000)]
    algorithm = SRR(QUANTA)

    def run():
        kernel = SRRKernel(algorithm)
        step = kernel.step
        for size in sizes:
            step(size)
        return kernel.round_number

    benchmark(run)


def test_bench_kernel_assign_many(benchmark):
    """Batched kernel assignment (pytest-benchmark timing)."""
    sizes = [p.size for p in make_packets(20_000)]
    algorithm = SRR(QUANTA)

    def run():
        return SRRKernel(algorithm).assign_many(sizes)

    result = benchmark(run)
    assert len(result) == len(sizes)
