"""Bench: Figure 15 — throughput vs ATM PVC capacity, all seven curves.

Paper shape (section 6.2):

* the upper bound (sum of separately measured interfaces) rises with the
  PVC rate;
* strIPe (SRR + logical reception) tracks it until ~14 Mbps, then flattens
  (interrupt-bound receiver);
* every "no logical reception" variant sits below its resequenced
  counterpart (TCP treats reordering as loss);
* plain RR is capped by the Ethernet: flat beyond the crossover.
"""

from repro.experiments.figure15 import (
    check_figure15_shape,
    run_figure15,
)

ATM_RATES = (3.8, 7.6, 13.8, 17.8, 23.8)


def test_bench_fig15(benchmark):
    result = benchmark.pedantic(
        run_figure15,
        kwargs=dict(atm_rates_mbps=ATM_RATES, duration_s=2.0, warmup_s=0.5),
        rounds=1, iterations=1,
    )
    print()
    print("Figure 15: application-level throughput (Mbps) vs ATM PVC rate")
    print(result.render())
    violations = check_figure15_shape(result)
    assert violations == [], violations

    rows = result.rows
    # strIPe tracks the upper bound at low rates...
    low = rows[0]
    assert low.variants["srr_lr"] > 0.85 * low.upper_bound
    # ...and flattens below it at high rates (the CPU knee).
    high = rows[-1]
    assert high.variants["srr_lr"] < 0.85 * high.upper_bound
    # RR is flat once the PVC outruns the Ethernet.
    rr_tail = [row.variants["rr_lr"] for row in rows[-3:]]
    assert max(rr_tail) - min(rr_tail) < 0.15 * max(rr_tail)
    # Monotone upper bound.
    uppers = [row.upper_bound for row in rows]
    assert all(b > a - 0.5 for a, b in zip(uppers, uppers[1:]))
