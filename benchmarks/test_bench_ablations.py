"""Ablation benches for the design choices DESIGN.md calls out.

* Quantum sizing: Theorem 5.1 assumes ``quantum_i >= Max``; undersized
  quanta cause deep-overdraw channel skips (measured here).
* Resequencer buffering vs skew: logical reception's memory cost grows
  with channel skew — quantified against MPPP's sequence-number buffer.
* Marker overhead: bandwidth spent on markers vs interval.
* MPPP header overhead and MTU rejects vs strIPe's zero modification.
"""

from repro.analysis.reorder import analyze_order
from repro.baselines.mppp import MpppReceiver, MpppSender
from repro.core.markers import SRRReceiver
from repro.core.packet import is_marker
from repro.core.resequencer import Resequencer
from repro.core.srr import SRR, make_rr
from repro.core.striper import ListPort, MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer, stripe_sequence
from repro.workloads.generators import random_mix_packets


def quantum_sizing_ablation():
    """Compare skip counts with quantum >= Max vs quantum < Max."""
    results = {}
    packets = random_mix_packets(2000, sizes=(200, 1000, 1460), seed=3)
    for label, quantum in (("quantum>=Max", 1500.0), ("quantum<Max", 400.0)):
        algorithm = SRR([quantum, quantum])
        channels = stripe_sequence(TransformedLoadSharer(algorithm), packets)
        receiver = SRRReceiver(SRR([quantum, quantum]))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        longest = max(len(c) for c in channels)
        for i in range(longest):
            for index, stream in enumerate(channels):
                if i < len(stream):
                    receiver.push(index, stream[i])
        results[label] = {
            "delivered": len(delivered),
            "fifo": delivered == sorted(delivered),
            "deep_overdraw_skips": receiver.stats.deep_overdraw_skips,
            "max_buffered": receiver.stats.max_buffered,
        }
    return results


def test_bench_ablation_quantum(benchmark):
    results = benchmark.pedantic(quantum_sizing_ablation, rounds=1, iterations=1)
    print()
    print("ablation: quantum sizing (Theorem 5.1 assumption)")
    for label, stats in results.items():
        print(f"  {label}: {stats}")
    # Both deliver FIFO without loss, but undersized quanta violate the
    # Theorem 5.1 assumption: channels get skipped for whole rounds
    # because one quantum cannot cover a max-size packet's overdraw.
    assert results["quantum>=Max"]["fifo"]
    assert results["quantum<Max"]["fifo"]
    assert results["quantum>=Max"]["deep_overdraw_skips"] == 0
    assert results["quantum<Max"]["deep_overdraw_skips"] > 0


def buffering_vs_skew():
    """Resequencer peak buffering as channel-major skew grows."""
    rows = []
    packets = random_mix_packets(1000, seed=5)
    algorithm = SRR([1500.0, 1500.0])
    channels = stripe_sequence(TransformedLoadSharer(algorithm), packets)
    for skew_packets in (0, 50, 200, 500):
        receiver = Resequencer(SRR([1500.0, 1500.0]))
        # channel 1 is delayed by `skew_packets` relative to channel 0
        fed0 = 0
        fed1 = 0
        while fed0 < len(channels[0]) or fed1 < len(channels[1]):
            if fed0 < len(channels[0]):
                receiver.push(0, channels[0][fed0])
                fed0 += 1
            if fed0 > skew_packets and fed1 < len(channels[1]):
                receiver.push(1, channels[1][fed1])
                fed1 += 1
        while fed1 < len(channels[1]):
            receiver.push(1, channels[1][fed1])
            fed1 += 1
        rows.append((skew_packets, receiver.max_buffered))
    return rows


def test_bench_ablation_buffering(benchmark):
    rows = benchmark.pedantic(buffering_vs_skew, rounds=1, iterations=1)
    print()
    print("ablation: resequencer peak buffering vs channel skew (packets)")
    for skew, buffered in rows:
        print(f"  skew={skew:>4}: max buffered {buffered}")
    buffers = [buffered for _, buffered in rows]
    # peak buffering tracks the skew once the skew dominates quantum
    # phasing effects, and grows roughly linearly with it
    assert buffers[-1] > buffers[0]
    assert buffers[-1] >= 0.8 * 500
    assert buffers[2] >= 0.8 * 200


def marker_overhead():
    """Marker bytes as a fraction of data bytes, per interval."""
    rows = []
    packets = random_mix_packets(3000, seed=6)
    for interval in (1, 5, 20, 100):
        algorithm = SRR([1500.0, 1500.0])
        ports = [ListPort(), ListPort()]
        striper = Striper(
            TransformedLoadSharer(algorithm), ports,
            MarkerPolicy(interval_rounds=interval, initial_markers=False),
        )
        for packet in packets:
            striper.submit(packet)
        marker_bytes = sum(
            p.size for port in ports for p in port.sent if is_marker(p)
        )
        data_bytes = sum(
            p.size for port in ports for p in port.sent if not is_marker(p)
        )
        rows.append((interval, marker_bytes / data_bytes))
    return rows


def test_bench_ablation_marker_overhead(benchmark):
    rows = benchmark.pedantic(marker_overhead, rounds=1, iterations=1)
    print()
    print("ablation: marker bandwidth overhead vs interval (rounds)")
    for interval, overhead in rows:
        print(f"  every {interval:>3} rounds: {overhead:.4%} of data bytes")
    overheads = [o for _, o in rows]
    assert overheads == sorted(overheads, reverse=True)
    assert overheads[-1] < 0.001  # sparse markers are nearly free
    assert overheads[0] < 0.05  # even per-round markers cost under 5%


def mppp_vs_stripe_overhead():
    """Header overhead and MTU rejects: MPPP vs strIPe."""
    packets = random_mix_packets(2000, sizes=(200, 1000, 1500), seed=7)
    ports = [ListPort(), ListPort()]
    sender = MpppSender(
        TransformedLoadSharer(make_rr(2)), ports, channel_mtu=1500
    )
    for packet in packets:
        sender.submit(packet)
    receiver = MpppReceiver()
    delivered = []
    for index, port in enumerate(ports):
        for fragment in port.sent:
            delivered.extend(receiver.push(index, fragment))
    delivered.extend(receiver.flush())
    return {
        "mppp_header_bytes": sender.header_overhead_bytes,
        "mppp_mtu_rejects": sender.oversize_rejects,
        "mppp_fifo": analyze_order([p.seq for p in delivered]).is_fifo,
        "data_bytes": sum(p.size for p in packets),
    }


def test_bench_ablation_mppp_overhead(benchmark):
    stats = benchmark.pedantic(mppp_vs_stripe_overhead, rounds=1, iterations=1)
    print()
    print("ablation: MPPP sequence headers vs strIPe's zero modification")
    for key, value in stats.items():
        print(f"  {key}: {value}")
    # MPPP guarantees FIFO but pays header bytes and rejects MTU-sized
    # packets — the cost the strIPe design avoids entirely.
    assert stats["mppp_fifo"]
    assert stats["mppp_header_bytes"] > 0
    assert stats["mppp_mtu_rejects"] > 0
