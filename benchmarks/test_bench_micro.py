"""Micro-benchmarks: the paper's "little overhead" claim, timed.

"SRR requires only a few extra instructions to increment the Deficit
Counter and do a comparison; the marker based synchronization protocol is
also simple since it only involves keeping a counter and sending a marker"
(Conclusion).  These are real pytest-benchmark timings (many rounds) of
the per-packet costs of each component, plus the raw event-engine rate
that bounds every simulation in this repo.
"""

import random

from repro.core.markers import SRRReceiver
from repro.core.packet import Packet
from repro.core.resequencer import Resequencer
from repro.core.srr import SRR
from repro.core.striper import ListPort, MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer
from repro.sim.engine import Simulator

N_PACKETS = 2000


def make_packets(n=N_PACKETS, seed=1):
    rng = random.Random(seed)
    return [Packet(rng.randint(40, 1500), seq=i) for i in range(n)]


def test_bench_srr_state_machine(benchmark):
    """Pure SRR select+update per packet."""
    srr = SRR([1500.0, 2070.0, 900.0])
    packets = make_packets()

    def run():
        state = srr.initial_state()
        for packet in packets:
            srr.select(state)
            state = srr.update(state, packet.size)
        return state

    benchmark(run)


def test_bench_striper_throughput(benchmark):
    """Full sender engine (markers every 10 rounds) per packet."""
    packets = make_packets()

    def run():
        striper = Striper(
            TransformedLoadSharer(SRR([1500.0, 2070.0])),
            [ListPort(), ListPort()],
            MarkerPolicy(interval_rounds=10, initial_markers=False),
        )
        for packet in packets:
            striper.submit(packet)
        return striper.packets_sent

    result = benchmark(run)
    assert result == N_PACKETS


def test_bench_logical_reception(benchmark):
    """Receiver simulation per packet (pre-striped stream)."""
    packets = make_packets()
    channels = []
    sharer = TransformedLoadSharer(SRR([1500.0, 2070.0]))
    from repro.core.transform import stripe_sequence

    channels = stripe_sequence(sharer, packets)

    def run():
        receiver = Resequencer(SRR([1500.0, 2070.0]))
        count = [0]
        receiver.on_deliver = lambda p: count.__setitem__(0, count[0] + 1)
        for index, stream in enumerate(channels):
            for packet in stream:
                receiver.push(index, packet)
        return count[0]

    result = benchmark(run)
    assert result == N_PACKETS


def test_bench_marker_receiver(benchmark):
    """Marker-synchronized receiver per packet (markers every round)."""
    ports = [ListPort(), ListPort()]
    striper = Striper(
        TransformedLoadSharer(SRR([1500.0, 2070.0])), ports,
        MarkerPolicy(interval_rounds=1, initial_markers=False),
    )
    for packet in make_packets():
        striper.submit(packet)
    streams = [list(p.sent) for p in ports]

    def run():
        receiver = SRRReceiver(SRR([1500.0, 2070.0]))
        for index, stream in enumerate(streams):
            for packet in stream:
                receiver.push(index, packet)
        return receiver.stats.delivered

    result = benchmark(run)
    assert result == N_PACKETS


def test_bench_event_engine(benchmark):
    """Raw engine throughput: schedule+dispatch chains."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    result = benchmark(run)
    assert result == 20000
