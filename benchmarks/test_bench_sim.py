"""End-to-end simulator throughput tracking: reference path vs fast path.

The acceptance bar for the event-engine fast path: the burst-batched
simulation (slot-free scheduling, channel transmit bursts, batched striper
pump) must deliver at least 3x the packets/sec of the reference per-packet
UDP/IP path on the scalability testbed, with the identical ``(time, seq)``
delivery record list (checked inside the benchmark itself).

Results are written to ``BENCH_sim.json`` at the repo root so the numbers
are tracked across PRs.

Environment knobs (for the CI smoke job and local quick runs):

* ``SIM_BENCH_DURATION`` — simulated seconds per run (default 1.0).
* ``SIM_BENCH_MIN_SPEEDUP`` — required min speedup (default 3.0; the CI
  smoke job relaxes this because shared runners are noisy).
* ``SIM_BENCH_CHANNELS`` — comma-separated channel counts
  (default ``2,4,8,16``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.sim_bench import (
    RELIABILITY_MODES,
    RELIABLE_BENCH_OPTIONS,
    run_reliability_mode_bench,
    run_sim_bench,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

DURATION_S = float(os.environ.get("SIM_BENCH_DURATION", "1.0"))
MIN_SPEEDUP = float(os.environ.get("SIM_BENCH_MIN_SPEEDUP", "3.0"))
CHANNEL_COUNTS = tuple(
    int(n) for n in os.environ.get("SIM_BENCH_CHANNELS", "2,4,8,16").split(",")
)
MODE_LOSS = 0.1
REPEATS = 3


def test_bench_sim_fast_path_speedup():
    """Fast path >= MIN_SPEEDUP x reference packets/sec; emit JSON.

    Two axes: channel-count scaling (the original clean quasi-FIFO
    testbed) and the reliability-mode axis — one row per service level,
    each requiring the same speedup bar on the clean run plus
    bit-identical deliveries on a 10 %-loss run.
    """
    result = run_sim_bench(
        channel_counts=CHANNEL_COUNTS,
        duration_s=DURATION_S,
        repeats=REPEATS,
    )

    assert result.all_equal(), (
        "fast path delivery records diverged from the reference path:\n"
        + result.render()
    )

    modes = run_reliability_mode_bench(
        duration_s=DURATION_S,
        loss=MODE_LOSS,
        repeats=REPEATS,
    )

    assert modes.all_identical(), (
        "fast path delivery records diverged from the reference path on "
        "the reliability-mode axis:\n" + modes.render()
    )

    report = {
        "workload": {
            "testbed": "scalability clean run (SRR, per-round markers, "
                       "closed-loop source)",
            "channel_counts": list(CHANNEL_COUNTS),
            "sim_duration_s": DURATION_S,
            "link_mbps": 10.0,
            "message_bytes": 1000,
            "repeats": REPEATS,
        },
        "rows": [
            {
                "n_channels": row.n_channels,
                "packets_delivered": row.packets,
                "reference_pkts_per_sec": round(row.reference_pps),
                "fast_pkts_per_sec": round(row.fast_pps),
                "reference_events_per_sec": round(row.reference_eps),
                "fast_events_per_sec": round(row.fast_eps),
                "speedup": round(row.speedup, 2),
                "deliveries_identical": row.deliveries_equal,
            }
            for row in result.rows
        ],
        "min_speedup": round(result.min_speedup(), 2),
        "reliability_modes": {
            "loss": MODE_LOSS,
            "reliable_options": RELIABLE_BENCH_OPTIONS,
            "rows": [
                {
                    "reliability_mode": row.mode,
                    "n_channels": row.n_channels,
                    "packets_delivered": row.packets,
                    "lossy_packets_delivered": row.lossy_packets,
                    "reference_pkts_per_sec": round(row.reference_pps),
                    "fast_pkts_per_sec": round(row.fast_pps),
                    "speedup": round(row.speedup, 2),
                    "deliveries_identical": row.deliveries_identical,
                }
                for row in modes.rows
            ],
            "min_speedup": round(modes.min_speedup(), 2),
        },
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print("\n" + result.render())
    print("\nreliability modes (clean speedup + 10% loss equivalence):")
    print(modes.render())
    print(f"results written to {BENCH_JSON}")

    assert result.min_speedup() >= MIN_SPEEDUP, (
        f"fast path is only {result.min_speedup():.2f}x the reference path "
        f"(need {MIN_SPEEDUP:.1f}x):\n" + result.render()
    )
    assert set(row.mode for row in modes.rows) == set(RELIABILITY_MODES)
    assert modes.min_speedup() >= MIN_SPEEDUP, (
        f"fast path is only {modes.min_speedup():.2f}x the reference path "
        f"on the reliability-mode axis (need {MIN_SPEEDUP:.1f}x):\n"
        + modes.render()
    )
