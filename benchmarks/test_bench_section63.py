"""Benches: the four quantitative §6.3 findings.

* sync_loss — FIFO restored after losses stop, swept to 80% loss.
* marker_freq — OOO deliveries fall as marker frequency rises.
* marker_pos — round-boundary markers minimize OOO deliveries.
* credit_fc — FCVC credits eliminate congestion loss.
"""

from repro.experiments.flow_control import run_flow_control
from repro.experiments.loss_recovery import run_loss_recovery
from repro.experiments.marker_frequency import run_marker_frequency
from repro.experiments.marker_position import run_marker_position


def test_bench_sync_loss(benchmark):
    result = benchmark.pedantic(
        run_loss_recovery,
        kwargs=dict(
            loss_rates=(0.05, 0.1, 0.2, 0.4, 0.6, 0.8),
            loss_phase_s=1.0, total_s=2.5,
        ),
        rounds=1, iterations=1,
    )
    print()
    print("§6.3 finding 1: resynchronization after loss stops")
    print(result.render())
    assert result.all_recovered
    # Losses really happened at every swept rate and scale with the rate.
    losses = [row.lost for row in result.rows]
    assert all(l > 0 for l in losses)
    assert losses[-1] > losses[0]


def test_bench_marker_freq(benchmark):
    result = benchmark.pedantic(
        run_marker_frequency,
        kwargs=dict(intervals=(1, 2, 5, 10, 20, 50), duration_s=2.0),
        rounds=1, iterations=1,
    )
    print()
    print("§6.3 finding 2: marker frequency vs out-of-order deliveries")
    print(result.render())
    assert result.is_monotone_enough()
    fractions = [row.ooo_fraction for row in result.rows]
    # the sparsest markers are much worse than the densest
    assert fractions[-1] > 3 * fractions[0]


def test_bench_marker_pos(benchmark):
    result = benchmark.pedantic(
        run_marker_position,
        kwargs=dict(duration_s=2.0, seeds=(0, 1, 2, 3, 4)),
        rounds=1, iterations=1,
    )
    print()
    print("§6.3 finding 3: marker position within the round")
    print(result.render())
    assert result.boundary_is_near_optimal(slack=1.1)


def test_bench_credit_fc(benchmark):
    result = benchmark.pedantic(
        run_flow_control,
        kwargs=dict(duration_s=2.0),
        rounds=1, iterations=1,
    )
    print()
    print("§6.3 finding 4: FCVC credit flow control")
    print(result.render())
    without = result.row(False)
    with_credits = result.row(True)
    assert without.buffer_drops > 0
    assert with_credits.buffer_drops == 0
    # flow control also improves goodput (no wasted transmissions)
    assert with_credits.goodput_mbps >= without.goodput_mbps
