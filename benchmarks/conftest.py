"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures at full
scale and prints it (run with ``-s`` or read the captured block).  The
pytest-benchmark timing is incidental — what matters is the printed
artifact and the shape assertions.
"""
