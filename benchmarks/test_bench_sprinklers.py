"""The Sprinklers vs SRR+markers head-to-head (ISSUE 8 acceptance run).

Runs the full :mod:`repro.experiments.sprinklers` comparison — all five
transports, chaos faults, flow-count scale — and asserts the
marker-free acceptance bars:

* **zero reordering** for Sprinklers on every stable transport (socket
  reference, fast path, session, duplex).  TCP channels are elastic
  (per-connection congestion state skews arrival order), so TCP's
  reorder rate is recorded as a data point, not gated;
* **zero receiver memory**: the Sprinklers high-water mark is 0 packets
  on every transport (direct reception buffers nothing), while
  SRR+markers holds a resequencer backlog;
* **zero markers**: the marker-free path sends no control packets;
* **goodput parity**: Sprinklers is within 10% of SRR+markers on every
  stable transport (in practice it is slightly ahead — no marker
  bandwidth);
* at scale, every submitted packet is delivered exactly once and Jain's
  index across equal-weight flows stays >= 0.95.

Results are written to ``BENCH_sprinklers.json`` at the repo root so the
numbers are tracked across PRs.

Environment knobs (for the CI smoke job and local quick runs):

* ``SPRINKLERS_BENCH_QUICK=1`` — short runs (the CI smoke setting).
* ``SPRINKLERS_BENCH_FLOWS`` — scale-leg flow count (default 10000).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.experiments.sprinklers import (
    STABLE_TRANSPORTS,
    TRANSPORTS,
    run_sprinklers,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sprinklers.json"

QUICK = os.environ.get("SPRINKLERS_BENCH_QUICK", "") == "1"
N_FLOWS = int(os.environ.get("SPRINKLERS_BENCH_FLOWS", "10000"))
GOODPUT_PARITY = 0.90
MIN_JAIN = 0.95


def test_bench_sprinklers_head_to_head():
    """Sprinklers acceptance bars on all five transports + JSON."""
    started = time.perf_counter()
    if QUICK:
        result = run_sprinklers(quick=True)
    else:
        result = run_sprinklers(scale_flows=N_FLOWS)
    wall_s = time.perf_counter() - started

    assert {row.transport for row in result.head_to_head} == set(TRANSPORTS)
    for transport in STABLE_TRANSPORTS:
        sprinklers = result.row(transport, "sprinklers")
        srr = result.row(transport, "srr")
        assert sprinklers.out_of_order == 0, (
            f"{transport}: Sprinklers reordered on stable channels:\n"
            + result.render()
        )
        assert sprinklers.receiver_hwm == 0, (
            f"{transport}: marker-free receiver buffered packets:\n"
            + result.render()
        )
        assert sprinklers.markers_sent == 0
        assert sprinklers.goodput_mbps >= GOODPUT_PARITY * srr.goodput_mbps, (
            f"{transport}: Sprinklers goodput fell behind SRR+markers:\n"
            + result.render()
        )
    # TCP: elastic channels — reorder is measured, not gated; but direct
    # reception must still hold zero receiver memory.
    tcp = result.row("tcp", "sprinklers")
    assert tcp.receiver_hwm == 0

    for row in result.chaos:
        assert row.duplicates == 0

    for row in result.scale:
        assert row.delivered == row.total, (
            f"{row.discipline}: lost packets at {row.n_flows} flows"
        )
        assert row.jain_flows >= MIN_JAIN
    sprinklers_scale = [
        row for row in result.scale if row.discipline == "sprinklers"
    ]
    assert all(row.receiver_hwm == 0 for row in sprinklers_scale)

    report = {
        "workload": {
            "transports": list(TRANSPORTS),
            "stable_transports": list(STABLE_TRANSPORTS),
            "scale_flows": result.scale[0].n_flows if result.scale else 0,
            "quick": QUICK,
        },
        "head_to_head": [
            dataclasses.asdict(row) for row in result.head_to_head
        ],
        "chaos": [dataclasses.asdict(row) for row in result.chaos],
        "scale": [dataclasses.asdict(row) for row in result.scale],
        "acceptance": {
            "stable_reorder_rate": 0.0,
            "stable_receiver_hwm": 0,
            "goodput_parity": GOODPUT_PARITY,
            "min_jain": MIN_JAIN,
        },
        "wall_clock_s": wall_s,
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(result.render())
