"""Bench: the §6.2 GRR worst case — alternating 1000/200-byte packets.

Paper: PVC tuned so both interfaces give equal goodput; GRR then reduces to
RR and the alternation pins all big packets to one link: 6.8 Mbps vs SRR's
11.2 Mbps (ratio 0.61).  On a random mix of the same sizes the schemes tie.
"""

from repro.experiments.grr_worst_case import run_grr_worst_case


def test_bench_grr_worst(benchmark):
    result = benchmark.pedantic(
        run_grr_worst_case,
        kwargs=dict(duration_s=2.0, warmup_s=0.5),
        rounds=1, iterations=1,
    )
    print()
    print(result.render())

    # The adversary hurts GRR badly but not SRR.
    assert result.grr_alternating_mbps < 0.75 * result.srr_alternating_mbps
    # The paper's ratio is 0.61; ours should be in the same regime.
    assert 0.4 < result.adversarial_drop < 0.8
    # On the random mix the schemes are comparable (within 10%).
    assert (
        abs(result.srr_random_mbps - result.grr_random_mbps)
        < 0.1 * result.srr_random_mbps
    )
    # SRR is insensitive to the arrival pattern (paper: "the packet arrival
    # sequence did not have any effect on throughput").
    assert (
        abs(result.srr_alternating_mbps - result.srr_random_mbps)
        < 0.1 * result.srr_random_mbps
    )
