"""Scheme shootout: every implemented striping policy, same workloads.

An extended, quantitative Table 1: for each scheme, byte-fairness (Jain
index) on the adversarial and random workloads, and out-of-order
deliveries under skewed arrival with its natural receiver (logical
reception where the scheme supports it, arrival order where it does not).
"""

import random

from repro.analysis.reorder import analyze_order
from repro.baselines.address_hash import AddressHashing
from repro.baselines.random_selection import RandomSelection
from repro.baselines.sqf import ShortestQueueFirst
from repro.core.fairness import jain_fairness_index
from repro.core.resequencer import Resequencer
from repro.core.schemes import SeededRandomFQ
from repro.core.srr import SRR, make_grr, make_rr
from repro.core.transform import (
    TransformedLoadSharer,
    bytes_per_channel,
    stripe_sequence,
)
from repro.workloads.generators import alternating_packets, random_mix_packets


def flows(packets, n_flows=8, seed=3):
    rng = random.Random(seed)
    for packet in packets:
        packet.flow = f"10.0.0.{rng.randrange(n_flows)}"
    return packets


def build_schemes():
    return [
        ("SRR", lambda: TransformedLoadSharer(SRR([1500, 1500])), True),
        ("RR", lambda: TransformedLoadSharer(make_rr(2)), True),
        ("GRR [1,1]", lambda: TransformedLoadSharer(make_grr([1, 1])), True),
        ("SeededRandomFQ",
         lambda: TransformedLoadSharer(SeededRandomFQ(2, seed=5)), True),
        ("ShortestQueueFirst", lambda: ShortestQueueFirst(2), False),
        ("RandomSelection",
         lambda: RandomSelection(2, rng=random.Random(6)), False),
        ("AddressHashing", lambda: AddressHashing(4).__class__(2), False),
    ]


def shootout():
    rows = []
    for name, factory, simulatable in build_schemes():
        # fairness on the adversary and on a random mix
        adversary = flows(alternating_packets(600))
        channels = stripe_sequence(factory(), adversary)
        jain_adversary = jain_fairness_index(bytes_per_channel(channels))

        mix = flows(random_mix_packets(600, seed=9))
        channels_mix = stripe_sequence(factory(), mix)
        jain_mix = jain_fairness_index(bytes_per_channel(channels_mix))

        # ordering under maximal skew with the scheme's natural receiver
        packets = flows(random_mix_packets(400, seed=11))
        sharer = factory()
        striped = stripe_sequence(sharer, packets)
        if simulatable:
            algo = sharer.algorithm  # type: ignore[union-attr]
            receiver = Resequencer(type(algo)(
                algo.quanta, algo.count_packets
            ) if isinstance(algo, SRR) else SeededRandomFQ(2, seed=5))
            delivered = []
            receiver.on_deliver = lambda p: delivered.append(p.seq)
            for channel in (1, 0):
                for packet in striped[channel]:
                    receiver.push(channel, packet)
        else:
            delivered = [
                p.seq for channel in (1, 0) for p in striped[channel]
            ]
        ooo = analyze_order(delivered).out_of_order
        rows.append((name, jain_adversary, jain_mix, ooo, simulatable))
    return rows


def test_bench_scheme_shootout(benchmark):
    rows = benchmark.pedantic(shootout, rounds=1, iterations=1)
    print()
    header = (f"{'scheme':>20} {'Jain(advers.)':>13} {'Jain(mix)':>10} "
              f"{'OOO(skew)':>10} {'simulatable':>11}")
    print(header)
    print("-" * len(header))
    for name, ja, jm, ooo, simulatable in rows:
        print(f"{name:>20} {ja:>13.4f} {jm:>10.4f} {ooo:>10} "
              f"{'yes' if simulatable else 'no':>11}")

    table = {name: (ja, jm, ooo, simulatable)
             for name, ja, jm, ooo, simulatable in rows}
    # SRR: fair on both workloads AND perfectly ordered.
    assert table["SRR"][0] > 0.999
    assert table["SRR"][2] == 0
    # RR/GRR[1,1]: unfair on the adversary, fair-ish on the mix.
    assert table["RR"][0] < 0.95
    assert table["RR"][1] > 0.99
    # SQF / random: fair but (being non-causal) reorder under skew.
    assert table["ShortestQueueFirst"][1] > 0.99
    assert table["ShortestQueueFirst"][2] > 0
    assert table["RandomSelection"][2] > 0
    # Hashing: per-flow pinning is unfair byte-wise with few flows.
    assert table["AddressHashing"][2] >= 0
    # the seeded randomized CFQ is the oddity: random AND simulatable.
    assert table["SeededRandomFQ"][2] == 0
    assert table["SeededRandomFQ"][3] is True
