"""The FEC recovery chaos-sweep benchmark (ISSUE 9 acceptance run).

Runs the full ``fec_recovery`` sweep — loss rate x loss shape (random /
Gilbert-Elliott bursts) x recovery mode ({reliable, fec, hybrid}) — over
the striped endpoint pipelines.  Acceptance bars asserted here:

* reliable and hybrid deliver every message exactly once, in order, at
  every sweep point;
* hybrid goodput >= pure-ARQ goodput at every matched sweep point;
* hybrid never retransmits more than pure ARQ in any matched cell, and
  saves retransmissions in aggregate (parity repairs land first);
* pure fec is structurally retransmission-free and stays within its
  parity budget at light loss (>= 98% completeness at <= 5% random
  loss).

Results are written to ``BENCH_fec.json`` at the repo root so the
numbers are tracked across PRs.

Environment knobs (for the CI smoke job and local quick runs):

* ``FEC_BENCH_TOTAL_S`` — seconds of traffic per cell (default 0.8).
* ``FEC_BENCH_RATES`` — comma-separated loss rates
  (default ``0.01,0.03,0.05,0.10``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.fec_recovery import run_fec_recovery

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fec.json"

TOTAL_S = float(os.environ.get("FEC_BENCH_TOTAL_S", "0.8"))
RATES = tuple(
    float(token)
    for token in os.environ.get(
        "FEC_BENCH_RATES", "0.01,0.03,0.05,0.10"
    ).split(",")
)


def test_bench_fec_recovery_sweep():
    """Loss x shape x mode sweep: recovery bars + JSON artifact."""
    started = time.perf_counter()
    result = run_fec_recovery(loss_rates=RATES, total_s=TOTAL_S)
    wall_s = time.perf_counter() - started

    by_cell = {(r.mode, r.loss_kind, r.loss_rate): r for r in result.rows}
    for row in result.rows:
        if row.mode in ("reliable", "hybrid"):
            assert row.completeness == 1.0 and row.in_order, (
                f"{row.mode} broke its contract:\n" + row.render_row()
            )
        if row.mode == "fec":
            assert row.retransmissions == 0
            if row.loss_kind == "random" and row.loss_rate <= 0.05:
                assert row.completeness >= 0.98, (
                    "pure fec below its parity budget:\n" + row.render_row()
                )

    saved_total = 0
    for kind in ("random", "burst"):
        for rate in RATES:
            arq = by_cell[("reliable", kind, rate)]
            hybrid = by_cell[("hybrid", kind, rate)]
            assert hybrid.goodput_mbps >= arq.goodput_mbps, (
                f"hybrid goodput below pure ARQ at {kind} p={rate}:\n"
                + hybrid.render_row() + "\n" + arq.render_row()
            )
            assert hybrid.retransmissions <= arq.retransmissions, (
                f"hybrid retransmitted more than pure ARQ at "
                f"{kind} p={rate}"
            )
            saved_total += arq.retransmissions - hybrid.retransmissions
    assert saved_total > 0, "parity never displaced a retransmission"

    report = {
        "workload": {
            "loss_rates": list(RATES),
            "loss_kinds": ["random", "burst"],
            "modes": ["reliable", "fec", "hybrid"],
            "sim_duration_s": TOTAL_S,
            "code": "systematic Cauchy GF(256), k=6 m=2",
        },
        "results": {
            "cells": [
                {
                    "mode": r.mode,
                    "loss_kind": r.loss_kind,
                    "loss_rate": r.loss_rate,
                    "submitted": r.submitted,
                    "delivered": r.delivered,
                    "completeness": r.completeness,
                    "goodput_mbps": r.goodput_mbps,
                    "mean_latency_ms": r.mean_latency_ms,
                    "retransmissions": r.retransmissions,
                    "reconstructed": r.reconstructed,
                    "skipped": r.skipped,
                    "redundancy_overhead": r.redundancy_overhead,
                }
                for r in result.rows
            ],
            "retransmissions_saved_by_hybrid": saved_total,
            "wall_clock_s": wall_s,
        },
        "acceptance": {
            "guaranteed_modes_exactly_once": True,
            "hybrid_goodput_ge_arq_everywhere": True,
            "pure_fec_min_completeness_at_5pct": 0.98,
        },
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(result.render())
