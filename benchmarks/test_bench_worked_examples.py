"""Benches: Figures 2-3, 5-6, and 8-13 — the paper's worked examples."""

from repro.experiments.worked_examples import (
    PAPER_FIG8_13_DELIVERY,
    run_fig2_3,
    run_fig5_6,
    run_fig8_13,
)


def test_bench_fig2_3(benchmark):
    """Figures 2 & 3: the fair queuing / load sharing duality."""
    result = benchmark.pedantic(run_fig2_3, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.duality_holds
    assert result.fq_order == ["a", "d", "e", "b", "c", "f"]


def test_bench_fig5_6(benchmark):
    """Figures 5 & 6: the SRR deficit-counter trace, quantum 500."""
    result = benchmark.pedantic(run_fig5_6, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.matches_paper


def test_bench_fig8_13(benchmark):
    """Figures 8-13: marker recovery after losing packet 7."""
    result = benchmark.pedantic(run_fig8_13, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.matches_paper
    assert result.delivered == PAPER_FIG8_13_DELIVERY
