"""The 10k-flow fabric scalability benchmark (ISSUE 6 acceptance run).

One striped bundle carries ``FABRIC_BENCH_FLOWS`` concurrent flows across
three tenants with 4:2:1 weights, scheduled by the weighted-DRR
:class:`~repro.transport.fabric.FabricScheduler` above the unchanged SRR
striper.  Acceptance bars asserted here:

* >= 10,000 concurrent flows sustained in one run;
* Jain's fairness >= 0.95 across the equal-weight flows of every tenant
  (sampled mid-run while all flows are backlogged);
* per-unit-weight tenant shares within 10% of the configured weights;
* every submitted packet delivered (the flow layer loses nothing).

p99 delivery latency and aggregate goodput are reported alongside.
Results are written to ``BENCH_fabric.json`` at the repo root so the
numbers are tracked across PRs.

Environment knobs (for the CI smoke job and local quick runs):

* ``FABRIC_BENCH_FLOWS`` — concurrent flows (default 10000).
* ``FABRIC_BENCH_MIN_JAIN`` — required per-tenant Jain (default 0.95).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.fabric import TENANT_WEIGHTS, run_fabric

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fabric.json"

N_FLOWS = int(os.environ.get("FABRIC_BENCH_FLOWS", "10000"))
MIN_JAIN = float(os.environ.get("FABRIC_BENCH_MIN_JAIN", "0.95"))
MAX_SHARE_ERROR = 0.10


def test_bench_fabric_10k_flows():
    """10k weighted flows through one bundle: fairness bars + JSON."""
    started = time.perf_counter()
    result = run_fabric(n_flows=N_FLOWS)
    wall_s = time.perf_counter() - started

    assert result.n_flows >= N_FLOWS
    assert result.delivered_packets == result.total_packets, (
        f"flow layer lost packets: {result.delivered_packets}"
        f"/{result.total_packets}"
    )
    assert result.jain_min >= MIN_JAIN, (
        f"per-tenant Jain {result.jain_per_tenant} below {MIN_JAIN}:\n"
        + result.render()
    )
    assert result.max_share_error <= MAX_SHARE_ERROR, (
        f"tenant shares {result.tenant_shares} deviate more than "
        f"{MAX_SHARE_ERROR:.0%} from weights:\n" + result.render()
    )

    report = {
        "workload": {
            "n_flows": result.n_flows,
            "n_channels": result.n_channels,
            "tenant_weights": dict(TENANT_WEIGHTS),
            "total_packets": result.total_packets,
            "scheduler": "FabricScheduler weighted DRR x SRR striper",
        },
        "results": {
            "aggregate_goodput_mbps": result.aggregate_goodput_mbps,
            "jain_per_tenant": result.jain_per_tenant,
            "jain_min": result.jain_min,
            "tenant_shares": result.tenant_shares,
            "max_share_error": result.max_share_error,
            "p50_latency_s": result.p50_latency_s,
            "p99_latency_s": result.p99_latency_s,
            "sim_duration_s": result.duration_s,
            "wall_clock_s": wall_s,
        },
        "acceptance": {
            "min_flows": N_FLOWS,
            "min_jain": MIN_JAIN,
            "max_share_error": MAX_SHARE_ERROR,
        },
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(result.render())
