"""Benches: weighted quanta (WFQ correspondence) and resequencing latency.

* §3.5: "It is also possible to generalize SRR to handle channels with
  different rated bandwidths by assigning larger quantum values to the
  higher bandwidth lines — this corresponds to weighted fair queuing."
  Measured: byte shares track configured weights across heterogeneous
  bundles.

* §4: "Buffering of packets often does not introduce any extra overhead"
  — that's the *CPU* claim; the latency cost of waiting out channel skew
  is real and quantified here: per-message delivery latency with logical
  reception vs none, as a function of skew.
"""

import pytest

from repro.core.fairness import normalized_shares
from repro.core.srr import SRR
from repro.core.transform import (
    TransformedLoadSharer,
    bytes_per_channel,
    stripe_sequence,
)
from repro.workloads.generators import random_mix_packets


def weighted_shares():
    rows = []
    for weights in ((1, 1), (2, 1), (4, 2, 1), (10, 3, 2, 1)):
        quanta = [1500.0 * w for w in weights]
        packets = random_mix_packets(4000, seed=13)
        channels = stripe_sequence(
            TransformedLoadSharer(SRR(quanta)), packets
        )
        shares = normalized_shares(bytes_per_channel(channels), weights)
        rows.append((weights, shares))
    return rows


def test_bench_weighted_quanta(benchmark):
    rows = benchmark.pedantic(weighted_shares, rounds=1, iterations=1)
    print()
    print("§3.5: weighted quanta ⇒ weighted fair shares "
          "(1.0 = exactly proportional)")
    for weights, shares in rows:
        rendered = " ".join(f"{s:.3f}" for s in shares)
        print(f"  weights {str(weights):>14}: shares {rendered}")
    for weights, shares in rows:
        for share in shares:
            assert share == pytest.approx(1.0, abs=0.05)


def resequencing_latency():
    """CBR stream over two channels with growing static skew; per-message
    latency with logical reception vs physical-order delivery."""
    from repro.analysis.metrics import LatencyStats
    from repro.experiments.socket_harness import (
        SocketTestbedConfig,
        build_socket_testbed,
    )
    from repro.sim.engine import Simulator
    from repro.workloads.generators import ConstantSizes, PacedSource, cbr_intervals

    rows = []
    for skew_ms in (0.0, 2.0, 10.0):
        per_mode = {}
        for mode in ("plain", "none"):
            sim = Simulator()
            config = SocketTestbedConfig(
                prop_delay_s=(0.5e-3, 0.5e-3 + skew_ms * 1e-3),
                mode=mode,
                marker_interval_rounds=0,
                closed_loop=False,
            )
            testbed = build_socket_testbed(sim, config)
            send_times = {}

            def submit(packet, tb=testbed, st=send_times, s=sim):
                st[packet.seq] = s.now
                tb.sender.submit_packet(packet)

            source = PacedSource(
                sim, submit, ConstantSizes(1000), cbr_intervals(1000.0),
                count=1500,
            )
            source.start()
            sim.run(until=3.0)
            stats = LatencyStats()
            for delivery in testbed.deliveries:
                stats.add(delivery.time - send_times[delivery.seq])
            per_mode[mode] = stats
        rows.append((skew_ms, per_mode["plain"], per_mode["none"]))
    return rows


def test_bench_resequencing_latency(benchmark):
    rows = benchmark.pedantic(resequencing_latency, rounds=1, iterations=1)
    print()
    print("§4 cost model: logical reception's latency vs channel skew")
    print(f"{'skew':>8} {'reseq mean':>11} {'reseq max':>10} "
          f"{'no-reseq mean':>14} {'no-reseq max':>13}")
    for skew_ms, reseq, raw in rows:
        print(f"{skew_ms:>6.1f}ms {reseq.mean * 1e3:>9.2f}ms "
              f"{reseq.maximum * 1e3:>8.2f}ms {raw.mean * 1e3:>12.2f}ms "
              f"{raw.maximum * 1e3:>11.2f}ms")

    # With no skew the resequencer adds (essentially) nothing.
    no_skew = rows[0]
    assert no_skew[1].mean == pytest.approx(no_skew[2].mean, rel=0.05)
    # With skew, the fast channel's packets wait out ~the skew: mean
    # resequencing latency exceeds raw arrival latency and grows with skew.
    big_skew = rows[-1]
    assert big_skew[1].mean > big_skew[2].mean
    assert big_skew[1].mean > rows[1][1].mean
