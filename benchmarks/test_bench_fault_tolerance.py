"""Bench: the section 5 extensions — reset, reconfiguration, stabilization.

Not a paper table; these quantify the fault-tolerance machinery the paper
sketches ("we deal with sender or receiver node crashes by doing a reset";
self-stabilization via snapshot + reset) and the reconfiguration built on
it (dead-link removal, capacity adaptation).
"""

from repro.experiments.fault_tolerance import run_fault_tolerance


def test_bench_fault_tolerance(benchmark):
    report = benchmark.pedantic(run_fault_tolerance, rounds=1, iterations=1)
    print()
    print(report.render())

    # Link failure: without handling the stream stalls; with the detector
    # it keeps ~2/3 of the pre-failure rate on the two survivors.
    no_handling, with_detector = report.link_failure.rows
    assert no_handling.goodput_after < 0.5
    assert with_detector.goodput_after > 0.55 * with_detector.goodput_before
    assert with_detector.surviving_channels == 2

    # Corruption: markers alone leave persistent reordering; local checking
    # brings it back to the quasi-FIFO background level.
    unchecked, checked = report.corruption.rows
    assert unchecked.ooo_after_window > 10 * max(1, checked.ooo_after_window)
    assert checked.resets >= 1

    # Adaptation: reconfigured quanta recover most of the available rate.
    static, adaptive = report.adaptation.rows
    assert adaptive.goodput_after > 1.8 * static.goodput_after
    assert adaptive.adaptations >= 1
