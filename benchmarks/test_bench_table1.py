"""Bench: regenerate Table 1 and verify each claim by micro-simulation.

The paper's Table 1 is qualitative; this bench backs every cell with a
measurement: load-sharing quality is measured as byte imbalance on the
adversarial alternating workload, and FIFO behaviour is measured by
delivering a skewed striped stream.
"""

from repro.analysis.reorder import analyze_order
from repro.analysis.tables import extended_rows, paper_table1_rows, render_table
from repro.core.resequencer import Resequencer
from repro.core.srr import SRR, make_rr
from repro.core.transform import (
    TransformedLoadSharer,
    bytes_per_channel,
    stripe_sequence,
)
from repro.workloads.generators import alternating_packets


def verify_table1_claims():
    """Measure the Table 1 claims; returns a dict of evidence."""
    evidence = {}

    # --- Round-Robin, no header: poor sharing, may reorder ---------------
    packets = alternating_packets(400)
    rr_channels = stripe_sequence(TransformedLoadSharer(make_rr(2)), packets)
    rr_bytes = bytes_per_channel(rr_channels)
    evidence["rr_imbalance"] = abs(rr_bytes[0] - rr_bytes[1]) / sum(rr_bytes)

    # skewed physical arrival without resequencing reorders:
    arrival = rr_channels[0] + rr_channels[1]  # channel 0 wholly first
    evidence["rr_no_reseq_ooo"] = analyze_order(
        [p.seq for p in arrival]
    ).out_of_order

    # --- Fair Queuing algorithm, no header: good sharing, quasi-FIFO -----
    packets = alternating_packets(400)
    srr = SRR([1500, 1500])
    srr_channels = stripe_sequence(TransformedLoadSharer(srr), packets)
    srr_bytes = bytes_per_channel(srr_channels)
    evidence["srr_imbalance"] = abs(srr_bytes[0] - srr_bytes[1]) / sum(srr_bytes)

    receiver = Resequencer(SRR([1500, 1500]))
    delivered = []
    receiver.on_deliver = lambda p: delivered.append(p.seq)
    for p in srr_channels[1]:
        receiver.push(1, p)
    for p in srr_channels[0]:
        receiver.push(0, p)
    evidence["srr_lr_ooo"] = analyze_order(delivered).out_of_order

    # --- BONDING: good sharing via fixed frames --------------------------
    from repro.baselines.bonding import BondingMux

    mux = BondingMux(2, frame_bytes=128)
    per_channel = [0, 0]
    for packet in alternating_packets(200):
        for frame in mux.submit(packet):
            per_channel[frame.channel] += frame.payload_bytes
    evidence["bonding_imbalance"] = abs(
        per_channel[0] - per_channel[1]
    ) / sum(per_channel)
    return evidence


def test_bench_table1(benchmark):
    evidence = benchmark.pedantic(
        verify_table1_claims, rounds=1, iterations=1
    )
    print()
    print(render_table(extended_rows()))
    print()
    print("measured evidence for the qualitative cells:")
    for key, value in evidence.items():
        print(f"  {key}: {value:.4f}" if isinstance(value, float)
              else f"  {key}: {value}")

    # Poor vs good load sharing with variable-length packets:
    assert evidence["rr_imbalance"] > 0.3          # RR: poor
    assert evidence["srr_imbalance"] < 0.02        # SRR: good
    assert evidence["bonding_imbalance"] < 0.02    # BONDING: good
    # FIFO columns:
    assert evidence["rr_no_reseq_ooo"] > 0         # RR w/o header reorders
    assert evidence["srr_lr_ooo"] == 0             # logical reception: FIFO


def test_bench_table1_rows_complete(benchmark):
    rows = benchmark.pedantic(paper_table1_rows, rounds=1, iterations=1)
    assert len(rows) == 5  # exactly the paper's five rows
