"""Bench: §6.3 finding 5 — video playback under quasi-FIFO vs pure loss.

Paper: "Only at packet loss levels of 40% and above were any perceptible
differences found in the NV playback...  pure packet loss of 40% produced
the same qualitative difference" — i.e., reordering from quasi-FIFO
delivery is insignificant compared to the loss itself.
"""

from repro.experiments.video_quality import run_video_quality


def test_bench_video(benchmark):
    result = benchmark.pedantic(
        run_video_quality,
        kwargs=dict(
            loss_rates=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
            duration_s=8.0,
        ),
        rounds=1, iterations=1,
    )
    print()
    print("§6.3 finding 5: video quality, striped quasi-FIFO vs pure loss")
    print(result.render())

    # Reordering adds (nearly) nothing on top of the loss itself.
    assert result.reordering_insignificant()
    # Both conditions cross the perceptibility threshold at the same
    # swept loss rate, in the paper's regime.
    striped = result.first_perceptible_loss("striped")
    pure = result.first_perceptible_loss("pure_loss")
    assert striped == pure
    assert 0.3 <= striped <= 0.5  # paper: 40%
    # Quality degrades monotonically-ish with loss.
    qualities = [row.striped_quality for row in result.rows]
    assert qualities[0] == max(qualities)
    assert qualities[-1] == min(qualities)
