"""Benches for the extension experiments (beyond the paper's tables).

* ``mtu`` — the §6.2 min-MTU restriction, quantified, plus the internal-
  fragmentation alternative the paper declined.
* duplex credits — §6.3's "credits could be piggybacked on the periodic
  marker packets", demonstrated with zero standalone credit packets.
"""

from repro.experiments.mtu_fragmentation import run_mtu_fragmentation


def test_bench_mtu_fragmentation(benchmark):
    result = benchmark.pedantic(
        run_mtu_fragmentation,
        kwargs=dict(duration_s=2.0, warmup_s=0.5),
        rounds=1, iterations=1,
    )
    print()
    print("§6.2 extension: MTU clamping vs internal fragmentation "
          "(Ethernet 1500 + ATM 9180, CPU-bound receiver)")
    print(result.render())

    plain = result.row("plain strIPe (min MTU)")
    frag = result.row("fragmenting strIPe (max MTU)")
    atm = result.row("ATM alone, 9180 MTU")

    # The paper's point: clamped to the small MTU, the whole bundle can be
    # worth less than the big-MTU link alone -> "stripe similar MTUs".
    assert atm.goodput_mbps > plain.goodput_mbps
    # The alternative the paper declined: fragmentation recovers both the
    # big-MTU efficiency and the extra link.
    assert frag.goodput_mbps > atm.goodput_mbps
    assert frag.goodput_mbps > 1.3 * plain.goodput_mbps
    # Mechanism check: the min-MTU run is CPU-saturated, the others not.
    assert plain.cpu_utilization > 0.95
    assert atm.cpu_utilization < 0.6


def test_bench_duplex_piggybacked_credits(benchmark):
    from repro.sim.engine import Simulator
    from tests.transport.test_duplex import build_duplex

    def run():
        sim = Simulator()
        end_a, end_b, _ = build_duplex(
            sim, link_mbps=(10.0, 2.0), buffer_packets=12
        )
        sim.run(until=1.5)
        return sim, end_a, end_b

    sim, end_a, end_b = benchmark.pedantic(run, rounds=1, iterations=1)
    a_count = len(end_a.delivered)
    b_count = len(end_b.delivered)
    print()
    print("§6.3 extension: duplex striping, credits riding markers only")
    print(f"  A<-B delivered: {a_count}, B<-A delivered: {b_count}")
    print(f"  buffer drops: A={end_a.receiver.buffer_drops} "
          f"B={end_b.receiver.buffer_drops}")
    print(f"  credit stalls: A={end_a.sender.credit.stalls} "
          f"B={end_b.sender.credit.stalls}")
    assert a_count > 100 and b_count > 100
    assert end_a.receiver.buffer_drops == 0
    assert end_b.receiver.buffer_drops == 0
    for endpoint in (end_a, end_b):
        seqs = [p.seq for p in endpoint.delivered]
        assert seqs == sorted(seqs)


def test_bench_scalability(benchmark):
    from repro.experiments.scalability import run_scalability

    result = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    print()
    print("title claim: scalability in the channel count (10 Mbps links)")
    print(result.render())
    print(f"  scaling efficiency (per-channel, 16 vs 2): "
          f"{result.scaling_efficiency():.2f}")

    assert result.scaling_efficiency() > 0.95      # ~linear aggregate
    assert all(r.out_of_order == 0 for r in result.rows)  # FIFO at all N
    overheads = [r.marker_overhead_fraction for r in result.rows]
    assert max(overheads) < 0.05                   # small, ~constant
    assert max(overheads) - min(overheads) < 0.01
    recoveries = [r.recovery_time_s for r in result.rows]
    assert all(t is not None and t < 0.05 for t in recoveries)  # ms-scale


def test_bench_tcp_channels(benchmark):
    from repro.experiments.tcp_channels import run_tcp_channels

    result = benchmark.pedantic(run_tcp_channels, rounds=1, iterations=1)
    print()
    print("§2 extension: striping over TCP connections (message mode)")
    print(result.render())

    rows = {(r.n_channels, r.loss_rate): r for r in result.rows}
    # Guaranteed FIFO everywhere — no markers, no quasi-FIFO caveat.
    assert all(r.fifo for r in result.rows)
    # Clean links: aggregate scales with the channel count.
    assert rows[(2, 0.0)].goodput_mbps > 1.8 * rows[(1, 0.0)].goodput_mbps
    assert rows[(4, 0.0)].goodput_mbps > 3.3 * rows[(1, 0.0)].goodput_mbps
    # Lossy links: channel-internal retransmissions happened, stream intact.
    assert rows[(2, 0.03)].channel_retransmits > 0


def test_bench_cell_striping(benchmark):
    from repro.experiments.cell_striping import run_cell_striping

    result = benchmark.pedantic(run_cell_striping, rounds=1, iterations=1)
    print()
    print("conclusion extension: cell vs packet striping over congested "
          "ATM VCs (the early-discard argument)")
    print(result.render())
    epd = result.row("packet striping + EPD")
    cells = result.row("cell striping")
    assert epd.goodput_mbps > 10.0
    assert cells.goodput_mbps < 2.0
    assert cells.damaged_fraction > 0.9
