"""Shared test fixtures and helpers."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import pytest

from repro.core.packet import Packet
from repro.sim.engine import Simulator


@pytest.fixture()
def sim() -> Simulator:
    return Simulator()


def make_packets(sizes: Sequence[int], labels: Optional[str] = None) -> List[Packet]:
    """Packets with given sizes; optional one-char labels."""
    out = []
    for i, size in enumerate(sizes):
        label = labels[i] if labels is not None else None
        out.append(Packet(size=size, seq=i, label=label))
    return out


def random_sizes(n: int, seed: int, lo: int = 40, hi: int = 1500) -> List[int]:
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(n)]


def assert_fifo(seqs: Sequence[int]) -> None:
    assert list(seqs) == sorted(seqs), f"sequence not FIFO: {list(seqs)[:50]}"
