"""Unit tests for internal fragmentation/reassembly."""

import pytest

from repro.core.packet import Packet, is_marker
from repro.core.resequencer import Resequencer
from repro.core.srr import SRR
from repro.core.striper import ListPort, MarkerPolicy
from repro.core.transform import TransformedLoadSharer
from repro.net.fragmentation import (
    FRAGMENT_HEADER_BYTES,
    Fragment,
    FragmentingStriper,
    Reassembler,
)
from tests.conftest import make_packets, random_sizes


def frag_setup(mtus=(1500, 1500), quanta=(1500.0, 1500.0), policy=None):
    ports = [ListPort() for _ in mtus]
    striper = FragmentingStriper(
        TransformedLoadSharer(SRR(list(quanta))), ports, mtus=list(mtus),
        marker_policy=policy,
    )
    return striper, ports


class TestFragmentingStriper:
    def test_small_packet_single_fragment(self):
        striper, ports = frag_setup()
        striper.submit(Packet(1000, seq=0))
        fragments = ports[0].sent
        assert len(fragments) == 1
        assert fragments[0].count == 1
        assert fragments[0].size == 1000 + FRAGMENT_HEADER_BYTES

    def test_big_packet_cut_to_channel_mtu(self):
        striper, ports = frag_setup(mtus=(1500, 1500), quanta=(3000.0, 3000.0))
        striper.submit(Packet(4000, seq=0))
        fragments = [f for port in ports for f in port.sent]
        assert sum(f.payload_bytes for f in fragments) == 4000
        assert all(f.size <= 1500 for f in fragments)
        counts = {f.count for f in fragments}
        assert counts == {len(fragments)}

    def test_fragment_sized_to_selected_channel(self):
        """Heterogeneous MTUs: each fragment fits the channel the causal
        algorithm picked for it."""
        striper, ports = frag_setup(
            mtus=(1500, 9180), quanta=(1500.0, 9180.0)
        )
        striper.submit(Packet(9000, seq=0))
        for index, port in enumerate(ports):
            for fragment in port.sent:
                if isinstance(fragment, Fragment):
                    assert fragment.size <= (1500, 9180)[index]

    def test_overhead_accounting(self):
        striper, ports = frag_setup()
        striper.submit(Packet(4000, seq=0))
        assert striper.fragments_sent >= 3
        assert (
            striper.fragment_overhead_bytes
            == striper.fragments_sent * FRAGMENT_HEADER_BYTES
        )

    def test_blocking_mid_packet(self):
        """Backpressure can strike between fragments; the striper resumes
        the same packet on pump."""
        ports = [ListPort(limit=1), ListPort(limit=1)]
        striper = FragmentingStriper(
            TransformedLoadSharer(SRR([1500.0, 1500.0])), ports,
            mtus=[1500, 1500],
        )
        striper.submit(Packet(6000, seq=0))
        total = sum(len(p.sent) for p in ports)
        assert total == 2  # one fragment per port, then blocked
        ports[0].limit = ports[1].limit = 10
        striper.pump()
        fragments = [f for port in ports for f in port.sent]
        assert sum(f.payload_bytes for f in fragments) == 6000

    def test_validation(self):
        with pytest.raises(ValueError):
            FragmentingStriper(
                TransformedLoadSharer(SRR([100.0, 100.0])),
                [ListPort(), ListPort()], mtus=[1500],
            )
        with pytest.raises(ValueError):
            FragmentingStriper(
                TransformedLoadSharer(SRR([100.0])), [ListPort()], mtus=[4],
            )


class TestReassembler:
    def test_roundtrip_with_logical_reception(self):
        """Fragment, stripe, resequence, reassemble: original packets."""
        striper, ports = frag_setup(
            mtus=(1500, 9180), quanta=(1500.0, 9180.0)
        )
        packets = make_packets([s * 7 for s in random_sizes(40, seed=41, lo=50, hi=1300)])
        for packet in packets:
            striper.submit(packet)
        rebuilt = []
        reassembler = Reassembler(on_packet=rebuilt.append)
        receiver = Resequencer(
            SRR([1500.0, 9180.0]), on_deliver=reassembler.push
        )
        # maximal skew feed
        for fragment in ports[1].sent:
            receiver.push(1, fragment)
        for fragment in ports[0].sent:
            receiver.push(0, fragment)
        assert [p.uid for p in rebuilt] == [p.uid for p in packets]
        assert reassembler.packets_aborted == 0

    def test_mid_packet_loss_aborts_only_that_packet(self):
        striper, ports = frag_setup(quanta=(3000.0, 3000.0))
        packets = make_packets([4000, 4000, 4000])
        for packet in packets:
            striper.submit(packet)
        # logical order reconstruction via a resequencer:
        rebuilt = []
        reassembler = Reassembler(on_packet=rebuilt.append)
        receiver = Resequencer(SRR([3000.0, 3000.0]),
                               on_deliver=reassembler.push)
        victim = ports[0].sent[-1]  # a late fragment (earlier packets done)
        for fragment in ports[0].sent:
            if fragment is victim:
                continue
            receiver.push(0, fragment)
        for fragment in ports[1].sent:
            receiver.push(1, fragment)
        # Packets completed before the loss are delivered intact; the
        # packet whose fragment was lost never completes.
        assert [p.seq for p in rebuilt] == [0, 1]
        assert reassembler.packets_completed == 2

    def test_non_fragment_input_ignored(self):
        reassembler = Reassembler()
        assert reassembler.push(Packet(100)) is None
        assert reassembler.fragments_seen == 0

    def test_markers_flow_through_striper(self):
        striper, ports = frag_setup(
            policy=MarkerPolicy(interval_rounds=1, initial_markers=False),
        )
        for packet in make_packets([2000] * 10):
            striper.submit(packet)
        assert any(is_marker(p) for p in ports[0].sent)
