"""Tests for the host-CPU receive path and remaining stack/interface edges."""

import pytest

from repro.net.ethernet import EthernetInterface
from repro.net.interface import Frame, FrameType
from repro.net.ip import IPPacket
from repro.net.stack import Link, Stack
from repro.sim.host import HostCPU


def cpu_pair(sim, per_packet=1e-4, per_interrupt=1e-4, ring=None):
    cpu = HostCPU(sim, per_packet, per_interrupt)
    s = Stack(sim, "S")
    r = Stack(sim, "R", cpu=cpu)
    a = EthernetInterface(sim, "eth0", "10.0.1.1")
    b = EthernetInterface(sim, "eth0", "10.0.1.2")
    s.add_interface(a)
    r.add_interface(b)
    if ring is not None and b.nic_queue is not None:
        b.nic_queue.queue_limit = ring
    Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.0005)
    s.routing.add("10.0.1.0", 24, a)
    r.routing.add("10.0.1.0", 24, b)
    a.arp_cache.install(b.ip_address, b.mac)
    b.arp_cache.install(a.ip_address, a.mac)
    return s, r, a, b, cpu


class TestCpuReceivePath:
    def test_frames_flow_through_cpu(self, sim):
        s, r, a, b, cpu = cpu_pair(sim)
        got = []
        r.register_protocol(200, lambda p, i: got.append(p.ident))
        for _ in range(10):
            s.ip_output(IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                                 payload_size=100))
        sim.run(until=0.5)
        assert len(got) == 10
        assert cpu.total_packets >= 10
        assert cpu.total_interrupts >= 1

    def test_cpu_delay_observable(self, sim):
        """With a slow CPU, delivery completes later than the wire time."""
        s, r, a, b, cpu = cpu_pair(sim, per_packet=0.05)
        times = []
        r.register_protocol(200, lambda p, i: times.append(sim.now))
        s.ip_output(IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                             payload_size=100))
        sim.run(until=1.0)
        assert times and times[0] > 0.05

    def test_ring_overflow_drops_frames(self, sim):
        s, r, a, b, cpu = cpu_pair(sim, per_packet=0.01, ring=3)
        got = []
        r.register_protocol(200, lambda p, i: got.append(p))
        for _ in range(50):
            s.ip_output(IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                                 payload_size=1400))
        sim.run(until=5.0)
        assert b.nic_queue.drops > 0
        assert len(got) < 50

    def test_interface_without_cpu_bypasses(self, sim):
        cpu = HostCPU(sim, 1.0, 1.0)  # pathologically slow
        s = Stack(sim, "S")
        r = Stack(sim, "R", cpu=cpu)
        a = EthernetInterface(sim, "eth0", "10.0.1.1")
        b = EthernetInterface(sim, "eth0", "10.0.1.2")
        s.add_interface(a)
        r.add_interface(b, use_cpu=False)  # direct path
        Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.0005)
        s.routing.add("10.0.1.0", 24, a)
        r.routing.add("10.0.1.0", 24, b)
        a.arp_cache.install(b.ip_address, b.mac)
        b.arp_cache.install(a.ip_address, a.mac)
        got = []
        r.register_protocol(200, lambda p, i: got.append(sim.now))
        s.ip_output(IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                             payload_size=100))
        sim.run(until=0.1)
        assert got and got[0] < 0.01  # not delayed by the slow CPU


class TestDemuxEdges:
    def test_custom_codepoint_handler(self, sim):
        s, r, a, b, cpu = cpu_pair(sim)
        seen = []
        b.demux["experimental"] = lambda payload, iface: seen.append(payload)
        frame = Frame(codepoint="experimental", payload="hello", size=64,
                      dst_mac=b.mac, src_mac=a.mac)
        a.transmit_frame(frame)
        sim.run(until=0.1)
        assert seen == ["hello"]

    def test_unknown_codepoint_silently_dropped(self, sim):
        s, r, a, b, cpu = cpu_pair(sim)
        frame = Frame(codepoint="martian", payload="x", size=64,
                      dst_mac=b.mac, src_mac=a.mac)
        a.transmit_frame(frame)
        sim.run(until=0.1)  # no exception, no delivery
        assert r.ip_received == 0

    def test_unattached_interface_rejects_send(self, sim):
        iface = EthernetInterface(sim, "ethX", "10.9.9.9")
        frame = Frame(codepoint=FrameType.IPV4, payload=None, size=64)
        with pytest.raises(RuntimeError):
            iface.transmit_frame(frame)

    def test_stats_counters(self, sim):
        s, r, a, b, cpu = cpu_pair(sim)
        r.register_protocol(200, lambda p, i: None)
        for _ in range(5):
            s.ip_output(IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                                 payload_size=100))
        sim.run(until=0.5)
        assert a.tx_frames == 5
        assert b.rx_frames == 5
        assert a.tx_bytes == b.rx_bytes > 0
