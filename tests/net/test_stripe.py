"""Unit tests for the strIPe virtual interface."""

import pytest

from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.net.ethernet import EthernetInterface
from repro.net.ip import IPPacket
from repro.net.stack import Link, Stack
from repro.net.stripe import (
    RESEQ_MARKER,
    RESEQ_NONE,
    RESEQ_PLAIN,
    StripeInterface,
)


def striped_pair(sim, reseq=RESEQ_MARKER, queue_limit=50):
    """Two hosts joined by two Ethernet links with strIPe on both ends."""
    s = Stack(sim, "S")
    r = Stack(sim, "R")
    interfaces = {}
    for index, net in enumerate(("10.0.1", "10.0.2")):
        a = EthernetInterface(sim, f"eth{index}", f"{net}.1")
        b = EthernetInterface(sim, f"eth{index}", f"{net}.2")
        s.add_interface(a)
        r.add_interface(b)
        Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.0005,
             queue_limit=queue_limit)
        interfaces[f"s{index}"] = a
        interfaces[f"r{index}"] = b

    def algo():
        return SRR([1500.0, 1500.0])

    policy = MarkerPolicy(interval_rounds=1)
    stripe_s = StripeInterface(
        sim, "stripe0", "10.0.1.1",
        [(interfaces["s0"], "10.0.1.2"), (interfaces["s1"], "10.0.2.2")],
        algo(), resequencing=reseq,
        marker_policy=policy if reseq == RESEQ_MARKER else None,
    )
    stripe_r = StripeInterface(
        sim, "stripe0", "10.0.1.2",
        [(interfaces["r0"], "10.0.1.1"), (interfaces["r1"], "10.0.2.1")],
        algo(), resequencing=reseq,
        marker_policy=policy if reseq == RESEQ_MARKER else None,
    )
    s.add_interface(stripe_s)
    r.add_interface(stripe_r)
    s.routing.add_host_route("10.0.1.2", stripe_s)
    s.routing.add_host_route("10.0.2.2", stripe_s)
    r.routing.add_host_route("10.0.1.1", stripe_r)
    r.routing.add_host_route("10.0.2.1", stripe_r)
    return s, r, stripe_s, stripe_r


class TestConstruction:
    def test_mtu_is_minimum_of_members(self, sim):
        s = Stack(sim, "S")
        a = EthernetInterface(sim, "eth0", "10.0.1.1", mtu=1500)
        b = EthernetInterface(sim, "eth1", "10.0.2.1", mtu=9000)
        s.add_interface(a)
        s.add_interface(b)
        stripe = StripeInterface(
            sim, "stripe0", "10.0.1.1",
            [(a, "10.0.1.2"), (b, "10.0.2.2")],
            SRR([1500.0, 1500.0]), resequencing=RESEQ_PLAIN,
        )
        assert stripe.mtu == 1500

    def test_channel_count_must_match(self, sim):
        a = EthernetInterface(sim, "eth0", "10.0.1.1")
        with pytest.raises(ValueError):
            StripeInterface(
                sim, "stripe0", "10.0.1.1", [(a, "10.0.1.2")],
                SRR([1500.0, 1500.0]),
            )

    def test_marker_mode_requires_srr(self, sim):
        from repro.core.schemes import SeededRandomFQ

        a = EthernetInterface(sim, "eth0", "10.0.1.1")
        b = EthernetInterface(sim, "eth1", "10.0.2.1")
        with pytest.raises(ValueError):
            StripeInterface(
                sim, "stripe0", "10.0.1.1",
                [(a, "10.0.1.2"), (b, "10.0.2.2")],
                SeededRandomFQ(2), resequencing=RESEQ_MARKER,
            )

    def test_unknown_mode_rejected(self, sim):
        a = EthernetInterface(sim, "eth0", "10.0.1.1")
        b = EthernetInterface(sim, "eth1", "10.0.2.1")
        with pytest.raises(ValueError):
            StripeInterface(
                sim, "stripe0", "10.0.1.1",
                [(a, "10.0.1.2"), (b, "10.0.2.2")],
                SRR([1500.0, 1500.0]), resequencing="bogus",
            )

    def test_oversized_packet_rejected(self, sim):
        _, _, stripe_s, _ = striped_pair(sim)
        with pytest.raises(ValueError):
            stripe_s.send_ip(
                IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                         payload_size=2000),
                None,
            )


class TestDataPath:
    def test_fifo_delivery_over_stripe(self, sim):
        s, r, stripe_s, stripe_r = striped_pair(sim)
        received = []
        r.register_protocol(200, lambda p, i: received.append(p.seq))
        for i in range(100):
            packet = IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                              payload_size=200 + (i * 37) % 1200)
            packet.seq = i
            s.ip_output(packet)
        sim.run(until=2.0)
        assert received == list(range(100))

    def test_both_links_carry_traffic(self, sim):
        s, r, stripe_s, stripe_r = striped_pair(sim)
        r.register_protocol(200, lambda p, i: None)
        for i in range(100):
            packet = IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                              payload_size=1000)
            s.ip_output(packet)
        sim.run(until=2.0)
        assert stripe_s.members[0].tx_frames > 20
        assert stripe_s.members[1].tx_frames > 20

    def test_input_queue_overflow_counts(self, sim):
        s, r, stripe_s, stripe_r = striped_pair(sim)
        stripe_s.input_queue_limit = 5
        accepted = 0
        for i in range(50):
            packet = IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                              payload_size=1400)
            if s.ip_output(packet):
                accepted += 1
        assert stripe_s.input_drops == 50 - accepted
        assert stripe_s.input_drops > 0

    def test_none_mode_can_reorder(self, sim):
        """Without resequencing, different link delays reorder delivery."""
        s, r, stripe_s, stripe_r = striped_pair(sim, reseq=RESEQ_NONE)
        # Make link 1 slower to create skew.
        stripe_s.members[1].channel_out.prop_delay = 0.05
        received = []
        r.register_protocol(200, lambda p, i: received.append(p.seq))
        for i in range(40):
            packet = IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                              payload_size=1000)
            packet.seq = i
            s.ip_output(packet)
        sim.run(until=2.0)
        assert sorted(received) == list(range(40))
        assert received != list(range(40))

    def test_plain_mode_resequences_skew(self, sim):
        s, r, stripe_s, stripe_r = striped_pair(sim, reseq=RESEQ_PLAIN)
        stripe_s.members[1].channel_out.prop_delay = 0.05
        received = []
        r.register_protocol(200, lambda p, i: received.append(p.seq))
        for i in range(40):
            packet = IPPacket(src="10.0.1.1", dst="10.0.1.2", proto=200,
                              payload_size=1000)
            packet.seq = i
            s.ip_output(packet)
        sim.run(until=2.0)
        assert received == list(range(40))
