"""Unit tests for Ethernet and ATM interfaces (framing, ARP, codepoints)."""

import pytest

from repro.net.atm import (
    ATM_CELL_BYTES,
    AtmInterface,
    aal5_cell_count,
    aal5_wire_size,
)
from repro.net.ethernet import (
    ETHERNET_MIN_PAYLOAD,
    ETHERNET_OVERHEAD,
    EthernetInterface,
    ethernet_wire_size,
)
from repro.net.ip import IPPacket
from repro.net.stack import Link, Stack


class TestFramingMath:
    def test_ethernet_overhead(self):
        assert ethernet_wire_size(1500) == 1500 + ETHERNET_OVERHEAD

    def test_ethernet_min_padding(self):
        assert ethernet_wire_size(10) == ETHERNET_MIN_PAYLOAD + ETHERNET_OVERHEAD

    def test_aal5_single_cell(self):
        # 40 bytes payload + 8 trailer = 48 -> exactly one cell
        assert aal5_wire_size(40) == ATM_CELL_BYTES
        assert aal5_cell_count(40) == 1

    def test_aal5_padding_to_cell_boundary(self):
        # 41 bytes + 8 = 49 -> two cells
        assert aal5_cell_count(41) == 2
        assert aal5_wire_size(41) == 2 * ATM_CELL_BYTES

    def test_aal5_1500_byte_packet(self):
        # (1500 + 8) / 48 = 31.4 -> 32 cells = 1696 bytes: ~88% efficiency
        assert aal5_cell_count(1500) == 32
        assert aal5_wire_size(1500) == 32 * 53


def two_hosts(sim):
    s = Stack(sim, "S")
    r = Stack(sim, "R")
    a = EthernetInterface(sim, "eth0", "10.0.1.1")
    b = EthernetInterface(sim, "eth0", "10.0.1.2")
    s.add_interface(a)
    r.add_interface(b)
    link = Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.0005)
    s.routing.add("10.0.1.0", 24, a)
    r.routing.add("10.0.1.0", 24, b)
    return s, r, a, b, link


class TestArp:
    def test_first_packet_triggers_request_then_flows(self, sim):
        s, r, a, b, link = two_hosts(sim)
        received = []
        r.register_protocol(200, lambda p, i: received.append(p))
        packet = IPPacket(
            src=a.ip_address, dst=b.ip_address, proto=200, payload_size=100
        )
        s.ip_output(packet)
        sim.run(until=0.1)
        assert len(received) == 1
        assert a.arp_requests_sent == 1
        assert b.arp_replies_sent == 1

    def test_cache_avoids_second_request(self, sim):
        s, r, a, b, link = two_hosts(sim)
        for _ in range(3):
            s.ip_output(IPPacket(
                src=a.ip_address, dst=b.ip_address, proto=200, payload_size=100
            ))
        sim.run(until=0.1)
        assert a.arp_requests_sent == 1

    def test_reply_resolves_pending_queue_in_order(self, sim):
        s, r, a, b, link = two_hosts(sim)
        received = []
        r.register_protocol(200, lambda p, i: received.append(p.ident))
        idents = []
        for _ in range(5):
            packet = IPPacket(
                src=a.ip_address, dst=b.ip_address, proto=200, payload_size=100
            )
            idents.append(packet.ident)
            s.ip_output(packet)
        sim.run(until=0.1)
        assert received == idents

    def test_pending_limit_drops(self, sim):
        s, r, a, b, link = two_hosts(sim)
        for _ in range(EthernetInterface.ARP_PENDING_LIMIT + 10):
            s.ip_output(IPPacket(
                src=a.ip_address, dst=b.ip_address, proto=200, payload_size=100
            ))
        assert a.arp_pending_drops == 10

    def test_retry_after_lost_request(self, sim):
        from repro.sim.loss import DeterministicLoss

        s, r, a, b, link = two_hosts(sim)
        link.ab.loss_model = DeterministicLoss([0])  # first frame (the ARP) lost
        received = []
        r.register_protocol(200, lambda p, i: received.append(p))
        s.ip_output(IPPacket(
            src=a.ip_address, dst=b.ip_address, proto=200, payload_size=100
        ))
        sim.run(until=2.0)
        assert len(received) == 1
        assert a.arp_requests_sent >= 2

    def test_unicast_filter_rejects_foreign_mac(self, sim):
        """Frames addressed to another MAC are dropped by the filter."""
        s, r, a, b, link = two_hosts(sim)
        received = []
        r.register_protocol(200, lambda p, i: received.append(p))
        # Poison S's ARP cache with a wrong MAC for R.
        from repro.net.addresses import MACAddress

        a.arp_cache.install(b.ip_address, MACAddress.parse("02:00:00:00:ff:ff"))
        s.ip_output(IPPacket(
            src=a.ip_address, dst=b.ip_address, proto=200, payload_size=100
        ))
        sim.run(until=0.1)
        assert received == []


class TestAtmInterface:
    def test_pvc_rate_change(self, sim):
        s = Stack(sim, "S")
        r = Stack(sim, "R")
        a = AtmInterface(sim, "atm0", "10.0.2.1")
        b = AtmInterface(sim, "atm0", "10.0.2.2")
        s.add_interface(a)
        r.add_interface(b)
        link = Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.001)
        s.routing.add("10.0.2.0", 24, a)
        r.routing.add("10.0.2.0", 24, b)
        a.set_rate(155e6)
        assert link.ab.bandwidth_bps == 155e6
        with pytest.raises(ValueError):
            a.set_rate(0)

    def test_cells_accounted(self, sim):
        s = Stack(sim, "S")
        r = Stack(sim, "R")
        a = AtmInterface(sim, "atm0", "10.0.2.1")
        b = AtmInterface(sim, "atm0", "10.0.2.2")
        s.add_interface(a)
        r.add_interface(b)
        Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.001)
        s.routing.add("10.0.2.0", 24, a)
        r.routing.add("10.0.2.0", 24, b)
        packet = IPPacket(
            src=a.ip_address, dst=b.ip_address, proto=200, payload_size=1480
        )
        s.ip_output(packet)  # 1500B IP packet -> 32 cells
        assert a.cells_sent == 32

    def test_no_arp_needed(self, sim):
        s = Stack(sim, "S")
        r = Stack(sim, "R")
        a = AtmInterface(sim, "atm0", "10.0.2.1")
        b = AtmInterface(sim, "atm0", "10.0.2.2")
        s.add_interface(a)
        r.add_interface(b)
        Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.001)
        s.routing.add("10.0.2.0", 24, a)
        r.routing.add("10.0.2.0", 24, b)
        received = []
        r.register_protocol(200, lambda p, i: received.append(p))
        s.ip_output(IPPacket(
            src=a.ip_address, dst=b.ip_address, proto=200, payload_size=100
        ))
        sim.run(until=0.1)
        assert len(received) == 1


class TestStackBehaviour:
    def test_protocol_demux(self, sim):
        s, r, a, b, link = two_hosts(sim)
        tcp_like = []
        udp_like = []
        r.register_protocol(6, lambda p, i: tcp_like.append(p))
        r.register_protocol(17, lambda p, i: udp_like.append(p))
        s.ip_output(IPPacket(src=a.ip_address, dst=b.ip_address, proto=6,
                             payload_size=10))
        s.ip_output(IPPacket(src=a.ip_address, dst=b.ip_address, proto=17,
                             payload_size=10))
        sim.run(until=0.1)
        assert len(tcp_like) == 1 and len(udp_like) == 1

    def test_no_route_drops(self, sim):
        s, r, a, b, link = two_hosts(sim)
        ok = s.ip_output(IPPacket(
            src=a.ip_address, dst="99.0.0.1", proto=6, payload_size=10
        ))
        assert ok is False
        assert s.ip_dropped == 1

    def test_forwarding_decrements_ttl(self, sim):
        """Three hosts in a line: S - M - R; M forwards."""
        s = Stack(sim, "S")
        m = Stack(sim, "M")
        r = Stack(sim, "R")
        s1 = EthernetInterface(sim, "eth0", "10.0.1.1")
        m1 = EthernetInterface(sim, "eth0", "10.0.1.254")
        m2 = EthernetInterface(sim, "eth1", "10.0.2.254")
        r1 = EthernetInterface(sim, "eth0", "10.0.2.2")
        s.add_interface(s1)
        m.add_interface(m1)
        m.add_interface(m2)
        r.add_interface(r1)
        Link(sim, s1, m1, bandwidth_bps=10e6, prop_delay=0.0005)
        Link(sim, m2, r1, bandwidth_bps=10e6, prop_delay=0.0005)
        s.routing.add("10.0.2.0", 24, s1, next_hop="10.0.1.254")
        s.routing.add("10.0.1.0", 24, s1)
        m.routing.add("10.0.1.0", 24, m1)
        m.routing.add("10.0.2.0", 24, m2)
        r.routing.add("10.0.2.0", 24, r1)
        received = []
        r.register_protocol(200, lambda p, i: received.append(p))
        packet = IPPacket(src=s1.ip_address, dst="10.0.2.2", proto=200,
                          payload_size=64, ttl=5)
        s.ip_output(packet)
        sim.run(until=0.5)
        assert len(received) == 1
        assert received[0].ttl == 4
        assert m.ip_forwarded == 1

    def test_expired_ttl_dropped(self, sim):
        s, r, a, b, link = two_hosts(sim)
        # Receiver treats a packet not addressed to it with ttl 1 as
        # unforwardable.
        packet = IPPacket(src=a.ip_address, dst="10.0.1.99", proto=200,
                          payload_size=10, ttl=1)
        r.ip_input(packet, b)
        assert r.ip_dropped == 1
