"""Unit tests for address types and the routing table."""

import pytest

from repro.net.addresses import IPAddress, MACAddress, fresh_mac
from repro.net.routing import RoutingTable


class TestIPAddress:
    def test_parse_and_str_roundtrip(self):
        for text in ("0.0.0.0", "10.1.2.3", "255.255.255.255"):
            assert str(IPAddress.parse(text)) == text

    def test_parse_idempotent_on_instances(self):
        address = IPAddress.parse("10.0.0.1")
        assert IPAddress.parse(address) is address

    def test_invalid_addresses(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                IPAddress.parse(bad)

    def test_network_extraction(self):
        address = IPAddress.parse("10.1.2.3")
        assert str(address.network(24)) == "10.1.2.0"
        assert str(address.network(16)) == "10.1.0.0"
        assert str(address.network(32)) == "10.1.2.3"
        assert str(address.network(0)) == "0.0.0.0"

    def test_in_network(self):
        address = IPAddress.parse("10.1.2.3")
        assert address.in_network(IPAddress.parse("10.1.2.0"), 24)
        assert not address.in_network(IPAddress.parse("10.1.3.0"), 24)

    def test_invalid_prefix(self):
        with pytest.raises(ValueError):
            IPAddress.parse("1.2.3.4").network(33)

    def test_hashable_and_ordered(self):
        a = IPAddress.parse("10.0.0.1")
        b = IPAddress.parse("10.0.0.2")
        assert a < b
        assert len({a, b, IPAddress.parse("10.0.0.1")}) == 2


class TestMACAddress:
    def test_parse_and_str(self):
        text = "02:00:00:00:00:2a"
        assert str(MACAddress.parse(text)) == text

    def test_broadcast(self):
        assert MACAddress.broadcast().is_broadcast
        assert not MACAddress.parse("02:00:00:00:00:01").is_broadcast

    def test_fresh_macs_unique(self):
        assert fresh_mac() != fresh_mac()

    def test_invalid(self):
        with pytest.raises(ValueError):
            MACAddress.parse("02:00:00:00:00")


class TestRoutingTable:
    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.add("10.0.0.0", 8, "iface-wide")
        table.add("10.1.0.0", 16, "iface-narrow")
        route = table.lookup("10.1.2.3")
        assert route.interface == "iface-narrow"
        assert table.lookup("10.9.0.1").interface == "iface-wide"

    def test_host_route_overrides_network_route(self):
        """The strIPe deployment trick from section 6.1."""
        table = RoutingTable()
        table.add("10.1.0.0", 24, "ethernet")
        table.add_host_route("10.1.0.2", "stripe")
        assert table.lookup("10.1.0.2").interface == "stripe"
        assert table.lookup("10.1.0.3").interface == "ethernet"

    def test_metric_breaks_ties(self):
        table = RoutingTable()
        table.add("10.0.0.0", 8, "expensive", metric=10)
        table.add("10.0.0.0", 8, "cheap", metric=1)
        assert table.lookup("10.1.1.1").interface == "cheap"

    def test_no_route(self):
        assert RoutingTable().lookup("1.2.3.4") is None

    def test_default_route(self):
        table = RoutingTable()
        table.add("0.0.0.0", 0, "default", next_hop="10.0.0.254")
        route = table.lookup("99.99.99.99")
        assert route.interface == "default"
        assert str(route.next_hop) == "10.0.0.254"

    def test_remove(self):
        table = RoutingTable()
        route = table.add("10.0.0.0", 8, "x")
        assert len(table) == 1
        table.remove(route)
        assert table.lookup("10.1.1.1") is None

    def test_network_normalized_on_add(self):
        table = RoutingTable()
        route = table.add("10.1.2.3", 24, "x")
        assert str(route.network) == "10.1.2.0"
