"""Unit tests for the scheduler kernel: stepping, snapshot/restore, and
snapshot adoption across marker recovery and session reset."""

import random

import pytest

from repro.core.cfq import fq_service_order_noncausal
from repro.core.kernel import (
    CFQKernelAdapter,
    DRRKernel,
    SRRKernel,
    kernel_for,
    make_grr_kernel,
    make_rr_kernel,
)
from repro.core.markers import SRRReceiver
from repro.core.packet import Packet
from repro.core.schemes import SeededRandomFQ
from repro.core.session import StripeConfig, StripeReceiverSession, StripeSenderSession
from repro.core.srr import DRR, SRR, SRRState
from repro.core.striper import ListPort, MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer, stripe_sequence
from repro.sim.engine import Simulator


def make_packets(n, seed=7, lo=40, hi=1500):
    rng = random.Random(seed)
    return [Packet(rng.randint(lo, hi), seq=i) for i in range(n)]


class TestKernelBasics:
    def test_kernel_for_dispatch(self):
        assert isinstance(kernel_for(SRR([100.0, 200.0])), SRRKernel)
        assert isinstance(kernel_for(SeededRandomFQ(2)), CFQKernelAdapter)

    def test_srr_kernel_rejects_non_srr(self):
        with pytest.raises(TypeError):
            SRRKernel(SeededRandomFQ(2))

    def test_step_returns_peeked_channel(self):
        kernel = SRRKernel(SRR([100.0, 100.0]))
        for size in (60, 60, 60, 60, 60):
            expected = kernel.peek()
            assert kernel.step(size) == expected

    def test_factories(self):
        rr = make_rr_kernel(3)
        assert rr.assign_many([999, 1, 77]) == [0, 1, 2]
        grr = make_grr_kernel([2, 1])
        assert grr.assign_many([10] * 6) == [0, 0, 1, 0, 0, 1]

    def test_reset_returns_to_initial_state(self):
        kernel = SRRKernel(SRR([100.0, 300.0]))
        initial = kernel.snapshot()
        kernel.assign_many([90, 250, 17, 400])
        assert kernel.snapshot() != initial
        kernel.reset()
        assert kernel.snapshot() == initial

    def test_assign_many_empty(self):
        kernel = SRRKernel(SRR([100.0, 100.0]))
        before = kernel.snapshot()
        assert kernel.assign_many([]) == []
        assert kernel.snapshot() == before


class TestSnapshotRestore:
    def test_snapshot_is_srr_state_and_detached(self):
        kernel = SRRKernel(SRR([100.0, 200.0]))
        kernel.step(60)
        snap = kernel.snapshot()
        assert isinstance(snap, SRRState)
        kernel.step(500)  # further mutation must not leak into the snapshot
        assert snap != kernel.snapshot()

    def test_restore_resumes_identically(self):
        sizes = [113, 908, 77, 1500, 1, 640] * 5
        kernel = SRRKernel(SRR([500.0, 300.0, 800.0]))
        kernel.assign_many(sizes[:10])
        snap = kernel.snapshot()
        tail_a = kernel.assign_many(sizes[10:])
        kernel.restore(snap)
        tail_b = kernel.assign_many(sizes[10:])
        assert tail_a == tail_b

    def test_restore_interops_with_immutable_states(self):
        """A state produced by CausalFQ.update is a valid kernel snapshot."""
        algorithm = SRR([500.0, 300.0])
        state = algorithm.initial_state()
        for size in (400, 200, 77):
            state = algorithm.update(state, size)
        kernel = SRRKernel(algorithm)
        kernel.restore(state)
        assert kernel.snapshot() == state
        assert kernel.peek() == algorithm.select(state)

    def test_restore_rejects_wrong_channel_count(self):
        kernel = SRRKernel(SRR([100.0, 100.0]))
        with pytest.raises(ValueError):
            kernel.restore(SRRState(ptr=0, round_number=1, dc=(1.0,)))

    def test_adapter_snapshot_restore(self):
        kernel = CFQKernelAdapter(SeededRandomFQ(3, seed=5))
        kernel.assign_many([10, 20])
        snap = kernel.snapshot()
        tail_a = kernel.assign_many([30, 40, 50])
        kernel.restore(snap)
        assert kernel.assign_many([30, 40, 50]) == tail_a


class TestDRRKernel:
    def test_matches_immutable_drr(self):
        quanta = [500.0, 300.0]
        packets = make_packets(60, seed=3, lo=1, hi=450)
        queues = [packets[0::2], packets[1::2]]
        reference = fq_service_order_noncausal(DRR(quanta), queues)

        kernel = DRRKernel(quanta)
        positions = [0, 0]
        order = []
        while True:
            heads = [
                queues[i][positions[i]].size
                if positions[i] < len(queues[i]) else None
                for i in range(2)
            ]
            if all(h is None for h in heads):
                break
            queue = kernel.next(heads)
            packet = queues[queue][positions[queue]]
            positions[queue] += 1
            order.append(packet)
            kernel.consume(queue, packet.size)
        assert [p.uid for p in order] == [p.uid for p in reference]

    def test_snapshot_restore(self):
        kernel = DRRKernel([100.0, 100.0])
        kernel.next([60, 60])
        kernel.consume(0, 60)
        snap = kernel.snapshot()
        kernel.next([60, 60])
        kernel.consume(0, 60)
        assert kernel.snapshot() != snap
        kernel.restore(snap)
        assert kernel.snapshot() == snap


class TestReceiverSnapshotAdoption:
    """Theorem 5.1 flavor: a receiver that adopts a sender kernel snapshot
    mid-stream converges to FIFO delivery of the remaining stream."""

    def _striped_with_states(self, algorithm, packets):
        """Stripe packets, recording the sender snapshot before each."""
        kernel = SRRKernel(algorithm)
        snapshots = []
        channels = [[] for _ in range(algorithm.n_channels)]
        placements = []
        for packet in packets:
            snapshots.append(kernel.snapshot())
            channel = kernel.step(packet.size)
            channels[channel].append(packet)
            placements.append(channel)
        return channels, placements, snapshots

    def test_mid_stream_adoption_converges(self):
        algorithm = SRR([1500.0, 2070.0, 900.0])
        packets = make_packets(400, seed=11)
        channels, placements, snapshots = self._striped_with_states(
            algorithm, packets
        )
        cut = 217  # receiver boots mid-stream: packets before this are gone

        receiver = SRRReceiver(SRR([1500.0, 2070.0, 900.0]))
        delivered = []
        receiver.on_deliver = delivered.append
        # Adopt the sender's exact state as of the cut...
        receiver.adopt_snapshot(snapshots[cut])
        # ...then receive only the post-cut suffix of each channel stream.
        suffix = [[] for _ in channels]
        for index in range(cut, len(packets)):
            suffix[placements[index]].append(packets[index])
        progressing = True
        cursors = [0] * len(suffix)
        while progressing:  # interleave channels packet by packet
            progressing = False
            for c, stream in enumerate(suffix):
                if cursors[c] < len(stream):
                    receiver.push(c, stream[cursors[c]])
                    cursors[c] += 1
                    progressing = True
        assert [p.seq for p in delivered] == [
            p.seq for p in packets[cut:]
        ]  # exact FIFO from the adoption point on

    def test_adoption_equivalent_to_full_replay(self):
        """Adopting snapshot[k] then feeding the suffix leaves the same
        mirror state as replaying the whole stream."""
        algorithm = SRR([700.0, 400.0])
        packets = make_packets(120, seed=2, lo=1, hi=600)
        channels, placements, snapshots = self._striped_with_states(
            algorithm, packets
        )

        full = SRRReceiver(SRR([700.0, 400.0]))
        for index, packet in enumerate(packets):
            full.push(placements[index], packet)

        cut = 60
        partial = SRRReceiver(SRR([700.0, 400.0]))
        partial.adopt_snapshot(snapshots[cut])
        for index in range(cut, len(packets)):
            partial.push(placements[index], packets[index])
        assert partial.mirror_state() == full.mirror_state()

    def test_snapshot_restore_across_marker_adoption(self):
        """restore() rewinds marker adoptions: replaying the same arrivals
        from a snapshot reproduces the same mirror state and deliveries."""
        ports = [ListPort(), ListPort()]
        striper = Striper(
            TransformedLoadSharer(SRR([1500.0, 2070.0])), ports,
            MarkerPolicy(interval_rounds=1, initial_markers=False),
        )
        for packet in make_packets(300, seed=9):
            striper.submit(packet)
        streams = [list(p.sent) for p in ports]

        receiver = SRRReceiver(SRR([1500.0, 2070.0]))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        snap = receiver.snapshot()  # pre-adoption mirror, buffers empty

        def feed_all():
            progressing = True
            cursors = [0, 0]
            while progressing:
                progressing = False
                for c in range(2):
                    if cursors[c] < len(streams[c]):
                        receiver.push(c, streams[c][cursors[c]])
                        cursors[c] += 1
                        progressing = True

        feed_all()
        first_run = list(delivered)
        assert first_run  # markers were adopted and packets delivered
        assert receiver.stats.adoptions > 0
        assert receiver.buffered == 0  # fully drained: safe to replay

        # Rewind the mirror past every adoption and replay the arrivals.
        receiver.restore(snap)
        delivered.clear()
        feed_all()
        assert delivered == first_run

    def test_restore_rejects_wrong_width(self):
        receiver = SRRReceiver(SRR([100.0, 100.0]))
        other = SRRReceiver(SRR([100.0, 100.0, 100.0]))
        with pytest.raises(ValueError):
            receiver.restore(other.snapshot())
        with pytest.raises(ValueError):
            receiver.adopt_snapshot(
                SRRState(ptr=0, round_number=1, dc=(1.0, 1.0, 1.0))
            )


class TestSessionResetInstallsFreshKernel:
    def _loopback(self, sim, n_ports=2, quanta=(100.0, 100.0)):
        ports = [ListPort() for _ in range(n_ports)]
        config = StripeConfig(quanta=tuple(quanta))
        sender = StripeSenderSession(sim, ports, config)
        delivered = []

        def send_control(packet):
            sender.on_control(packet)

        receiver = StripeReceiverSession(
            sim, n_ports, config, send_control,
            on_deliver=lambda p: delivered.append(p.seq),
        )
        return ports, sender, receiver, delivered

    def _flush(self, ports, receiver, cursors):
        progressing = True
        while progressing:
            progressing = False
            for index, port in enumerate(ports):
                if cursors[index] < len(port.sent):
                    receiver.push(index, port.sent[cursors[index]])
                    cursors[index] += 1
                    progressing = True

    def test_reset_installs_epoch_initial_snapshot_both_ends(self):
        sim = Simulator()
        ports, sender, receiver, delivered = self._loopback(sim)
        cursors = [0, 0]
        for packet in make_packets(40, seed=4, lo=10, hi=90):
            sender.submit(packet)
        self._flush(ports, receiver, cursors)
        assert delivered == list(range(40))

        new_config = StripeConfig(quanta=(250.0, 125.0))
        sender.initiate_reset(new_config)
        self._flush(ports, receiver, cursors)  # RESETs reach the receiver
        sim.run()
        assert sender.state == sender.RUNNING

        # Both ends now sit at the new config's epoch-initial kernel state.
        assert sender.striper._kernel.snapshot() == new_config.initial_snapshot()
        mirror = receiver.receiver.mirror_state()
        assert mirror["ptr"] == 0
        assert mirror["G"] == 1
        assert mirror["dc"] == (250.0, 0.0)
        assert mirror["sync_round"] == (None, None)

        # And the new epoch delivers FIFO with the new quanta.
        delivered.clear()
        for packet in make_packets(60, seed=5, lo=10, hi=240):
            sender.submit(packet)
        self._flush(ports, receiver, cursors)
        assert delivered == list(range(60))

    def test_reconfig_changes_kernel_width(self):
        sim = Simulator()
        ports, sender, receiver, delivered = self._loopback(
            sim, n_ports=3, quanta=(100.0, 100.0, 100.0)
        )
        cursors = [0, 0, 0]
        drop_config = sender.config_without(1)
        sender.initiate_reset(drop_config)
        self._flush(ports, receiver, cursors)
        sim.run()
        assert sender.striper._kernel.n_channels == 2
        assert receiver.receiver.n_channels == 2
        for packet in make_packets(30, seed=6, lo=10, hi=90):
            sender.submit(packet)
        self._flush(ports, receiver, cursors)
        assert delivered == list(range(30))


class TestStripeSequenceBatched:
    def test_matches_two_phase_protocol(self):
        """The batched stripe_sequence equals the explicit per-packet
        choose/notify_sent protocol for a causal policy."""
        packets = make_packets(500, seed=8)
        batched = stripe_sequence(
            TransformedLoadSharer(SRR([1500.0, 900.0])), packets
        )
        sharer = TransformedLoadSharer(SRR([1500.0, 900.0]))
        reference = [[] for _ in range(2)]
        for packet in packets:
            channel = sharer.choose(packet)
            reference[channel].append(packet)
            sharer.notify_sent(channel, packet)
        assert [[p.uid for p in ch] for ch in batched] == [
            [p.uid for p in ch] for ch in reference
        ]
