"""Unit tests for the DKS (non-causal) fair-queuing contrast case."""

import pytest

from repro.core.cfq import fq_service_order_noncausal
from repro.core.dks import DKS, dks_service_gap
from repro.core.srr import SRR
from repro.core.cfq import fq_service_order
from tests.conftest import make_packets, random_sizes


def queue_lookup(queues):
    table = {}
    for index, queue in enumerate(queues):
        for packet in queue:
            table[packet.uid] = index
    return lambda p: table[p.uid]


class TestDKSBehaviour:
    def test_equal_weights_interleave_equal_packets(self):
        q1 = make_packets([100] * 6)
        q2 = make_packets([100] * 6)
        order = fq_service_order_noncausal(DKS(n=2), [q1, q2])
        lookup = queue_lookup([q1, q2])
        # strict alternation for identical packets
        queues = [lookup(p) for p in order]
        assert queues == [0, 1] * 6 or queues == [1, 0] * 6

    def test_small_packets_finish_first(self):
        """A queue of small packets gets proportionally more packets."""
        big = make_packets([1000] * 5)
        small = make_packets([100] * 50)
        order = fq_service_order_noncausal(DKS(n=2), [big, small])
        lookup = queue_lookup([big, small])
        first_12 = [lookup(p) for p in order[:12]]
        # bytes stay balanced: ~10 small packets per big one
        assert first_12.count(1) >= 9

    def test_weighted_shares(self):
        q1 = make_packets([200] * 60)
        q2 = make_packets([200] * 60)
        order = fq_service_order_noncausal(DKS(weights=[2, 1]), [q1, q2])
        lookup = queue_lookup([q1, q2])
        prefix = [lookup(p) for p in order[:30]]
        assert prefix.count(0) == pytest.approx(20, abs=2)

    def test_byte_fairness_tight(self):
        q1 = make_packets(random_sizes(150, seed=31))
        q2 = make_packets(random_sizes(150, seed=32))
        order = fq_service_order_noncausal(DKS(n=2), [q1, q2])
        gap = dks_service_gap(order, queue_lookup([q1, q2]), 2)
        assert gap <= 2 * 1500  # within two max packets at all times

    def test_validation(self):
        with pytest.raises(ValueError):
            DKS()
        with pytest.raises(ValueError):
            DKS(weights=[1, 0])
        with pytest.raises(ValueError):
            DKS(n=0)

    def test_all_queues_empty_raises(self):
        dks = DKS(n=2)
        with pytest.raises(ValueError):
            dks.next(dks.initial_state(), [None, None])


class TestNonCausality:
    def test_decision_depends_on_head_sizes(self):
        """The same state chooses different queues for different heads —
        the defining non-causal behaviour (a striping receiver could not
        simulate this without the unseen packets)."""
        dks = DKS(n=2)
        state = dks.initial_state()
        choice_a, _ = dks.next(state, [100, 900])
        choice_b, _ = dks.next(state, [900, 100])
        assert choice_a == 0 and choice_b == 1

    def test_srr_decision_does_not(self):
        """Contrast: SRR's choice is a function of state alone."""
        srr = SRR([500, 500])
        state = srr.initial_state()
        assert srr.select(state) == srr.select(state)
        # no packet-dependent argument even exists in the interface


class TestFairnessComparison:
    def test_dks_tighter_than_srr_on_adversary(self):
        """DKS's instantaneous byte gap beats SRR's round-granularity gap
        on the alternating adversary — the service-quality cost the paper
        pays for causality."""
        sizes1 = [1400, 100] * 100
        sizes2 = [100, 1400] * 100
        q1 = make_packets(sizes1)
        q2 = make_packets(sizes2)
        dks_order = fq_service_order_noncausal(DKS(n=2), [q1, q2])
        dks_gap = dks_service_gap(dks_order, queue_lookup([q1, q2]), 2)

        q1b = make_packets(sizes1)
        q2b = make_packets(sizes2)
        srr_order = fq_service_order(SRR([1500, 1500]), [q1b, q2b])
        srr_gap = dks_service_gap(srr_order, queue_lookup([q1b, q2b]), 2)
        assert dks_gap <= srr_gap
