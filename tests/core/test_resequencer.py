"""Unit tests for logical reception (Theorem 4.1) and the null ablation."""

import random

import pytest

from repro.core.packet import MarkerPacket, Packet
from repro.core.resequencer import NullResequencer, Resequencer
from repro.core.schemes import SeededRandomFQ
from repro.core.srr import SRR, make_rr
from repro.core.transform import TransformedLoadSharer, stripe_sequence
from tests.conftest import make_packets, random_sizes


def roundtrip(algorithm, packets, interleave_seed=None):
    """Stripe packets, then feed the channels to a Resequencer in some
    physical arrival order; return the delivered sequence."""
    sharer = TransformedLoadSharer(algorithm)
    channels = stripe_sequence(sharer, packets)
    receiver = Resequencer(algorithm)
    delivered = []
    receiver.on_deliver = delivered.append

    arrivals = [(c, p) for c, stream in enumerate(channels) for p in stream]
    if interleave_seed is None:
        # channel-major order: worst-case skew (whole channels early)
        pass
    else:
        # random interleaving that preserves per-channel order
        rng = random.Random(interleave_seed)
        positions = [0] * len(channels)
        arrivals = []
        remaining = sum(len(s) for s in channels)
        while remaining:
            candidates = [
                c for c in range(len(channels))
                if positions[c] < len(channels[c])
            ]
            c = rng.choice(candidates)
            arrivals.append((c, channels[c][positions[c]]))
            positions[c] += 1
            remaining -= 1
    for channel, packet in arrivals:
        receiver.push(channel, packet)
    return delivered


class TestTheorem41:
    """No loss ⇒ receiver output order == sender input order."""

    def test_srr_roundtrip_channel_major(self):
        packets = make_packets(random_sizes(120, seed=5))
        delivered = roundtrip(SRR([500, 700]), packets)
        assert [p.seq for p in delivered] == [p.seq for p in packets]

    def test_srr_roundtrip_random_interleavings(self):
        packets = make_packets(random_sizes(120, seed=6))
        for seed in range(5):
            delivered = roundtrip(
                SRR([500, 700, 300]), packets, interleave_seed=seed
            )
            assert [p.seq for p in delivered] == [p.seq for p in packets]

    def test_rr_roundtrip(self):
        packets = make_packets(random_sizes(60, seed=7))
        delivered = roundtrip(make_rr(4), packets, interleave_seed=1)
        assert [p.seq for p in delivered] == [p.seq for p in packets]

    def test_seeded_random_fq_roundtrip(self):
        packets = make_packets(random_sizes(80, seed=8))
        delivered = roundtrip(
            SeededRandomFQ(3, seed=13), packets, interleave_seed=2
        )
        assert [p.seq for p in delivered] == [p.seq for p in packets]


class TestBlocking:
    def test_blocks_on_expected_channel(self):
        srr = SRR([500, 500])
        receiver = Resequencer(srr)
        # Sender sends packet 0 (600B, exhausting channel 0's quantum) on
        # channel 0, then packet 1 on channel 1.  If packet 1 physically
        # arrives first, it must wait.
        out = receiver.push(1, Packet(400, seq=1))
        assert out == []
        assert receiver.buffered == 1
        out = receiver.push(0, Packet(600, seq=0))
        assert [p.seq for p in out] == [0, 1]
        assert receiver.buffered == 0

    def test_expected_channel_tracks_state(self):
        srr = SRR([500, 500])
        receiver = Resequencer(srr)
        assert receiver.expected_channel() == 0
        receiver.push(0, Packet(600, seq=0))  # exhausts ch0's quantum
        assert receiver.expected_channel() == 1

    def test_max_buffered_statistic(self):
        receiver = Resequencer(SRR([500, 500]))
        for i in range(5):
            receiver.push(1, Packet(100, seq=i))
        assert receiver.max_buffered == 5

    def test_markers_are_discarded(self):
        receiver = Resequencer(SRR([500, 500]))
        out = receiver.push(0, MarkerPacket(channel=0, round_number=1, deficit=500))
        assert out == []
        out = receiver.push(0, Packet(100, seq=0))
        assert [p.seq for p in out] == [0]

    def test_invalid_channel(self):
        receiver = Resequencer(SRR([500, 500]))
        with pytest.raises(ValueError):
            receiver.push(2, Packet(100))


class TestNullResequencer:
    def test_delivers_in_arrival_order(self):
        receiver = NullResequencer(2)
        delivered = []
        receiver.on_deliver = delivered.append
        receiver.push(1, Packet(100, seq=5))
        receiver.push(0, Packet(100, seq=0))
        assert [p.seq for p in delivered] == [5, 0]
        assert receiver.delivered == 2

    def test_never_buffers(self):
        receiver = NullResequencer(2)
        receiver.push(1, Packet(100, seq=1))
        assert receiver.buffered == 0

    def test_drops_markers(self):
        receiver = NullResequencer(2)
        out = receiver.push(0, MarkerPacket(channel=0, round_number=1, deficit=1))
        assert out == []

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            NullResequencer(0)

    def test_invalid_channel(self):
        receiver = NullResequencer(2)
        with pytest.raises(ValueError):
            receiver.push(5, Packet(100))
