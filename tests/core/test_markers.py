"""Unit tests for the marker-synchronized receiver (section 5)."""

import pytest

from repro.core.markers import SRRReceiver
from repro.core.packet import MarkerPacket, Packet, is_marker
from repro.core.srr import SRR, make_rr
from repro.core.striper import ListPort, MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer
from repro.sim.trace import Tracer
from tests.conftest import make_packets, random_sizes


def stripe_with_markers(algorithm, packets, interval=1, position=0):
    sharer = TransformedLoadSharer(algorithm)
    ports = [ListPort() for _ in range(algorithm.n_channels)]
    striper = Striper(
        sharer, ports,
        MarkerPolicy(interval_rounds=interval, position=position,
                     initial_markers=False),
    )
    for packet in packets:
        striper.submit(packet)
    return [list(port.sent) for port in ports]


def feed(receiver, streams, order="alternate"):
    delivered = []
    receiver.on_deliver = lambda p: delivered.append(p.seq)
    longest = max(len(s) for s in streams)
    for i in range(longest):
        for channel, stream in enumerate(streams):
            if i < len(stream):
                receiver.push(channel, stream[i])
    return delivered


class TestNoLossEquivalence:
    def test_matches_plain_resequencer_without_loss(self):
        """With no loss, the marker receiver delivers exactly FIFO, marker
        packets notwithstanding."""
        algorithm = SRR([500, 700])
        packets = make_packets(random_sizes(150, seed=11))
        streams = stripe_with_markers(algorithm, packets, interval=2)
        receiver = SRRReceiver(SRR([500, 700]))
        delivered = feed(receiver, streams)
        assert delivered == [p.seq for p in packets]
        assert receiver.stats.channel_skips == 0

    def test_mirror_state_tracks_sender(self):
        algorithm = SRR([500, 500])
        receiver = SRRReceiver(algorithm)
        receiver.push(0, Packet(600, seq=0))
        state = receiver.mirror_state()
        assert state["ptr"] == 1
        assert state["dc"][0] == pytest.approx(-100.0)


class TestLossRecovery:
    def test_paper_walkthrough(self):
        """Figures 8-13: packet 7 lost, marker G=7 resynchronizes."""
        size = 100
        algorithm = SRR([float(size)] * 2)
        packets = [Packet(size, seq=n) for n in range(1, 19)]
        streams = stripe_with_markers(algorithm, packets, interval=6)
        streams[0] = [
            p for p in streams[0] if is_marker(p) or p.seq != 7
        ]
        receiver = SRRReceiver(SRR([float(size)] * 2))
        delivered = feed(receiver, streams)
        assert delivered == [1, 2, 3, 4, 5, 6, 9, 8, 11, 10, 12,
                             13, 14, 15, 16, 17, 18]
        assert receiver.stats.channel_skips == 1

    def test_recovery_restores_fifo_tail(self):
        """Theorem 5.1: after the marker batch following the last loss,
        everything is FIFO."""
        algorithm = SRR([500.0, 500.0])
        packets = make_packets([500] * 400)
        streams = stripe_with_markers(algorithm, packets, interval=1)
        # Lose a mid-stream data packet on channel 0.
        victim = [p for p in streams[0] if not is_marker(p)][50]
        streams[0] = [p for p in streams[0] if p is not victim]
        receiver = SRRReceiver(SRR([500.0, 500.0]))
        delivered = feed(receiver, streams)
        assert victim.seq not in delivered
        # find last out-of-order index
        max_seen = -1
        last_violation = -1
        for index, seq in enumerate(delivered):
            if seq < max_seen:
                last_violation = index
            max_seen = max(max_seen, seq)
        # the disruption is confined to a small window after the loss
        assert last_violation < 120

    def test_multiple_losses_still_recover(self):
        algorithm = SRR([400.0, 400.0, 400.0])
        packets = make_packets([400] * 600)
        streams = stripe_with_markers(algorithm, packets, interval=1)
        for channel in range(3):
            data = [p for p in streams[channel] if not is_marker(p)]
            victims = {data[20].uid, data[60].uid, data[100].uid}
            streams[channel] = [
                p for p in streams[channel]
                if is_marker(p) or p.uid not in victims
            ]
        receiver = SRRReceiver(SRR([400.0, 400.0, 400.0]))
        delivered = feed(receiver, streams)
        # FIFO at the tail (post-recovery)
        tail = delivered[-100:]
        assert tail == sorted(tail)

    def test_marker_lost_too_next_one_recovers(self):
        algorithm = SRR([500.0, 500.0])
        packets = make_packets([500] * 300)
        streams = stripe_with_markers(algorithm, packets, interval=1)
        data0 = [p for p in streams[0] if not is_marker(p)]
        # lose data packet 40 AND the next marker after it
        victim = data0[40]
        idx = streams[0].index(victim)
        following_marker = next(
            p for p in streams[0][idx:] if is_marker(p)
        )
        gone = {victim.uid, following_marker.uid}
        streams[0] = [p for p in streams[0] if p.uid not in gone]
        receiver = SRRReceiver(SRR([500.0, 500.0]))
        delivered = feed(receiver, streams)
        tail = delivered[-60:]
        assert tail == sorted(tail)


class TestSkipLogic:
    def test_future_marker_causes_skip(self):
        algorithm = SRR([100.0, 100.0])
        receiver = SRRReceiver(algorithm)
        # Receiver is in round 1; a marker says channel 0's next packet is
        # round 3 -> skip channel 0 until G reaches 3.
        receiver.push(0, MarkerPacket(channel=0, round_number=3, deficit=100.0))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        # Round 1 and 2 data on channel 1 deliver despite channel 0 block.
        receiver.push(1, Packet(100, seq=10))
        receiver.push(1, Packet(100, seq=11))
        assert delivered == [10, 11]
        assert receiver.stats.channel_skips >= 2
        # Now channel 0's round-3 packet is serviced.
        receiver.push(0, Packet(100, seq=12))
        assert delivered == [10, 11, 12]

    def test_stale_marker_is_harmless(self):
        """A marker whose round equals the receiver's expectation changes
        nothing (pure confirmation)."""
        algorithm = SRR([100.0, 100.0])
        receiver = SRRReceiver(algorithm)
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        receiver.push(0, MarkerPacket(channel=0, round_number=1, deficit=100.0))
        receiver.push(0, Packet(100, seq=0))
        receiver.push(1, Packet(100, seq=1))
        assert delivered == [0, 1]
        assert receiver.stats.channel_skips == 0

    def test_all_channels_future_fast_forwards(self):
        algorithm = SRR([100.0, 100.0])
        receiver = SRRReceiver(algorithm)
        receiver.push(0, MarkerPacket(channel=0, round_number=50, deficit=100.0))
        receiver.push(1, MarkerPacket(channel=1, round_number=50, deficit=100.0))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        receiver.push(0, Packet(100, seq=0))
        receiver.push(1, Packet(100, seq=1))
        assert delivered == [0, 1]
        assert receiver.round_number >= 50

    def test_trace_events_emitted(self):
        tracer = Tracer()
        algorithm = SRR([100.0, 100.0])
        receiver = SRRReceiver(algorithm, tracer=tracer)
        receiver.push(0, MarkerPacket(channel=0, round_number=3, deficit=100.0))
        receiver.push(1, Packet(100, seq=0))
        assert tracer.count(kind="marker") == 1
        assert tracer.count(kind="skip") >= 1
        assert tracer.count(kind="deliver") == 1


class TestDuplicateMarkers:
    """Network-duplicated markers must be adopted at most once: a repeat
    of the last adopted (round, deficit) pair re-applied after data was
    consumed would inflate the mirrored deficit and skip rounds."""

    def test_stream_with_every_marker_doubled_is_unchanged(self):
        algorithm = SRR([500.0, 500.0])
        packets = make_packets(random_sizes(200, seed=3))
        streams = stripe_with_markers(algorithm, packets, interval=1)
        clean = feed(SRRReceiver(SRR([500.0, 500.0])), streams)

        doubled = []
        n_markers = 0
        for stream in streams:
            out = []
            for packet in stream:
                out.append(packet)
                if is_marker(packet):
                    out.append(packet)
                    n_markers += 1
            doubled.append(out)
        receiver = SRRReceiver(SRR([500.0, 500.0]))
        delivered = feed(receiver, doubled)
        assert delivered == clean
        # At least every injected copy was deduplicated (idle channels
        # also re-emit the same (round, deficit) naturally, so the
        # counter may exceed the injected count).
        assert receiver.stats.duplicate_markers >= n_markers

    def test_duplicate_after_data_consumption_is_dropped(self):
        """The harmful interleaving: marker, data consumed, then the
        duplicate arrives.  Re-adoption would rewind the channel's DC."""
        algorithm = SRR([100.0, 100.0])
        receiver = SRRReceiver(algorithm)
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        marker = MarkerPacket(channel=0, round_number=1, deficit=100.0)
        receiver.push(0, marker)
        receiver.push(0, Packet(100, seq=0))
        receiver.push(1, Packet(100, seq=1))
        receiver.push(0, marker)  # the network's late duplicate
        receiver.push(0, Packet(100, seq=2))
        receiver.push(1, Packet(100, seq=3))
        assert delivered == [0, 1, 2, 3]
        assert receiver.stats.duplicate_markers == 1

    def test_distinct_marker_with_same_round_still_adopts(self):
        """Only an exact (round, deficit) repeat is a duplicate; a new
        marker for the same round with a different deficit is real."""
        algorithm = SRR([100.0, 100.0])
        receiver = SRRReceiver(algorithm)
        receiver.push(0, MarkerPacket(channel=0, round_number=1,
                                      deficit=100.0))
        receiver.push(0, MarkerPacket(channel=0, round_number=1,
                                      deficit=200.0))
        assert receiver.stats.adoptions == 2
        assert receiver.stats.duplicate_markers == 0

    def test_memo_cleared_on_state_restore(self):
        """adopt_snapshot / restore reset the dedup memo: after a state
        reset the 'same' (round, deficit) may legitimately reappear."""
        algorithm = SRR([100.0, 100.0])
        receiver = SRRReceiver(algorithm)
        marker = MarkerPacket(channel=0, round_number=2, deficit=100.0)
        receiver.push(0, marker)
        assert receiver.stats.adoptions == 1
        snapshot = receiver.snapshot()
        receiver.adopt_snapshot(snapshot)
        receiver.push(0, marker)
        assert receiver.stats.adoptions == 2
        assert receiver.stats.duplicate_markers == 0


class TestValidation:
    def test_requires_srr_family(self):
        from repro.core.schemes import SeededRandomFQ

        with pytest.raises(TypeError):
            SRRReceiver(SeededRandomFQ(2))

    def test_invalid_channel(self):
        receiver = SRRReceiver(SRR([100.0, 100.0]))
        with pytest.raises(ValueError):
            receiver.push(3, Packet(100))

    def test_rr_family_supported(self):
        receiver = SRRReceiver(make_rr(2))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        receiver.push(0, Packet(999, seq=0))
        receiver.push(1, Packet(40, seq=1))
        assert delivered == [0, 1]
