"""Unit tests for the fairness accounting (Theorem 3.2 bound)."""

import random

import pytest

from repro.core.fairness import (
    jain_fairness_index,
    max_pairwise_imbalance,
    normalized_shares,
    srr_fairness_report,
)
from repro.core.srr import SRR, make_rr
from tests.conftest import make_packets, random_sizes


class TestSrrFairnessReport:
    def test_bound_holds_on_random_traffic(self):
        packets = make_packets(random_sizes(500, seed=21))
        report = srr_fairness_report(SRR([1500, 1500]), packets)
        assert report.within_bound
        assert report.bound == max(p.size for p in packets) + 2 * 1500

    def test_bound_holds_on_adversarial_alternation(self):
        packets = make_packets([1000, 200] * 300)
        report = srr_fairness_report(SRR([1500, 1500]), packets)
        assert report.within_bound

    def test_bound_holds_with_weighted_quanta(self):
        packets = make_packets(random_sizes(600, seed=22))
        report = srr_fairness_report(SRR([1500, 3000]), packets)
        assert report.within_bound
        # weighted shares: channel 1 carries about twice the bytes
        assert report.actual_bytes[1] > report.actual_bytes[0]

    def test_rejects_packet_counting_variants(self):
        with pytest.raises(ValueError):
            srr_fairness_report(make_rr(2), make_packets([100]))

    def test_report_fields_consistent(self):
        packets = make_packets([500] * 100)
        report = srr_fairness_report(SRR([500, 500]), packets)
        assert len(report.actual_bytes) == 2
        assert sum(report.actual_bytes) == 500 * 100
        for deviation, ideal, actual in zip(
            report.deviations, report.ideal_bytes, report.actual_bytes
        ):
            assert deviation == pytest.approx(abs(actual - ideal))


class TestScalarMetrics:
    def test_jain_perfect(self):
        assert jain_fairness_index([100, 100, 100]) == pytest.approx(1.0)

    def test_jain_worst_case(self):
        assert jain_fairness_index([300, 0, 0]) == pytest.approx(1 / 3)

    def test_jain_empty_and_zero(self):
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0, 0]) == 1.0

    def test_max_pairwise_imbalance(self):
        assert max_pairwise_imbalance([5, 9, 7]) == 4
        assert max_pairwise_imbalance([]) == 0

    def test_normalized_shares(self):
        shares = normalized_shares([200, 100], [2, 1])
        assert shares == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_normalized_shares_imbalanced(self):
        shares = normalized_shares([300, 100], [1, 1])
        assert shares[0] > 1.0 > shares[1]

    def test_normalized_shares_length_mismatch(self):
        with pytest.raises(ValueError):
            normalized_shares([1, 2], [1])
