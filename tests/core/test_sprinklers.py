"""Tests for the Sprinklers marker-free striping discipline.

The in-order **proof obligations** of the design are checked as property
tests: a flow with a stable stripe visits its stripe members cyclically
(the discipline-level invariant), which over equal-rate FIFO channels
with equal-size packets makes delivery order equal submission order (the
end-to-end obligation, checked against a deterministic equal-rate channel
model).  Mice flows (stripe width 1) get per-flow FIFO unconditionally —
that case is pure address hashing.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packet import Packet
from repro.core.sprinklers import (
    FlowRateEstimator,
    SprinklersDiscipline,
    stripe_size_for,
)


def drive(disc, packets):
    """Run packets through the two-phase protocol; return channel picks."""
    channels = []
    for packet in packets:
        channel = disc.choose(packet, None)
        disc.notify_sent(channel, packet)
        channels.append(channel)
    return channels


class TestStripeSizing:
    def test_mouse_gets_width_one(self):
        assert stripe_size_for(0.0, 8) == 1
        assert stripe_size_for(0.12, 8) == 1  # 0.12 * 8 < 1

    def test_power_of_two_growth(self):
        assert stripe_size_for(0.2, 8) == 2  # need 1.6
        assert stripe_size_for(0.3, 8) == 4  # need 2.4
        assert stripe_size_for(0.6, 8) == 8  # need 4.8

    def test_capped_at_bundle_width(self):
        assert stripe_size_for(1.0, 6) == 6  # non-power-of-two bundle
        assert stripe_size_for(1.0, 8) == 8

    def test_rejects_empty_bundle(self):
        with pytest.raises(ValueError):
            stripe_size_for(0.5, 0)


class TestFlowRateEstimator:
    def test_steady_share_converges(self):
        est = FlowRateEstimator(window_bytes=10_000)
        a, b = est.new_state(), est.new_state()
        for _ in range(400):  # a gets 3/4 of the traffic
            est.observe(a, 750)
            est.observe(b, 250)
        assert est.share(a) == pytest.approx(0.75, rel=0.05)
        assert est.share(b) == pytest.approx(0.25, rel=0.05)

    def test_idle_flow_decays(self):
        est = FlowRateEstimator(window_bytes=1_000)
        a, b = est.new_state(), est.new_state()
        for _ in range(50):
            est.observe(a, 100)
        peak = est.share(a)
        for _ in range(100):  # only b sends now
            est.observe(b, 100)
        assert est.share(a) < peak / 100

    def test_seeded_state_starts_at_prior(self):
        est = FlowRateEstimator(window_bytes=50_000)
        state = est.new_state(0.5)
        assert est.share(state) == pytest.approx(0.5)

    def test_share_clamped_to_one(self):
        est = FlowRateEstimator(window_bytes=100)
        a = est.new_state()
        for _ in range(200):
            est.observe(a, 1000)
        assert est.share(a) == 1.0


class TestSprinklersDiscipline:
    def test_choose_is_pure(self):
        disc = SprinklersDiscipline(4)
        packet = Packet(size=1000, seq=0)
        packet.flow = "f"
        first = disc.choose(packet, None)
        # Repeated choose (the striper retries the head packet under
        # backpressure) must neither change the answer nor advance state.
        assert all(disc.choose(packet, None) == first for _ in range(5))

    def test_new_flow_is_a_mouse(self):
        disc = SprinklersDiscipline(8)
        assert len(disc.stripe_of("fresh")) == 1

    def test_initial_share_provisions_full_stripe(self):
        disc = SprinklersDiscipline(8, initial_share=1.0)
        assert disc.stripe_of("bulk") == list(range(8))

    def test_flowless_packets_share_one_stripe(self):
        disc = SprinklersDiscipline(4, initial_share=1.0)
        packets = [Packet(size=1000, seq=i) for i in range(8)]
        assert sorted(set(drive(disc, packets))) == [0, 1, 2, 3]
        assert disc.flow_count == 1  # flow=None is one aggregate flow

    def test_equal_weights_exact_round_robin(self):
        disc = SprinklersDiscipline(4, initial_share=1.0)
        packets = [Packet(size=1000, seq=i) for i in range(64)]
        channels = drive(disc, packets)
        stripe = disc.stripe_of(None)
        expected = [stripe[i % 4] for i in range(64)]
        assert channels == expected

    def test_weighted_stripe_proportions(self):
        disc = SprinklersDiscipline(
            2, weights=[3.0, 1.0], initial_share=1.0
        )
        packets = [Packet(size=1000, seq=i) for i in range(400)]
        channels = drive(disc, packets)
        assert channels.count(0) == pytest.approx(300, abs=4)
        assert channels.count(1) == pytest.approx(100, abs=4)

    def test_aligned_placement_tiles_the_bundle(self):
        disc = SprinklersDiscipline(8)
        for flow in range(50):
            stripe = disc._stripe_channels(flow, 2)
            assert stripe[0] % 2 == 0  # aligned to stripe-size multiples
            assert stripe[1] == stripe[0] + 1

    def test_elephant_grows_its_stripe(self):
        disc = SprinklersDiscipline(4, window_bytes=16_000)
        packets = [Packet(size=1000, seq=i) for i in range(600)]
        for packet in packets:
            packet.flow = "elephant"
        drive(disc, packets)
        assert disc.resizes > 0
        assert len(disc.stripe_of("elephant")) == 4

    def test_hysteresis_blocks_marginal_shrink(self):
        disc = SprinklersDiscipline(4, window_bytes=16_000, hysteresis=100.0)
        packets = [Packet(size=1000, seq=i) for i in range(600)]
        drive(disc, packets)  # grows to full width
        grown = len(disc.stripe_of(None))
        assert grown == 4
        resizes_after_growth = disc.resizes
        # Now the aggregate share estimate never justifies shrinking by
        # 100x, so the stripe must hold its width.
        drive(disc, [Packet(size=10, seq=i) for i in range(600)])
        assert len(disc.stripe_of(None)) == grown or (
            disc.resizes == resizes_after_growth
        )

    def test_reset_clears_flows(self):
        disc = SprinklersDiscipline(4)
        drive(disc, [Packet(size=1000, seq=0)])
        assert disc.flow_count == 1
        disc.reset()
        assert disc.flow_count == 0
        assert disc.resizes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SprinklersDiscipline(0)
        with pytest.raises(ValueError):
            SprinklersDiscipline(2, weights=[1.0])
        with pytest.raises(ValueError):
            SprinklersDiscipline(2, weights=[1.0, -1.0])
        with pytest.raises(ValueError):
            SprinklersDiscipline(2, hysteresis=0.5)
        with pytest.raises(ValueError):
            SprinklersDiscipline(2, initial_share=1.5)
        with pytest.raises(ValueError):
            SprinklersDiscipline(2, resize_interval=0)

    def test_marker_free_declaration(self):
        assert SprinklersDiscipline.marker_free is True
        assert SprinklersDiscipline.simulatable is False


def deliver_equal_rate(assignments, n_channels):
    """Delivery order over equal-rate FIFO channels, equal-size packets.

    Deterministic channel model: per time step every channel delivers its
    head-of-queue packet, ties broken by channel index — the idealized
    "stable channels" of the in-order proof obligation.
    """
    queues = [[] for _ in range(n_channels)]
    for seq, channel in assignments:
        queues[channel].append(seq)
    order = []
    while any(queues):
        for queue in queues:
            if queue:
                order.append(queue.pop(0))
    return order


class TestInOrderProofObligations:
    """The design's ordering guarantees, as property tests."""

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_stable_stripe_visits_members_cyclically(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.choice([2, 4, 8])
        disc = SprinklersDiscipline(n, initial_share=1.0)
        flow = f"flow-{seed}"
        packets = []
        for i in range(rng.randrange(20, 120)):
            packet = Packet(size=1000, seq=i)
            packet.flow = flow
            packets.append(packet)
        channels = drive(disc, packets)
        stripe = disc.stripe_of(flow)
        assert len(stripe) == n
        start = stripe.index(channels[0])
        expected = [stripe[(start + i) % n] for i in range(len(channels))]
        assert channels == expected

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_elephant_in_order_over_stable_channels(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.choice([2, 4])
        disc = SprinklersDiscipline(n, initial_share=1.0)
        count = rng.randrange(16, 200)
        packets = [Packet(size=1000, seq=i) for i in range(count)]
        channels = drive(disc, packets)
        order = deliver_equal_rate(list(enumerate(channels)), n)
        assert order == sorted(order)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_mice_per_flow_fifo_always(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.choice([2, 4, 8])
        disc = SprinklersDiscipline(n)  # all flows start as mice
        flows = [f"m{i}" for i in range(rng.randrange(2, 12))]
        assignments = []
        for i in range(300):
            packet = Packet(size=rng.choice([200, 1000, 1460]), seq=i)
            packet.flow = rng.choice(flows)
            channel = disc.choose(packet, None)
            disc.notify_sent(channel, packet)
            assignments.append((packet, channel))
        # Width-1 stripes: each flow rides exactly one FIFO channel, so
        # per-flow order survives arbitrary cross-channel timing.
        per_flow_channels = {}
        for packet, channel in assignments:
            per_flow_channels.setdefault(packet.flow, set()).add(channel)
        for flow, used in per_flow_channels.items():
            if len(disc.stripe_of(flow)) == 1:
                assert len(used) <= 2  # at most one resize while growing
