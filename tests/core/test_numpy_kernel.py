"""Unit tests for the vectorized SRR kernel (``NumpySRRKernel``).

The contract under test: the numpy kernel's ``assign_many`` is bit-identical
to :class:`~repro.core.kernel.SRRKernel` in every case — vectorized when the
burst is uniform-cost, integral, and large enough, silently scalar
otherwise — and its final mutable state (``ptr`` / ``round_number`` / ``dc``)
always matches the pure-python kernel's, so bursts can be freely interleaved
with scalar ``step`` calls.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.kernel import NumpySRRKernel, SRRKernel, kernel_for
from repro.core.srr import SRR, make_rr


def _state(kernel):
    return (kernel.ptr, kernel.round_number, list(kernel.dc))


def _pair(quanta):
    algorithm = SRR(list(quanta))
    return SRRKernel(algorithm), NumpySRRKernel(algorithm)


class TestVectorizedPath:
    def test_uniform_burst_matches_scalar_kernel(self):
        ref, fast = _pair([1000.0, 3000.0, 2000.0])
        sizes = [500] * 64
        assert fast.assign_many(sizes) == ref.assign_many(sizes)
        assert _state(fast) == _state(ref)
        assert fast.vector_batches == 1
        assert fast.scalar_batches == 0

    def test_packet_counting_mode_vectorizes(self):
        algorithm = make_rr(3)
        ref = SRRKernel(algorithm)
        fast = NumpySRRKernel(algorithm)
        sizes = [100, 900, 40, 1500] * 16  # cost is 1.0 regardless of size
        assert fast.assign_many(sizes) == ref.assign_many(sizes)
        assert _state(fast) == _state(ref)
        assert fast.vector_batches == 1

    def test_state_continues_across_bursts_and_scalar_steps(self):
        ref, fast = _pair([1000.0, 2000.0])
        for _ in range(3):
            sizes = [250] * 48
            assert fast.assign_many(sizes) == ref.assign_many(sizes)
            # interleave a few scalar steps between vector bursts
            for size in (100, 700, 300):
                assert fast.step(size) == ref.step(size)
            assert _state(fast) == _state(ref)
        assert fast.vector_batches == 3

    def test_randomized_uniform_bursts_identical(self):
        rng = random.Random(42)
        for trial in range(20):
            n = rng.randint(2, 6)
            quanta = [float(rng.randint(1, 8) * 500) for _ in range(n)]
            ref, fast = _pair(quanta)
            for _ in range(rng.randint(1, 4)):
                size = rng.choice([100, 500, 1000, 1500])
                sizes = [size] * rng.randint(32, 200)
                assert fast.assign_many(sizes) == ref.assign_many(sizes)
                assert _state(fast) == _state(ref)


class TestScalarFallback:
    def test_mixed_sizes_fall_back(self):
        ref, fast = _pair([1000.0, 1000.0])
        sizes = [500, 700] * 32
        assert fast.assign_many(sizes) == ref.assign_many(sizes)
        assert _state(fast) == _state(ref)
        assert fast.vector_batches == 0
        assert fast.scalar_batches == 1

    def test_small_bursts_fall_back(self):
        ref, fast = _pair([1000.0, 1000.0])
        sizes = [500] * 8  # below min_batch (32)
        assert fast.assign_many(sizes) == ref.assign_many(sizes)
        assert fast.vector_batches == 0
        assert fast.scalar_batches == 1

    def test_fractional_quanta_fall_back(self):
        ref, fast = _pair([1000.5, 2000.5])
        sizes = [500] * 64
        assert fast.assign_many(sizes) == ref.assign_many(sizes)
        assert _state(fast) == _state(ref)
        assert fast.vector_batches == 0

    def test_fallback_never_diverges_after_vector_burst(self):
        ref, fast = _pair([1500.0, 4500.0, 3000.0])
        uniform = [500] * 64
        mixed = [100, 1400, 500] * 16
        assert fast.assign_many(uniform) == ref.assign_many(uniform)
        assert fast.assign_many(mixed) == ref.assign_many(mixed)
        assert fast.assign_many(uniform) == ref.assign_many(uniform)
        assert _state(fast) == _state(ref)
        assert fast.vector_batches == 2
        assert fast.scalar_batches == 1


class TestKernelSelection:
    def test_kernel_for_numpy_true(self):
        kernel = kernel_for(SRR([1000.0, 2000.0]), numpy=True)
        assert isinstance(kernel, NumpySRRKernel)

    def test_kernel_for_numpy_auto(self):
        kernel = kernel_for(SRR([1000.0, 2000.0]), numpy="auto")
        assert isinstance(kernel, NumpySRRKernel)

    def test_kernel_for_default_is_pure_python(self):
        kernel = kernel_for(SRR([1000.0, 2000.0]), numpy=False)
        assert isinstance(kernel, SRRKernel)
        assert not isinstance(kernel, NumpySRRKernel)
