"""Unit tests for session control: reset, reconfiguration, local checking."""

import pytest

from repro.core.packet import Packet
from repro.core.session import (
    LocalChecker,
    ResetAckPacket,
    ResetPacket,
    ResetRequestPacket,
    StripeConfig,
    StripeReceiverSession,
    StripeSenderSession,
)
from repro.core.striper import ListPort, MarkerPolicy


class Loopback:
    """Synchronous sender↔receiver pair over ListPorts.

    ``flush()`` ferries everything from the sender's ports to the receiver
    and control packets back — optionally dropping selected packets.
    """

    def __init__(self, sim, n_ports=2, quanta=(100.0, 100.0),
                 marker_policy=None, checker=None):
        self.sim = sim
        self.ports = [ListPort() for _ in range(n_ports)]
        self.config = StripeConfig(quanta=tuple(quanta))
        self.sender = StripeSenderSession(
            sim, self.ports, self.config, marker_policy=marker_policy
        )
        self.delivered = []
        self.control_log = []

        def send_control(packet):
            self.control_log.append(packet)
            self.sender.on_control(packet)

        self.receiver = StripeReceiverSession(
            sim, n_ports, self.config, send_control,
            on_deliver=lambda p: self.delivered.append(p.seq),
            checker=checker,
        )
        self._cursor = [0] * n_ports

    def flush(self, drop=None, interleave=True):
        """Deliver new port contents to the receiver.

        ``interleave=True`` (default) alternates channels packet by packet
        (realistic bounded skew); ``False`` delivers channel-major
        (maximal skew — whole channels early).
        """
        drop = drop or set()

        def push_one(index):
            port = self.ports[index]
            if self._cursor[index] >= len(port.sent):
                return False
            packet = port.sent[self._cursor[index]]
            self._cursor[index] += 1
            if packet.uid not in drop:
                self.receiver.push(index, packet)
            return True

        if interleave:
            progressing = True
            while progressing:
                progressing = False
                for index in range(len(self.ports)):
                    if push_one(index):
                        progressing = True
        else:
            for index in range(len(self.ports)):
                while push_one(index):
                    pass


class TestResetProtocol:
    def test_plain_reset_round_trip(self, sim):
        loop = Loopback(sim)
        for i in range(4):
            loop.sender.submit(Packet(100, seq=i))
        loop.flush()
        assert loop.delivered == [0, 1, 2, 3]

        epoch = loop.sender.initiate_reset()
        assert epoch == 1
        assert loop.sender.state == StripeSenderSession.RESETTING
        loop.flush()  # RESETs reach the receiver; ACK comes back inline
        assert loop.sender.state == StripeSenderSession.RUNNING
        assert loop.receiver.epoch == 1
        assert loop.sender.resets_completed == 1

        for i in range(4, 8):
            loop.sender.submit(Packet(100, seq=i))
        loop.flush()
        assert loop.delivered == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_data_submitted_during_reset_is_replayed(self, sim):
        loop = Loopback(sim)
        loop.sender.initiate_reset()
        for i in range(3):
            loop.sender.submit(Packet(100, seq=i))  # queued
        assert loop.sender.striper.packets_sent == 0
        loop.flush()
        loop.flush()
        assert loop.delivered == [0, 1, 2]

    def test_in_flight_old_data_before_resets_still_delivers(self, sim):
        loop = Loopback(sim)
        for i in range(4):
            loop.sender.submit(Packet(100, seq=i))
        # Reset issued before the old data reaches the receiver: each
        # channel's FIFO holds data *ahead of* the RESET, so with bounded
        # skew it all delivers first, then the epoch switches.
        loop.sender.initiate_reset()
        loop.flush()
        assert loop.delivered == [0, 1, 2, 3]
        assert loop.receiver.epoch == 1

    def test_in_flight_old_data_racing_a_reset_is_discarded(self, sim):
        loop = Loopback(sim)
        for i in range(4):
            loop.sender.submit(Packet(100, seq=i))
        loop.sender.initiate_reset()
        # Maximal skew: channel 0's whole stream (incl. its RESET) lands
        # before channel 1's old-epoch data — which is then discarded, the
        # defined reset semantics for stragglers.
        loop.flush(interleave=False)
        assert loop.receiver.epoch == 1
        assert len(loop.delivered) + loop.receiver.reset_discards >= 4
        assert loop.receiver.reset_discards > 0

    def test_lost_reset_retried(self, sim):
        loop = Loopback(sim)
        loop.sender.initiate_reset()
        # Drop the RESET on channel 0 the first time round.
        first_reset = loop.ports[0].sent[-1]
        assert isinstance(first_reset, ResetPacket)
        loop.flush(drop={first_reset.uid})
        assert loop.sender.state == StripeSenderSession.RESETTING
        sim.run(until=1.0)  # retry timer fires, RESETs re-sent
        loop.flush()
        assert loop.sender.state == StripeSenderSession.RUNNING

    def test_duplicate_resets_are_idempotent(self, sim):
        loop = Loopback(sim)
        loop.sender.initiate_reset()
        loop.flush()
        acks_before = loop.receiver.acks_sent
        # Replay the same epoch's RESET (retry arriving late).
        loop.receiver.push(0, ResetPacket(epoch=1, config=loop.config))
        assert loop.receiver.epoch == 1
        assert loop.receiver.acks_sent == acks_before + 1  # re-acked
        assert loop.sender.resets_completed == 1  # no double completion

    def test_receiver_reset_request_triggers_reset(self, sim):
        loop = Loopback(sim)
        loop.receiver.request_reset("rebooted")
        assert loop.sender.epoch == 1
        loop.flush()
        assert loop.sender.state == StripeSenderSession.RUNNING

    def test_retry_gives_up_eventually(self, sim):
        ports = [ListPort(), ListPort()]
        sender = StripeSenderSession(
            sim, ports, StripeConfig(quanta=(100.0, 100.0)),
            retry_timeout=0.01, max_retries=3,
        )
        sender.initiate_reset()  # nobody ever acks
        with pytest.raises(RuntimeError):
            sim.run(until=10.0)


class TestReconfiguration:
    def test_quanta_change_applies_at_epoch(self, sim):
        loop = Loopback(sim, quanta=(100.0, 100.0))
        loop.sender.initiate_reset(
            StripeConfig(quanta=(300.0, 100.0))
        )
        loop.flush()
        assert loop.receiver.config.quanta == (300.0, 100.0)
        # New epoch stripes 3:1 by bytes.
        for i in range(8):
            loop.sender.submit(Packet(100, seq=i))
        loop.flush()
        assert loop.delivered == list(range(8))
        data0 = [p for p in loop.ports[0].sent if isinstance(p, Packet)]
        data1 = [p for p in loop.ports[1].sent if isinstance(p, Packet)]
        assert len(data0) == 6 and len(data1) == 2

    def test_channel_failure_reconfiguration(self, sim):
        """Drop a dead channel: reset to the surviving subset."""
        loop = Loopback(sim, n_ports=3, quanta=(100.0, 100.0, 100.0))
        for i in range(6):
            loop.sender.submit(Packet(100, seq=i))
        loop.flush()
        # Channel 1 dies; reconfigure to channels (0, 2).
        loop.sender.initiate_reset(
            StripeConfig(quanta=(100.0, 100.0), active_channels=(0, 2))
        )
        loop.flush()
        assert loop.sender.state == StripeSenderSession.RUNNING
        before = len(loop.ports[1].sent)
        for i in range(6, 12):
            loop.sender.submit(Packet(100, seq=i))
        loop.flush()
        assert loop.delivered == list(range(12))
        # the dead channel carried no new data
        new_data = [
            p for p in loop.ports[1].sent[before:] if isinstance(p, Packet)
        ]
        assert new_data == []

    def test_stragglers_on_inactive_channel_discarded(self, sim):
        loop = Loopback(sim, n_ports=2)
        loop.sender.initiate_reset(
            StripeConfig(quanta=(100.0,), active_channels=(0,))
        )
        loop.flush()
        # A stale data packet arrives on the now-inactive channel 1.
        loop.receiver.push(1, Packet(100, seq=99))
        assert 99 not in loop.delivered
        assert loop.receiver.reset_discards >= 1

    def test_invalid_configs_rejected(self, sim):
        ports = [ListPort(), ListPort()]
        with pytest.raises(ValueError):
            StripeSenderSession(
                sim, ports,
                StripeConfig(quanta=(1.0, 1.0), active_channels=(0,)),
            )
        sender = StripeSenderSession(
            sim, ports, StripeConfig(quanta=(1.0, 1.0))
        )
        with pytest.raises(ValueError):
            sender.initiate_reset(
                StripeConfig(quanta=(1.0,), active_channels=(7,))
            )


class TestLocalChecker:
    def test_healthy_stream_never_trips(self, sim):
        checker = LocalChecker(window_rounds=10)
        loop = Loopback(
            sim, marker_policy=MarkerPolicy(interval_rounds=1),
            checker=checker,
        )
        for i in range(60):
            loop.sender.submit(Packet(100, seq=i))
        loop.flush()
        assert checker.violations == 0
        assert loop.delivered == list(range(60))

    def test_corrupted_round_detected_and_corrected(self, sim):
        checker = LocalChecker(window_rounds=10)
        loop = Loopback(
            sim, marker_policy=MarkerPolicy(interval_rounds=1),
            checker=checker,
        )
        for i in range(10):
            loop.sender.submit(Packet(100, seq=i))
        loop.flush()
        # Fault injection: the receiver's global round jumps by 1000.
        loop.receiver.receiver.round_number += 1000
        for i in range(10, 30):
            loop.sender.submit(Packet(100, seq=i))
        loop.flush()   # checker sees divergent markers -> reset request
        assert checker.violations > 0
        assert checker.resets_requested == 1
        assert loop.sender.epoch == 1
        loop.flush()   # complete the reset handshake
        # Post-reset traffic flows in order again.
        base = len(loop.delivered)
        for i in range(30, 40):
            loop.sender.submit(Packet(100, seq=i))
        loop.flush()
        tail = loop.delivered[base:]
        assert tail == sorted(tail)
        assert tail[-1] == 39

    def test_one_request_per_epoch(self, sim):
        checker = LocalChecker(window_rounds=5)
        loop = Loopback(
            sim, marker_policy=MarkerPolicy(interval_rounds=1),
            checker=checker,
        )
        loop.receiver.receiver.round_number += 500
        for i in range(40):
            loop.sender.submit(Packet(100, seq=i))
        # Push only markers/data without flushing control both ways? The
        # loopback acks inline, so multiple violations still yield one
        # request for the corrupt epoch.
        loop.flush()
        assert checker.resets_requested <= 2  # corrupt epoch + none after

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalChecker(window_rounds=0)
