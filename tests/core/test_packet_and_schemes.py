"""Unit tests for packet types and the randomized CFQ schemes."""

import pytest

from repro.core.packet import (
    Codepoint,
    MarkerPacket,
    Packet,
    PacketPool,
    is_marker,
)
from repro.core.schemes import SeededRandomFQ, WeightedRandomFQ
from repro.core.transform import (
    TransformedLoadSharer,
    bytes_per_channel,
    stripe_sequence,
)
from tests.conftest import make_packets


class TestPacket:
    def test_unique_uids(self):
        a, b = Packet(100), Packet(100)
        assert a.uid != b.uid

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Packet(0)
        with pytest.raises(ValueError):
            Packet(-5)

    def test_default_codepoint_is_data(self):
        assert Packet(100).codepoint == Codepoint.DATA
        assert not is_marker(Packet(100))

    def test_marker_codepoint(self):
        marker = MarkerPacket(channel=0, round_number=1, deficit=100.0)
        assert marker.codepoint == Codepoint.MARKER
        assert is_marker(marker)

    def test_is_marker_on_foreign_object(self):
        class Foreign:
            pass

        assert not is_marker(Foreign())

    def test_repr_contains_label(self):
        assert "a" in repr(Packet(100, label="a"))
        assert "G=3" in repr(MarkerPacket(channel=1, round_number=3, deficit=9))


class TestSeededRandomFQ:
    def test_select_does_not_advance_state(self):
        fq = SeededRandomFQ(4, seed=1)
        state = fq.initial_state()
        assert fq.select(state) == fq.select(state)

    def test_update_advances(self):
        fq = SeededRandomFQ(4, seed=1)
        state = fq.initial_state()
        choices = []
        for _ in range(20):
            choices.append(fq.select(state))
            state = fq.update(state, 100)
        assert len(set(choices)) > 1  # actually random

    def test_shared_seed_gives_identical_sequences(self):
        a = SeededRandomFQ(3, seed=5)
        b = SeededRandomFQ(3, seed=5)
        sa, sb = a.initial_state(), b.initial_state()
        for _ in range(50):
            assert a.select(sa) == b.select(sb)
            sa = a.update(sa, 77)
            sb = b.update(sb, 77)

    def test_expected_fairness(self):
        """Randomized fairness: expected bytes per channel roughly equal."""
        fq = SeededRandomFQ(2, seed=3)
        packets = make_packets([100] * 4000)
        channels = stripe_sequence(TransformedLoadSharer(fq), packets)
        totals = bytes_per_channel(channels)
        assert abs(totals[0] - totals[1]) / sum(totals) < 0.05

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            SeededRandomFQ(0)


class TestWeightedRandomFQ:
    def test_weight_proportional_selection(self):
        fq = WeightedRandomFQ([3, 1], seed=2)
        state = fq.initial_state()
        counts = [0, 0]
        for _ in range(4000):
            counts[fq.select(state)] += 1
            state = fq.update(state, 100)
        ratio = counts[0] / counts[1]
        assert 2.4 < ratio < 3.6

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            WeightedRandomFQ([])
        with pytest.raises(ValueError):
            WeightedRandomFQ([1, 0])


class TestPacketPool:
    def test_fresh_allocation_when_empty(self):
        pool = PacketPool()
        packet = pool.acquire(100, seq=1)
        assert packet.size == 100 and packet.seq == 1
        assert pool.stats() == {
            "allocated": 1, "reused": 0, "released": 0,
            "double_releases": 0, "free": 0,
        }

    def test_reacquired_packet_is_reset_with_fresh_uid(self):
        pool = PacketPool()
        packet = pool.acquire(100, seq=1, flow="f", payload="old")
        packet.label = "stale"
        packet.rseq = 7
        packet.codepoint = Codepoint.MARKER
        old_uid = packet.uid
        pool.release(packet)
        recycled = pool.acquire(200, seq=2)
        assert recycled is packet  # same object, recycled
        assert recycled.uid != old_uid
        assert recycled.size == 200 and recycled.seq == 2
        assert recycled.label is None and recycled.rseq is None
        assert recycled.flow is None and recycled.payload is None
        assert recycled.codepoint == Codepoint.DATA
        assert not is_marker(recycled)
        assert pool.reused == 1 and pool.released == 1

    def test_only_plain_packets_are_pooled(self):
        pool = PacketPool()
        pool.release(MarkerPacket(round_number=1, deficit=0.0, channel=0))
        pool.release("not a packet")
        assert pool.stats()["free"] == 0

    def test_free_list_capped_at_max_size(self):
        pool = PacketPool(max_size=2)
        packets = [Packet(100) for _ in range(4)]
        for packet in packets:
            pool.release(packet)
        assert pool.released == 2
        assert pool.stats()["free"] == 2
