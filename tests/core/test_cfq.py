"""Unit tests for the CFQ interface and backlogged FQ drivers."""

import pytest

from repro.core.cfq import bits_per_queue, fq_service_order
from repro.core.srr import SRR, make_rr
from tests.conftest import make_packets


class TestFqServiceOrder:
    def test_paper_example(self):
        queue1 = make_packets([550, 150, 300], labels="abc")
        queue2 = make_packets([200, 400, 400], labels="def")
        order = fq_service_order(SRR([500, 500]), [queue1, queue2])
        assert [p.label for p in order] == ["a", "d", "e", "b", "c", "f"]

    def test_consumes_all_packets_when_balanced(self):
        queues = [make_packets([100] * 10), make_packets([100] * 10)]
        order = fq_service_order(SRR([100, 100]), queues)
        assert len(order) == 20

    def test_stops_at_empty_selected_queue(self):
        """The backlogged prefix ends when the algorithm selects an empty
        queue — remaining packets in other queues are not serviced."""
        queue1 = make_packets([100])
        queue2 = make_packets([100] * 10)
        order = fq_service_order(make_rr(2), [queue1, queue2])
        # RR: q0, q1, q0(empty -> stop)
        assert len(order) == 2

    def test_wrong_queue_count_rejected(self):
        with pytest.raises(ValueError):
            fq_service_order(SRR([500, 500]), [[]])

    def test_max_packets_cap(self):
        queues = [make_packets([100] * 100), make_packets([100] * 100)]
        order = fq_service_order(SRR([100, 100]), queues, max_packets=7)
        assert len(order) == 7

    def test_empty_queues_yield_empty_order(self):
        assert fq_service_order(SRR([500, 500]), [[], []]) == []


class TestBitsPerQueue:
    def test_equal_quanta_equal_bytes(self):
        queues = [
            make_packets([300] * 20),
            make_packets([500] * 12),
        ]
        totals, order = bits_per_queue(SRR([500, 500]), queues)
        assert abs(totals[0] - totals[1]) <= 500 + 2 * 500

    def test_weighted_quanta_weighted_bytes(self):
        queues = [
            make_packets([400] * 30),
            make_packets([400] * 30),
        ]
        totals, _ = bits_per_queue(SRR([1000, 500]), queues)
        # Queue 0 should get roughly twice queue 1's bytes over the
        # backlogged prefix.
        assert totals[0] > totals[1]
        assert totals[0] / max(totals[1], 1) == pytest.approx(2.0, rel=0.35)


class TestCapabilities:
    def test_srr_declares_quasi_fifo(self):
        assert SRR([500, 500]).capabilities.fifo_delivery == "quasi"
        assert SRR([500, 500]).capabilities.load_sharing == "good"

    def test_rr_declares_poor_sharing(self):
        rr = make_rr(2)
        assert rr.capabilities.load_sharing == "poor"
        assert rr.capabilities.fifo_delivery == "may_reorder"
