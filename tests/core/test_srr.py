"""Unit tests for SRR and its RR/GRR/DRR relatives."""

import pytest

from repro.core.cfq import fq_service_order, fq_service_order_noncausal
from repro.core.srr import (
    DRR,
    SRR,
    SRRState,
    grr_weights_for_bandwidths,
    make_grr,
    make_rr,
)
from tests.conftest import make_packets


class TestSRRStateMachine:
    def test_initial_state_gives_first_channel_its_quantum(self):
        srr = SRR([500, 700])
        state = srr.initial_state()
        assert state.ptr == 0
        assert state.round_number == 1
        assert state.dc == (500.0, 0.0)

    def test_positive_dc_keeps_channel(self):
        srr = SRR([500, 500])
        state = srr.initial_state()
        state = srr.update(state, 200)  # dc 500 -> 300, still positive
        assert state.ptr == 0
        assert state.dc[0] == 300.0

    def test_exhausted_dc_advances_and_credits_next(self):
        srr = SRR([500, 500])
        state = srr.initial_state()
        state = srr.update(state, 550)  # dc -> -50: advance
        assert state.ptr == 1
        assert state.dc == (-50.0, 500.0)

    def test_wrap_increments_round(self):
        srr = SRR([500, 500])
        state = srr.initial_state()
        state = srr.update(state, 500)  # ch0 -> 0, advance to ch1
        assert state.round_number == 1
        state = srr.update(state, 500)  # ch1 -> 0, wrap to ch0, round 2
        assert state.ptr == 0
        assert state.round_number == 2
        assert state.dc == (500.0, 0.0)

    def test_surplus_penalized_next_round(self):
        """A channel that overdraws by X gets quantum - X next round."""
        srr = SRR([500, 500])
        state = srr.initial_state()
        state = srr.update(state, 800)  # overdraw 300
        state = srr.update(state, 500)  # finish ch1, wrap
        assert state.ptr == 0
        assert state.dc[0] == pytest.approx(200.0)  # -300 + 500

    def test_deep_overdraw_skips_round(self):
        """Overdraw beyond one quantum skips the channel for whole rounds
        (only possible when quantum < max packet)."""
        srr = SRR([100, 100])
        state = srr.initial_state()
        state = srr.update(state, 350)  # ch0 dc = -250
        # ch1 now serves; after it exhausts, ch0 needs 3 quanta to go
        # positive: skipped in rounds 2 and 3, serves in round 4.
        state = srr.update(state, 100)  # ch1 -> 0; wrap: ch0 -150, skip
        assert state.ptr == 1  # ch0 skipped (dc -150)
        assert state.round_number == 2
        state = srr.update(state, 100)  # ch1 again; wrap: ch0 -50, skip
        assert state.ptr == 1
        assert state.round_number == 3
        state = srr.update(state, 100)  # ch1 again; wrap: ch0 50 > 0
        assert state.ptr == 0
        assert state.round_number == 4
        assert state.dc[0] == pytest.approx(50.0)

    def test_select_is_pure(self):
        srr = SRR([500, 500])
        state = srr.initial_state()
        assert srr.select(state) == srr.select(state) == 0

    def test_update_returns_new_state(self):
        srr = SRR([500, 500])
        s0 = srr.initial_state()
        s1 = srr.update(s0, 100)
        assert s0.dc == (500.0, 0.0)  # unchanged
        assert s1 is not s0

    def test_invalid_quanta(self):
        with pytest.raises(ValueError):
            SRR([])
        with pytest.raises(ValueError):
            SRR([500, 0])
        with pytest.raises(ValueError):
            SRR([500, -1])


class TestImplicitNumbering:
    def test_current_channel_number(self):
        srr = SRR([500, 500])
        state = srr.initial_state()
        assert srr.next_number_for_channel(state, 0) == (1, 500.0)

    def test_later_channel_same_round(self):
        srr = SRR([500, 500])
        state = srr.initial_state()
        # Channel 1 has dc 0; it will be visited later in round 1 with
        # dc 0 + 500.
        assert srr.next_number_for_channel(state, 1) == (1, 500.0)

    def test_earlier_channel_next_round(self):
        srr = SRR([500, 500])
        state = srr.update(srr.initial_state(), 600)  # ptr -> 1, ch0 dc -100
        r, d = srr.next_number_for_channel(state, 0)
        assert (r, d) == (2, 400.0)

    def test_deep_overdraw_rolls_rounds_forward(self):
        srr = SRR([100, 100])
        state = srr.update(srr.initial_state(), 350)  # ch0 dc -250, ptr 1
        r, d = srr.next_number_for_channel(state, 0)
        # -250 +100 +100 +100 = 50 in round 4
        assert (r, d) == (4, pytest.approx(50.0))

    def test_implicit_number_matches_actual_send(self):
        """The predicted (r, d) for a channel equals the state observed
        when that channel's next packet is actually sent."""
        srr = SRR([300, 500, 400])
        state = srr.initial_state()
        sizes = [120, 333, 80, 211, 499, 55, 430, 120, 100, 64, 1400, 90]
        for size in sizes:
            predictions = {
                c: srr.next_number_for_channel(state, c)
                for c in range(3)
            }
            channel = srr.select(state)
            assert predictions[channel] == (
                state.round_number,
                state.dc[channel],
            )
            state = srr.update(state, size)

    def test_out_of_range_channel(self):
        srr = SRR([500, 500])
        with pytest.raises(ValueError):
            srr.next_number_for_channel(srr.initial_state(), 2)


class TestRRAndGRR:
    def test_rr_alternates_regardless_of_size(self):
        rr = make_rr(3)
        state = rr.initial_state()
        channels = []
        for size in [1500, 40, 999, 40, 1500, 40]:
            channels.append(rr.select(state))
            state = rr.update(state, size)
        assert channels == [0, 1, 2, 0, 1, 2]

    def test_grr_respects_weights(self):
        grr = make_grr([2, 1])
        state = grr.initial_state()
        channels = []
        for _ in range(6):
            channels.append(grr.select(state))
            state = grr.update(state, 1000)
        assert channels == [0, 0, 1, 0, 0, 1]

    def test_grr_rejects_non_integer_weights(self):
        with pytest.raises(ValueError):
            make_grr([1.5, 1])
        with pytest.raises(ValueError):
            make_grr([0, 1])

    def test_weights_for_equal_bandwidths(self):
        assert grr_weights_for_bandwidths([10e6, 10e6]) == [1, 1]

    def test_weights_for_double(self):
        assert grr_weights_for_bandwidths([10e6, 5e6]) == [2, 1]

    def test_weights_for_fractional_ratio(self):
        weights = grr_weights_for_bandwidths([10e6, 13.8e6])
        ratio = weights[1] / weights[0]
        assert abs(ratio - 1.38) < 0.1

    def test_weights_invalid(self):
        with pytest.raises(ValueError):
            grr_weights_for_bandwidths([])
        with pytest.raises(ValueError):
            grr_weights_for_bandwidths([1.0, -2.0])


class TestDRR:
    def test_drr_is_fair_on_backlogged_queues(self):
        drr = DRR([500, 500])
        q1 = make_packets([400] * 10)
        q2 = make_packets([250] * 16)
        order = fq_service_order_noncausal(drr, [q1, q2])
        # take a prefix where both queues are still backlogged
        prefix = order[:16]
        bytes_q1 = sum(p.size for p in prefix if p.size == 400)
        bytes_q2 = sum(p.size for p in prefix if p.size == 250)
        assert abs(bytes_q1 - bytes_q2) <= 500 + 400

    def test_drr_never_overdraws(self):
        """Classic DRR only sends when the deficit covers the head — the
        property that makes it non-causal."""
        drr = DRR([500, 500])
        q1 = make_packets([450, 450, 450])
        q2 = make_packets([100, 100, 100])
        order = fq_service_order_noncausal(drr, [q1, q2])
        assert len(order) == 6

    def test_drr_invalid_quanta(self):
        with pytest.raises(ValueError):
            DRR([])


class TestSRRvsDRRCausality:
    def test_srr_decision_ignores_head_size(self):
        """SRR picks the channel before seeing the packet: same selection
        sequence for different size streams (only DC evolution differs)."""
        srr = SRR([500, 500])
        s1 = srr.initial_state()
        s2 = srr.initial_state()
        assert srr.select(s1) == srr.select(s2)
        # after identical updates states stay identical
        s1 = srr.update(s1, 300)
        s2 = srr.update(s2, 300)
        assert s1 == s2
