"""The canonical marker wire codec (one encoder for every transport)."""

import random

import pytest

from repro.core.markers import (
    MARKER_CODEC_VERSION,
    MARKER_WIRE_BYTES,
    MAX_SACK_BLOCKS_WIRE,
    MarkerDecodeError,
    attach_sack,
    decode_marker,
    encode_marker,
    marker_wire_size,
    piggybacked_credit,
    piggybacked_sack,
)
from repro.core.packet import MarkerPacket, Packet, SackInfo


class TestRoundTrip:
    def test_plain_marker(self):
        marker = MarkerPacket(channel=3, round_number=17, deficit=412.5)
        wire = encode_marker(marker)
        assert len(wire) == MARKER_WIRE_BYTES
        back = decode_marker(wire)
        assert (back.channel, back.round_number, back.deficit) == (3, 17, 412.5)
        assert back.credit is None

    def test_credit_marker(self):
        marker = MarkerPacket(
            channel=0, round_number=0, deficit=0.0, credit=9
        )
        back = decode_marker(encode_marker(marker))
        assert back.credit == 9

    def test_zero_credit_survives(self):
        """credit=0 is a real advertisement, distinct from 'no credit'."""
        marker = MarkerPacket(
            channel=1, round_number=2, deficit=3.0, credit=0
        )
        back = decode_marker(encode_marker(marker))
        assert back.credit == 0

    def test_wire_bytes_match_default_marker_size(self):
        """The simulated marker size is the real encoded size, so wire
        timing in the simulator matches what a live codec would cost."""
        assert MARKER_WIRE_BYTES == 32
        assert MarkerPacket(channel=0, round_number=0, deficit=0.0).size == 32


class TestSackExtension:
    def make(self, cum, *blocks):
        marker = MarkerPacket(
            channel=1, round_number=4, deficit=12.0, credit=7
        )
        attach_sack(marker, SackInfo(cum_ack=cum, blocks=tuple(blocks)))
        return marker

    def test_cum_only_roundtrip(self):
        marker = self.make(19)
        wire = encode_marker(marker)
        assert len(wire) == marker_wire_size(marker.sack) == marker.size
        back = decode_marker(wire)
        assert back.sack == SackInfo(cum_ack=19)
        assert back.credit == 7  # credit and SACK coexist

    def test_blocks_roundtrip(self):
        marker = self.make(10, (12, 15), (40, 41))
        back = decode_marker(encode_marker(marker))
        assert back.sack == SackInfo(
            cum_ack=10, blocks=((12, 15), (40, 41))
        )
        assert back.size == len(encode_marker(marker))

    def test_full_marker_stays_control_sized(self):
        """SACK-bearing markers must stay under the 64-byte control
        threshold of the fault layer (marker_loss targeting)."""
        marker = self.make(10, (12, 15), (40, 41))
        assert len(encode_marker(marker)) == 57 <= 64

    def test_attach_sack_truncates_to_wire_budget(self):
        marker = MarkerPacket(channel=0, round_number=0, deficit=0.0)
        attach_sack(
            marker,
            SackInfo(cum_ack=0, blocks=((2, 3), (5, 6), (8, 9))),
        )
        assert len(marker.sack.blocks) == MAX_SACK_BLOCKS_WIRE
        # Truncation keeps the leading blocks — the receiver reports
        # freshest-first, so these are the most informative ones.
        assert marker.sack.blocks == ((2, 3), (5, 6))
        decode_marker(encode_marker(marker))  # still encodable

    def test_encode_rejects_oversized_sack(self):
        marker = MarkerPacket(channel=0, round_number=0, deficit=0.0)
        marker.sack = SackInfo(
            cum_ack=0, blocks=((2, 3), (5, 6), (8, 9))
        )
        with pytest.raises(ValueError, match="at most"):
            encode_marker(marker)


class TestRejection:
    def test_wrong_length(self):
        with pytest.raises(ValueError, match="32 bytes"):
            decode_marker(b"\x00" * 31)

    def test_typed_error_is_a_value_error(self):
        """Pre-existing except ValueError handlers keep working."""
        assert issubclass(MarkerDecodeError, ValueError)
        with pytest.raises(MarkerDecodeError):
            decode_marker(b"")

    def test_oversized_frame_without_sack_flag(self):
        wire = encode_marker(
            MarkerPacket(channel=0, round_number=0, deficit=0.0)
        )
        with pytest.raises(MarkerDecodeError, match="32 bytes"):
            decode_marker(wire + b"\x00")

    def test_truncated_sack_extension(self):
        marker = MarkerPacket(channel=0, round_number=0, deficit=0.0)
        attach_sack(marker, SackInfo(cum_ack=5, blocks=((7, 9),)))
        wire = encode_marker(marker)
        for cut in range(MARKER_WIRE_BYTES, len(wire)):
            with pytest.raises(MarkerDecodeError):
                decode_marker(wire[:cut])

    def test_sack_block_count_mismatch(self):
        marker = MarkerPacket(channel=0, round_number=0, deficit=0.0)
        attach_sack(marker, SackInfo(cum_ack=5, blocks=((7, 9),)))
        wire = bytearray(encode_marker(marker))
        wire[MARKER_WIRE_BYTES + 8] = 2  # claim two blocks, carry one
        with pytest.raises(MarkerDecodeError, match="blocks"):
            decode_marker(bytes(wire))

    def test_zero_length_sack_block(self):
        marker = MarkerPacket(channel=0, round_number=0, deficit=0.0)
        attach_sack(marker, SackInfo(cum_ack=5, blocks=((7, 9),)))
        wire = bytearray(encode_marker(marker))
        wire[-4:] = b"\x00\x00\x00\x00"  # length field of the only block
        with pytest.raises(MarkerDecodeError):
            decode_marker(bytes(wire))


class TestFuzz:
    def test_random_bytes_never_escape_the_typed_error(self):
        """decode_marker on arbitrary input either parses or raises
        MarkerDecodeError — never struct.error or a crash."""
        rng = random.Random(0xC0DEC)
        for _ in range(2000):
            blob = rng.randbytes(rng.randrange(0, 80))
            try:
                decode_marker(blob)
            except MarkerDecodeError:
                pass

    def test_corrupted_valid_frames(self):
        """Every single-byte corruption of a real frame is either still
        decodable or rejected with the typed error."""
        rng = random.Random(7)
        marker = MarkerPacket(
            channel=2, round_number=9, deficit=100.0, credit=3
        )
        attach_sack(marker, SackInfo(cum_ack=4, blocks=((6, 8), (11, 12))))
        wire = encode_marker(marker)
        for position in range(len(wire)):
            corrupted = bytearray(wire)
            corrupted[position] ^= 1 << rng.randrange(8)
            try:
                decode_marker(bytes(corrupted))
            except MarkerDecodeError:
                pass

    def test_bad_magic(self):
        wire = bytearray(
            encode_marker(MarkerPacket(channel=0, round_number=0, deficit=0.0))
        )
        wire[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decode_marker(bytes(wire))

    def test_bad_version(self):
        wire = bytearray(
            encode_marker(MarkerPacket(channel=0, round_number=0, deficit=0.0))
        )
        wire[2] = MARKER_CODEC_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            decode_marker(bytes(wire))

    def test_reserved_fec_flag_rejected(self):
        """0x04 is reserved for FEC metadata: no payload format is defined
        at codec version 1, so a frame claiming it must not half-parse."""
        wire = bytearray(
            encode_marker(MarkerPacket(channel=0, round_number=0, deficit=0.0))
        )
        wire[3] |= 0x04
        with pytest.raises(MarkerDecodeError, match="FEC"):
            decode_marker(bytes(wire))

    def test_unknown_flag_bits_rejected(self):
        """Every flag bit outside the known mask (credit | sack | fec) is
        a hard decode error, alone or combined with valid bits."""
        marker = MarkerPacket(channel=1, round_number=2, deficit=3.0, credit=4)
        wire = bytearray(encode_marker(marker))
        base_flags = wire[3]
        for bit in range(3, 8):
            corrupted = bytearray(wire)
            corrupted[3] = base_flags | (1 << bit)
            with pytest.raises(MarkerDecodeError):
                decode_marker(bytes(corrupted))

    def test_flag_byte_fuzz_never_escapes_typed_error(self):
        """All 256 flag-byte values either decode or raise the typed
        error; the ones that decode carry only known flag bits."""
        marker = MarkerPacket(channel=0, round_number=5, deficit=1.0)
        attach_sack(marker, SackInfo(cum_ack=4, blocks=((6, 8),)))
        wire = bytearray(encode_marker(marker))
        for flags in range(256):
            corrupted = bytearray(wire)
            corrupted[3] = flags
            try:
                decode_marker(bytes(corrupted))
            except MarkerDecodeError:
                continue
            assert flags & ~0x07 == 0
            assert not flags & 0x04


class TestPiggyback:
    def test_data_packet_carries_nothing(self):
        assert piggybacked_credit(Packet(size=100, seq=0)) is None

    def test_creditless_marker_carries_nothing(self):
        marker = MarkerPacket(channel=0, round_number=1, deficit=2.0)
        assert piggybacked_credit(marker) is None

    def test_credit_marker_yields_channel_and_credit(self):
        marker = MarkerPacket(channel=2, round_number=1, deficit=0.0, credit=5)
        assert piggybacked_credit(marker) == (2, 5)

    def test_sackless_marker_carries_no_sack(self):
        marker = MarkerPacket(channel=0, round_number=1, deficit=2.0)
        assert piggybacked_sack(marker) is None
        assert piggybacked_sack(Packet(size=100, seq=0)) is None

    def test_sack_marker_yields_sack(self):
        marker = MarkerPacket(channel=0, round_number=1, deficit=2.0)
        info = SackInfo(cum_ack=3, blocks=((5, 7),))
        attach_sack(marker, info)
        assert piggybacked_sack(marker) == info
