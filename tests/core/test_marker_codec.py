"""The canonical marker wire codec (one encoder for every transport)."""

import pytest

from repro.core.markers import (
    MARKER_CODEC_VERSION,
    MARKER_WIRE_BYTES,
    decode_marker,
    encode_marker,
    piggybacked_credit,
)
from repro.core.packet import MarkerPacket, Packet


class TestRoundTrip:
    def test_plain_marker(self):
        marker = MarkerPacket(channel=3, round_number=17, deficit=412.5)
        wire = encode_marker(marker)
        assert len(wire) == MARKER_WIRE_BYTES
        back = decode_marker(wire)
        assert (back.channel, back.round_number, back.deficit) == (3, 17, 412.5)
        assert back.credit is None

    def test_credit_marker(self):
        marker = MarkerPacket(
            channel=0, round_number=0, deficit=0.0, credit=9
        )
        back = decode_marker(encode_marker(marker))
        assert back.credit == 9

    def test_zero_credit_survives(self):
        """credit=0 is a real advertisement, distinct from 'no credit'."""
        marker = MarkerPacket(
            channel=1, round_number=2, deficit=3.0, credit=0
        )
        back = decode_marker(encode_marker(marker))
        assert back.credit == 0

    def test_wire_bytes_match_default_marker_size(self):
        """The simulated marker size is the real encoded size, so wire
        timing in the simulator matches what a live codec would cost."""
        assert MARKER_WIRE_BYTES == 32
        assert MarkerPacket(channel=0, round_number=0, deficit=0.0).size == 32


class TestRejection:
    def test_wrong_length(self):
        with pytest.raises(ValueError, match="32 bytes"):
            decode_marker(b"\x00" * 31)

    def test_bad_magic(self):
        wire = bytearray(
            encode_marker(MarkerPacket(channel=0, round_number=0, deficit=0.0))
        )
        wire[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decode_marker(bytes(wire))

    def test_bad_version(self):
        wire = bytearray(
            encode_marker(MarkerPacket(channel=0, round_number=0, deficit=0.0))
        )
        wire[2] = MARKER_CODEC_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            decode_marker(bytes(wire))


class TestPiggyback:
    def test_data_packet_carries_nothing(self):
        assert piggybacked_credit(Packet(size=100, seq=0)) is None

    def test_creditless_marker_carries_nothing(self):
        marker = MarkerPacket(channel=0, round_number=1, deficit=2.0)
        assert piggybacked_credit(marker) is None

    def test_credit_marker_yields_channel_and_credit(self):
        marker = MarkerPacket(channel=2, round_number=1, deficit=0.0, credit=5)
        assert piggybacked_credit(marker) == (2, 5)
