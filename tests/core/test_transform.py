"""Unit tests for the CFQ → load-sharing transformation (Theorem 3.1)."""

import pytest

from repro.core.packet import Packet
from repro.core.schemes import SeededRandomFQ
from repro.core.srr import SRR, make_grr, make_rr
from repro.core.transform import (
    TransformedLoadSharer,
    bytes_per_channel,
    stripe_sequence,
    verify_reverse_correspondence,
)
from tests.conftest import make_packets, random_sizes


class TestTransformedLoadSharer:
    def test_paper_example_striping(self):
        """Figure 3: striping the FQ output re-creates the original queues."""
        packets = make_packets([550, 200, 400, 150, 300, 400], labels="adebcf")
        sharer = TransformedLoadSharer(SRR([500, 500]))
        channels = stripe_sequence(sharer, packets)
        assert [p.label for p in channels[0]] == ["a", "b", "c"]
        assert [p.label for p in channels[1]] == ["d", "e", "f"]

    def test_choose_is_stable_until_notify(self):
        sharer = TransformedLoadSharer(SRR([500, 500]))
        packet = Packet(100)
        assert sharer.choose(packet) == sharer.choose(packet)

    def test_notify_wrong_channel_rejected(self):
        sharer = TransformedLoadSharer(SRR([500, 500]))
        packet = Packet(100)
        expected = sharer.choose(packet)
        with pytest.raises(ValueError):
            sharer.notify_sent((expected + 1) % 2, packet)

    def test_reset_restores_initial_behaviour(self):
        sharer = TransformedLoadSharer(SRR([500, 500]))
        packets = make_packets([400, 400, 400])
        first = stripe_sequence(sharer, packets)
        sharer.reset()
        second = stripe_sequence(sharer, packets)
        assert [[p.uid for p in c] for c in first] == [
            [p.uid for p in c] for c in second
        ]

    def test_simulatable_flag(self):
        assert TransformedLoadSharer(SRR([500, 500])).simulatable is True

    def test_capabilities_inherited(self):
        sharer = TransformedLoadSharer(make_rr(2))
        assert sharer.capabilities.load_sharing == "poor"


class TestReverseCorrespondence:
    """Theorem 3.1's proof construction, executed."""

    @pytest.mark.parametrize("quanta", [[500, 500], [1500, 2070], [300, 700, 500]])
    def test_srr(self, quanta):
        packets = make_packets(random_sizes(200, seed=1))
        assert verify_reverse_correspondence(SRR(quanta), packets)

    def test_rr(self):
        packets = make_packets(random_sizes(100, seed=2))
        assert verify_reverse_correspondence(make_rr(3), packets)

    def test_grr(self):
        packets = make_packets(random_sizes(100, seed=3))
        assert verify_reverse_correspondence(make_grr([3, 1, 2]), packets)

    def test_seeded_random_fq(self):
        """Even a randomized CFQ is reversible when the PRNG state is part
        of the algorithm state."""
        packets = make_packets(random_sizes(150, seed=4))
        assert verify_reverse_correspondence(SeededRandomFQ(3, seed=9), packets)

    def test_empty_input(self):
        assert verify_reverse_correspondence(SRR([500, 500]), [])


class TestBytesPerChannel:
    def test_totals(self):
        packets = make_packets([100, 200, 300, 400])
        sharer = TransformedLoadSharer(make_rr(2))
        channels = stripe_sequence(sharer, packets)
        totals = bytes_per_channel(channels)
        assert sum(totals) == 1000
        assert totals == [400, 600]  # RR: 100+300 / 200+400

    def test_srr_balances_adversarial_alternation(self):
        """The paper's GRR adversary: big/small alternating.  SRR stays
        balanced; RR does not."""
        sizes = [1000, 200] * 100
        packets = make_packets(sizes)
        srr_channels = stripe_sequence(
            TransformedLoadSharer(SRR([1500, 1500])), packets
        )
        rr_channels = stripe_sequence(
            TransformedLoadSharer(make_rr(2)), packets
        )
        srr_totals = bytes_per_channel(srr_channels)
        rr_totals = bytes_per_channel(rr_channels)
        assert abs(srr_totals[0] - srr_totals[1]) <= 1000 + 2 * 1500
        assert abs(rr_totals[0] - rr_totals[1]) == pytest.approx(80000)
