"""Degenerate and boundary configurations across the core stack."""


from repro.core.markers import SRRReceiver
from repro.core.packet import Packet
from repro.core.resequencer import Resequencer
from repro.core.srr import SRR, make_rr
from repro.core.striper import ListPort, MarkerPolicy, Striper
from repro.core.transform import (
    TransformedLoadSharer,
    stripe_sequence,
    verify_reverse_correspondence,
)
from tests.conftest import make_packets, random_sizes


class TestSingleChannel:
    def test_striping_is_passthrough(self):
        packets = make_packets(random_sizes(50, seed=51))
        channels = stripe_sequence(
            TransformedLoadSharer(SRR([1000.0])), packets
        )
        assert [p.uid for p in channels[0]] == [p.uid for p in packets]

    def test_resequencer_is_passthrough(self):
        receiver = Resequencer(SRR([1000.0]))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        for packet in make_packets(random_sizes(30, seed=52)):
            receiver.push(0, packet)
        assert delivered == list(range(30))

    def test_marker_receiver_single_channel(self):
        receiver = SRRReceiver(SRR([1000.0]))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        for i in range(20):
            receiver.push(0, Packet(500, seq=i))
        assert delivered == list(range(20))

    def test_reverse_correspondence_trivial(self):
        packets = make_packets(random_sizes(40, seed=53))
        assert verify_reverse_correspondence(SRR([777.0]), packets)

    def test_rr_of_one(self):
        rr = make_rr(1)
        state = rr.initial_state()
        for _ in range(5):
            assert rr.select(state) == 0
            state = rr.update(state, 100)
        assert state.round_number == 6  # every packet is a full round


class TestExtremePacketSizes:
    def test_one_byte_packets(self):
        packets = make_packets([1] * 100)
        assert verify_reverse_correspondence(SRR([1500.0, 1500.0]), packets)

    def test_giant_packets_tiny_quanta(self):
        """Packets 100x the quantum: deep overdraw everywhere, still
        correct and still reversible."""
        packets = make_packets([10_000] * 30)
        assert verify_reverse_correspondence(SRR([100.0, 100.0]), packets)

    def test_giant_packet_roundtrip_with_markers(self):
        algorithm = SRR([100.0, 100.0])
        ports = [ListPort(), ListPort()]
        striper = Striper(
            TransformedLoadSharer(algorithm), ports,
            MarkerPolicy(interval_rounds=1, initial_markers=False),
        )
        packets = make_packets([10_000, 50, 10_000, 50])
        for packet in packets:
            striper.submit(packet)
        receiver = SRRReceiver(SRR([100.0, 100.0]))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        for index, port in enumerate(ports):
            for packet in port.sent:
                receiver.push(index, packet)
        assert delivered == [0, 1, 2, 3]
        assert receiver.stats.deep_overdraw_skips > 0


class TestManyChannels:
    def test_sixty_four_channels_fifo(self):
        n = 64
        algorithm = SRR([1500.0] * n)
        packets = make_packets(random_sizes(640, seed=54))
        channels = stripe_sequence(TransformedLoadSharer(algorithm), packets)
        receiver = Resequencer(SRR([1500.0] * n))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)
        # reverse channel-major: worst skew across 64 channels
        for index in reversed(range(n)):
            for packet in channels[index]:
                receiver.push(index, packet)
        assert delivered == [p.seq for p in packets]

    def test_empty_stream(self):
        striper = Striper(
            TransformedLoadSharer(SRR([100.0, 100.0])),
            [ListPort(), ListPort()],
        )
        assert striper.pump() == 0
        assert striper.backlog == 0
