"""Unit tests for the systematic erasure codecs in :mod:`repro.core.fec`.

The contract every FEC claim in the transport layer rests on: for any
group of up to ``k`` equal-length shards, encoding ``m`` parity shards
lets the decoder rebuild *any* combination of at most ``m`` missing data
shards bit-exactly, using whichever parity shards survive.
"""

import itertools
import random

import pytest

from repro.core.fec import (
    FecDecodeError,
    GF256Codec,
    XorCodec,
    fec_numpy_available,
    gf_div,
    gf_inv,
    gf_mul,
    make_codec,
)

RNG = random.Random(20260808)


def _shards(count, length, rng=RNG):
    return [bytes(rng.randrange(256) for _ in range(length)) for _ in range(count)]


# --------------------------------------------------------------------- #
# field arithmetic


def test_gf_multiplicative_inverse_over_entire_field():
    for a in range(1, 256):
        assert gf_mul(a, gf_inv(a)) == 1
        assert gf_div(a, a) == 1


def test_gf_mul_identity_and_zero():
    for a in range(256):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0


def test_gf_inv_of_zero_rejected():
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


def test_gf_mul_distributes_over_xor():
    rng = random.Random(7)
    for _ in range(200):
        a, b, c = rng.randrange(256), rng.randrange(256), rng.randrange(256)
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


# --------------------------------------------------------------------- #
# constructor validation


@pytest.mark.parametrize("k,m", [(0, 1), (1, 0), (-1, 2), (255, 2)])
def test_invalid_geometry_rejected(k, m):
    with pytest.raises(ValueError):
        make_codec(k, m)


def test_unequal_shard_lengths_rejected():
    codec = make_codec(3, 2)
    with pytest.raises(ValueError):
        codec.encode([b"aa", b"bbb", b"cc"])


def test_too_many_shards_rejected():
    codec = make_codec(3, 2)
    with pytest.raises(ValueError):
        codec.encode(_shards(4, 8))


# --------------------------------------------------------------------- #
# exhaustive erasure recovery

GEOMETRIES = [(1, 1), (2, 1), (3, 2), (5, 3), (6, 2), (6, 3)]


@pytest.mark.parametrize("k,m", GEOMETRIES)
def test_every_erasure_pattern_recovers_bit_exact(k, m):
    """All data-erasure patterns of size <= m decode, for all parity
    survivor subsets large enough to cover them."""
    codec = make_codec(k, m)
    shards = _shards(k, 64)
    parity = codec.encode(shards)
    for n_lost in range(1, m + 1):
        for lost in itertools.combinations(range(k), n_lost):
            for kept_parity in itertools.combinations(range(m), n_lost):
                data = [
                    None if i in lost else shards[i] for i in range(k)
                ]
                par = [
                    parity[j] if j in kept_parity else None for j in range(m)
                ]
                decoded = codec.decode(data, par)
                assert decoded == shards, (
                    f"k={k} m={m} lost={lost} parity_kept={kept_parity}"
                )


@pytest.mark.parametrize("k,m", GEOMETRIES)
def test_short_group_recovers(k, m):
    """Groups sealed short (k' < k) use the matrix's first k' columns."""
    if k == 1:
        pytest.skip("no shorter group exists")
    codec = make_codec(k, m)
    shards = _shards(k - 1, 32)
    parity = codec.encode(shards)
    data = [None] + shards[1:]
    assert codec.decode(data, parity) == shards


def test_overload_raises_fec_decode_error():
    codec = make_codec(4, 2)
    shards = _shards(4, 16)
    parity = codec.encode(shards)
    data = [None, None, None, shards[3]]
    with pytest.raises(FecDecodeError):
        codec.decode(data, parity)
    # ... and losing parity tightens the bound further.
    data = [None, None] + shards[2:]
    with pytest.raises(FecDecodeError):
        codec.decode(data, [parity[0], None])


def test_no_erasures_is_identity():
    codec = make_codec(4, 2)
    shards = _shards(4, 16)
    parity = codec.encode(shards)
    assert codec.decode(list(shards), parity) == shards


def test_xor_codec_selected_for_single_parity():
    assert isinstance(make_codec(5, 1), XorCodec)
    assert isinstance(make_codec(5, 2), GF256Codec)


def test_xor_parity_is_plain_xor():
    codec = make_codec(3, 1)
    shards = [b"\x0f\x00", b"\xf0\x01", b"\x33\x02"]
    (parity,) = codec.encode(shards)
    assert parity == bytes(a ^ b ^ c for a, b, c in zip(*shards))


def test_stats_count_operations():
    codec = make_codec(3, 2)
    shards = _shards(3, 8)
    parity = codec.encode(shards)
    codec.decode([None] + shards[1:], parity)
    stats = codec.stats()
    assert stats["encodes"] == 1
    assert stats["decodes"] == 1


# --------------------------------------------------------------------- #
# numpy parity (bit-exactness with the scalar reference)

needs_numpy = pytest.mark.skipif(
    not fec_numpy_available(), reason="numpy not installed"
)


@needs_numpy
@pytest.mark.parametrize("k,m", [(3, 1), (4, 2), (6, 3)])
def test_numpy_codec_bit_exact_with_scalar(k, m):
    scalar = make_codec(k, m, numpy=False)
    vector = make_codec(k, m, numpy=True)
    # Over the vector threshold so the numpy path actually runs.
    shards = _shards(k, 256)
    assert vector.encode(shards) == scalar.encode(shards)
    parity = scalar.encode(shards)
    for lost in itertools.combinations(range(k), min(m, k)):
        data = [None if i in lost else shards[i] for i in range(k)]
        assert vector.decode(data, list(parity)) == scalar.decode(
            data, list(parity)
        )
    assert vector.vector_batches > 0


@needs_numpy
def test_numpy_codec_falls_back_below_min_batch():
    vector = make_codec(4, 2, numpy=True)
    shards = _shards(4, 8)  # far below the 64-byte vector threshold
    parity = vector.encode(shards)
    assert vector.scalar_batches > 0
    scalar = make_codec(4, 2, numpy=False)
    assert parity == scalar.encode(shards)


def test_make_codec_auto_never_raises():
    codec = make_codec(4, 2, numpy="auto")
    shards = _shards(4, 128)
    parity = codec.encode(shards)
    assert make_codec(4, 2).decode([None] + shards[1:], parity) == shards
