"""Unit tests for the event-driven sender (backpressure + marker emission)."""

import pytest

from repro.core.packet import Packet, is_marker
from repro.core.srr import SRR, make_rr
from repro.core.striper import ListPort, MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer
from repro.baselines.sqf import ShortestQueueFirst


def make_striper(algorithm, port_limits=None, policy=None):
    n = algorithm.n_channels
    ports = [
        ListPort(limit=port_limits[i] if port_limits else None)
        for i in range(n)
    ]
    striper = Striper(TransformedLoadSharer(algorithm), ports, policy)
    return striper, ports


class TestBackpressure:
    def test_blocks_when_selected_channel_full(self):
        striper, ports = make_striper(make_rr(2), port_limits=[1, 100])
        striper.submit(Packet(100, seq=0))  # ch0 (fills it)
        striper.submit(Packet(100, seq=1))  # ch1
        striper.submit(Packet(100, seq=2))  # ch0 full -> must wait
        striper.submit(Packet(100, seq=3))  # queued behind 2
        assert [p.seq for p in ports[0].sent] == [0]
        assert [p.seq for p in ports[1].sent] == [1]
        assert striper.backlog == 2

    def test_does_not_reorder_around_full_channel(self):
        """Causality: the striper must never skip ahead to another
        channel — that would break receiver simulation."""
        striper, ports = make_striper(make_rr(2), port_limits=[1, 100])
        for i in range(6):
            striper.submit(Packet(100, seq=i))
        # Only 0 (ch0) and 1 (ch1) went out; 2 is stuck on ch0, and
        # crucially 3 (which would go to ch1) did NOT jump the queue.
        assert [p.seq for p in ports[1].sent] == [1]

    def test_pump_resumes_after_space(self):
        striper, ports = make_striper(make_rr(2), port_limits=[1, 100])
        for i in range(4):
            striper.submit(Packet(100, seq=i))
        ports[0].limit = 10  # space appears
        sent = striper.pump()
        assert sent == 2
        assert striper.backlog == 0
        assert [p.seq for p in ports[0].sent] == [0, 2]
        assert [p.seq for p in ports[1].sent] == [1, 3]

    def test_can_send_now(self):
        striper, ports = make_striper(make_rr(2), port_limits=[1, 1])
        assert striper.can_send_now() is False  # empty input queue
        striper.submit(Packet(100, seq=0))
        striper.submit(Packet(100, seq=1))
        striper.submit(Packet(100, seq=2))
        assert striper.can_send_now() is False  # ch0 full

    def test_counters(self):
        striper, ports = make_striper(make_rr(2))
        for i in range(5):
            striper.submit(Packet(100, seq=i))
        assert striper.packets_sent == 5
        assert striper.bytes_sent == 500


class TestMarkerEmission:
    def test_markers_every_round(self):
        algorithm = SRR([100.0, 100.0])
        striper, ports = make_striper(
            algorithm,
            policy=MarkerPolicy(interval_rounds=1, initial_markers=False),
        )
        for i in range(10):
            striper.submit(Packet(100, seq=i))
        # 10 unit packets exhaust a quantum each, so the pointer wraps
        # into rounds 2..6: 5 boundary crossings, each emitting one marker
        # per channel.
        markers0 = [p for p in ports[0].sent if is_marker(p)]
        markers1 = [p for p in ports[1].sent if is_marker(p)]
        assert len(markers0) == len(markers1) == 5
        assert striper.markers_sent == 10

    def test_interval_thins_markers(self):
        algorithm = SRR([100.0, 100.0])
        striper, ports = make_striper(
            algorithm,
            policy=MarkerPolicy(interval_rounds=3, initial_markers=False),
        )
        for i in range(20):
            striper.submit(Packet(100, seq=i))
        markers0 = [p for p in ports[0].sent if is_marker(p)]
        assert len(markers0) == 3  # rounds 4, 7, 10 boundaries

    def test_initial_markers(self):
        algorithm = SRR([100.0, 100.0])
        striper, ports = make_striper(
            algorithm,
            policy=MarkerPolicy(interval_rounds=5, initial_markers=True),
        )
        striper.submit(Packet(100, seq=0))
        assert is_marker(ports[0].sent[0])
        assert is_marker(ports[1].sent[0])

    def test_marker_contents_match_implicit_numbers(self):
        algorithm = SRR([500.0, 500.0])
        striper, ports = make_striper(
            algorithm,
            policy=MarkerPolicy(interval_rounds=1, initial_markers=False),
        )
        for size in [300, 300, 600, 200, 500, 400, 100]:
            striper.submit(Packet(size))
        for port in ports:
            for packet in port.sent:
                if is_marker(packet):
                    assert packet.round_number >= 1
                    assert packet.deficit > 0

    def test_marker_position_mid_round(self):
        algorithm = SRR([100.0, 100.0, 100.0])
        striper, ports = make_striper(
            algorithm,
            policy=MarkerPolicy(
                interval_rounds=1, position=1, initial_markers=False
            ),
        )
        for i in range(9):
            striper.submit(Packet(100, seq=i))
        # Emission happens when the pointer enters channel 1: on channel 0
        # the marker should appear right after channel 0's packet of each
        # round.
        stream0 = ports[0].sent
        assert not is_marker(stream0[0])
        assert is_marker(stream0[1])

    def test_force_marker_batch(self):
        algorithm = SRR([100.0, 100.0])
        striper, ports = make_striper(
            algorithm,
            policy=MarkerPolicy(interval_rounds=10, initial_markers=False),
        )
        striper.force_marker_batch()
        assert all(is_marker(port.sent[0]) for port in ports)

    def test_markers_require_srr_family(self):
        sharer = ShortestQueueFirst(2)
        with pytest.raises(ValueError):
            Striper(sharer, [ListPort(), ListPort()], MarkerPolicy())

    def test_force_marker_without_policy_rejected(self):
        striper, _ = make_striper(SRR([100.0, 100.0]))
        with pytest.raises(RuntimeError):
            striper.force_marker_batch()

    def test_markers_bypass_full_queue(self):
        algorithm = SRR([100.0, 100.0])
        ports = [ListPort(limit=1), ListPort(limit=1)]
        striper = Striper(
            TransformedLoadSharer(algorithm), ports,
            MarkerPolicy(interval_rounds=1, initial_markers=True),
        )
        striper.submit(Packet(100, seq=0))
        # The forced initial marker got through despite limit=1; the data
        # packet now honours backpressure and waits.
        assert is_marker(ports[0].sent[0])
        assert striper.backlog == 1
        ports[0].limit = 10
        striper.pump()
        assert [p.seq for p in ports[0].sent if not is_marker(p)] == [0]


class TestValidation:
    def test_port_count_mismatch(self):
        with pytest.raises(ValueError):
            Striper(TransformedLoadSharer(make_rr(2)), [ListPort()])

    def test_bad_policy_values(self):
        with pytest.raises(ValueError):
            MarkerPolicy(interval_rounds=-1)
        with pytest.raises(ValueError):
            MarkerPolicy(position=-2)

    def test_non_causal_sharer_works_without_markers(self):
        sharer = ShortestQueueFirst(2)
        ports = [ListPort(), ListPort()]
        striper = Striper(sharer, ports)
        for i in range(10):
            striper.submit(Packet(100, seq=i))
        assert len(ports[0].sent) + len(ports[1].sent) == 10


class TestTracing:
    def test_send_and_marker_events(self):
        from repro.sim.trace import Tracer

        tracer = Tracer()
        algorithm = SRR([100.0, 100.0])
        striper = Striper(
            TransformedLoadSharer(algorithm),
            [ListPort(), ListPort()],
            MarkerPolicy(interval_rounds=1, initial_markers=False),
            tracer=tracer,
        )
        for i in range(6):
            striper.submit(Packet(100, seq=i))
        assert tracer.count(kind="send") == 6
        assert tracer.count(kind="marker") > 0
        first = next(tracer.filter(kind="send"))
        assert first.detail["channel"] == 0
