"""Integration tests: full strIPe + TCP stacks over simulated links."""

import random


from repro.experiments.topology import (
    R_ATM_IP,
    R_ETH_IP,
    SCHEME_RR,
    SCHEME_SRR,
    CpuModel,
    TestbedConfig,
    build_testbed,
    measure_tcp_goodput,
)
from repro.net.stripe import RESEQ_MARKER, RESEQ_NONE
from repro.sim.engine import Simulator


class TestSingleInterfaceBaselines:
    def test_ethernet_goodput_reasonable(self):
        result = measure_tcp_goodput(
            TestbedConfig(stripe_scheme=None), R_ETH_IP,
            duration_s=1.5, warmup_s=0.5,
        )
        assert 7.0 < result["goodput_mbps"] < 10.0

    def test_atm_goodput_tracks_pvc_rate(self):
        slow = measure_tcp_goodput(
            TestbedConfig(atm_mbps=5.0, stripe_scheme=None), R_ATM_IP,
            duration_s=1.5, warmup_s=0.5,
        )["goodput_mbps"]
        fast = measure_tcp_goodput(
            TestbedConfig(atm_mbps=15.0, stripe_scheme=None), R_ATM_IP,
            duration_s=1.5, warmup_s=0.5,
        )["goodput_mbps"]
        assert fast > slow * 2


class TestStripedTcp:
    def test_striping_beats_single_interface(self):
        single = measure_tcp_goodput(
            TestbedConfig(stripe_scheme=None), R_ETH_IP,
            duration_s=1.5, warmup_s=0.5,
        )["goodput_mbps"]
        striped = measure_tcp_goodput(
            TestbedConfig(stripe_scheme=SCHEME_SRR), R_ETH_IP,
            duration_s=1.5, warmup_s=0.5,
        )["goodput_mbps"]
        assert striped > single * 1.5

    def test_no_reordering_reaches_tcp_with_logical_reception(self):
        sim = Simulator()
        testbed = build_testbed(
            sim, TestbedConfig(stripe_scheme=SCHEME_SRR,
                               resequencing=RESEQ_MARKER)
        )
        rng = random.Random(3)
        tx, rx = testbed.bulk_pair(
            R_ETH_IP, segment_size_fn=lambda: rng.choice([200, 1460])
        )
        tx.start()
        sim.run(until=1.0)
        # dupACK-triggered reordering events at the receiver stem only
        # from genuine drops (striper input queue), not from skew
        assert rx.bytes_delivered > 0
        assert rx.reorder_events <= tx.retransmits

    def test_rr_capped_by_slow_link(self):
        fast_pvc = measure_tcp_goodput(
            TestbedConfig(atm_mbps=23.8, stripe_scheme=SCHEME_RR),
            R_ETH_IP, duration_s=1.5, warmup_s=0.5,
        )["goodput_mbps"]
        # RR at a 23.8 Mbps PVC cannot exceed ~2x the Ethernet goodput.
        assert fast_pvc < 2 * 9.7

    def test_reseq_none_suffers(self):
        with_lr = measure_tcp_goodput(
            TestbedConfig(stripe_scheme=SCHEME_SRR,
                          resequencing=RESEQ_MARKER),
            R_ETH_IP, duration_s=1.5, warmup_s=0.5,
        )["goodput_mbps"]
        without_lr = measure_tcp_goodput(
            TestbedConfig(stripe_scheme=SCHEME_SRR,
                          resequencing=RESEQ_NONE),
            R_ETH_IP, duration_s=1.5, warmup_s=0.5,
        )["goodput_mbps"]
        assert without_lr < with_lr

    def test_cpu_model_caps_striped_throughput(self):
        uncapped = measure_tcp_goodput(
            TestbedConfig(atm_mbps=23.8, stripe_scheme=SCHEME_SRR, cpu=None),
            R_ETH_IP, duration_s=1.5, warmup_s=0.5,
        )["goodput_mbps"]
        capped = measure_tcp_goodput(
            TestbedConfig(atm_mbps=23.8, stripe_scheme=SCHEME_SRR,
                          cpu=CpuModel()),
            R_ETH_IP, duration_s=1.5, warmup_s=0.5,
        )["goodput_mbps"]
        assert capped < uncapped - 2.0


class TestBidirectionalStripe:
    def test_reverse_path_carries_acks(self):
        """TCP over strIPe requires the reverse (ACK) path through the
        receiver's own stripe interface to work."""
        sim = Simulator()
        testbed = build_testbed(
            sim, TestbedConfig(stripe_scheme=SCHEME_SRR)
        )
        tx, rx = testbed.bulk_pair(R_ETH_IP)
        tx.start()
        sim.run(until=1.0)
        assert rx.acks_sent > 10
        assert tx.snd_una > 0  # ACKs actually came back
