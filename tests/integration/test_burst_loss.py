"""Burst-error channels (section 2's model note, exercised end to end).

"Channels that occasionally deviate from FIFO delivery can also be modeled
as having burst errors."  These tests run the striped-UDP stack over
Gilbert–Elliott burst-loss channels and check the same recovery guarantees
as under i.i.d. loss.
"""

import random

from repro.analysis.reorder import analyze_order
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator
from repro.sim.loss import GilbertElliottLoss


def install_burst_loss(testbed, p_g2b=0.01, p_b2g=0.15, seed=0):
    """Swap the harness's Bernoulli models for Gilbert-Elliott ones."""
    models = []
    for index, link in enumerate(testbed.links):
        model = GilbertElliottLoss(
            p_g2b=p_g2b, p_b2g=p_b2g,
            rng=random.Random(seed * 101 + index),
        )
        link.ab.loss_model = model
        models.append(model)
    return models


class TestBurstLossRecovery:
    def test_quasi_fifo_through_bursts(self):
        sim = Simulator()
        testbed = build_socket_testbed(
            sim, SocketTestbedConfig(marker_interval_rounds=1)
        )
        install_burst_loss(testbed)
        sim.run(until=2.0)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        assert report.missing > 20           # bursts really bit
        assert report.delivered > 1000
        # reordering bounded to desync windows, not persistent
        assert report.out_of_order_fraction < 0.25

    def test_fifo_restored_after_bursts_stop(self):
        sim = Simulator()
        testbed = build_socket_testbed(
            sim, SocketTestbedConfig(marker_interval_rounds=1)
        )
        models = install_burst_loss(testbed, p_g2b=0.03)

        def stop():
            for model in models:
                model.p_g2b = 0.0
                model.p_bad = 0.0
                model.reset()

        sim.schedule_at(1.0, stop)
        sim.run(until=2.5)
        tail = [d.seq for d in testbed.deliveries_after(1.2)]
        assert len(tail) > 500
        assert tail == sorted(tail)

    def test_long_burst_equivalent_to_short_outage(self):
        """A deep burst takes out a contiguous stretch of one channel; the
        next marker after the burst restores order in one shot."""
        sim = Simulator()
        testbed = build_socket_testbed(
            sim, SocketTestbedConfig(marker_interval_rounds=1)
        )
        # A single long forced outage on channel 0: p=1 for 100 ms.
        model = testbed.loss_models[0]
        sim.schedule_at(0.5, lambda: setattr(model, "p", 1.0))
        sim.schedule_at(0.6, lambda: setattr(model, "p", 0.0))
        sim.run(until=1.5)
        tail = [d.seq for d in testbed.deliveries_after(0.7)]
        assert tail == sorted(tail)
        assert testbed.receiver.resequencer.stats.channel_skips > 0
