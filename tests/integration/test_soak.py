"""Soak tests: long runs with randomized fault injection.

Each scenario drives the striped-UDP stack for several simulated seconds
while loss rates flap randomly, then checks the system-level invariants:
conservation (sent = delivered + lost + in flight), eventual FIFO once
conditions stabilize, and bounded receiver buffering.
"""

import random

import pytest

from repro.analysis.reorder import analyze_order
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_flapping_loss_soak(seed):
    """Loss rates change every 200 ms for 3 s, then calm for 1 s."""
    sim = Simulator()
    config = SocketTestbedConfig(
        n_channels=3,
        link_mbps=(10.0,),
        prop_delay_s=(0.5e-3,),
        loss_rates=(0.0,),
        marker_interval_rounds=1,
        seed=seed,
    )
    testbed = build_socket_testbed(sim, config)
    rng = random.Random(seed * 7 + 1)

    def flap():
        if sim.now < 3.0:
            for model in testbed.loss_models:
                model.p = rng.choice([0.0, 0.05, 0.2, 0.5])
            sim.schedule(0.2, flap)
        else:
            for model in testbed.loss_models:
                model.p = 0.0

    sim.schedule(0.0, flap)
    sim.run(until=4.0)

    report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
    # conservation: every sent message is delivered, lost, or in flight
    assert report.delivered + report.missing == testbed.messages_sent
    assert report.duplicates == 0
    # calm tail is perfectly FIFO
    tail = [d.seq for d in testbed.deliveries_after(3.3)]
    assert len(tail) > 500
    assert tail == sorted(tail)
    # buffering stayed bounded (no leak while desynchronized)
    assert testbed.receiver.resequencer.stats.max_buffered < 500


@pytest.mark.parametrize("seed", [0, 1])
def test_alternating_outage_soak(seed):
    """Channels take turns going completely dark; stream always recovers."""
    sim = Simulator()
    config = SocketTestbedConfig(
        n_channels=2,
        link_mbps=(10.0,),
        prop_delay_s=(0.5e-3,),
        loss_rates=(0.0,),
        marker_interval_rounds=1,
        seed=seed,
    )
    testbed = build_socket_testbed(sim, config)

    def outage(channel, start, stop):
        sim.schedule_at(
            start, lambda: setattr(testbed.loss_models[channel], "p", 1.0)
        )
        sim.schedule_at(
            stop, lambda: setattr(testbed.loss_models[channel], "p", 0.0)
        )

    outage(0, 0.5, 0.7)
    outage(1, 1.0, 1.2)
    outage(0, 1.5, 1.7)
    sim.run(until=3.0)

    tail = [d.seq for d in testbed.deliveries_after(2.0)]
    assert len(tail) > 800
    assert tail == sorted(tail)
    report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
    assert report.missing > 0  # outages really happened
    assert report.duplicates == 0
