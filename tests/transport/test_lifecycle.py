"""Channel lifecycle tests: fail -> probe -> revive -> rejoin.

Unit-level coverage of the three lifecycle actors — the receiver-side
:class:`ChannelLifecycleManager` state machine (hold-down, flap damping,
probe gating), the sender-side :class:`SenderHealthMonitor` (queue-stall
watch), and the :class:`ChannelProber` (exponential-backoff probes and
the rejoin RESET) — plus the end-to-end acceptance scenario: a channel
goes dark mid-run, is excluded, probed, and rejoined, and carries its
quantum share again right after the rejoin.
"""

from typing import Any, List, Optional

import pytest

from repro.core.session import ChannelProber, ProbeAckPacket, StripeConfig
from repro.experiments.fault_tolerance import build_session_testbed
from repro.transport.endpoint import (
    ChannelLifecycleManager,
    SenderHealthMonitor,
)


def feed(sim, detector, channel, start, stop, interval=0.02):
    """Schedule periodic arrivals on ``channel`` over ``[start, stop)``."""
    t = start
    while t < stop:
        sim.schedule_at(t, lambda c=channel: detector.note_arrival(c))
        t += interval


class TestChannelLifecycleManager:
    def make(self, sim, **kwargs):
        defaults = dict(
            silence_threshold=0.1,
            check_interval=0.02,
            revival_arrivals=3,
            min_down_time=0.1,
        )
        defaults.update(kwargs)
        mgr = ChannelLifecycleManager(sim, **defaults)
        self.failures: List[int] = []
        self.revivals: List[int] = []
        mgr.bind(2, self.failures.append, on_revival=self.revivals.append)
        return mgr

    def test_states_walk_active_failed_probing_revived(self, sim):
        mgr = self.make(sim)
        feed(sim, mgr, 0, 0.0, 1.0)
        feed(sim, mgr, 1, 0.0, 0.2)
        feed(sim, mgr, 1, 0.5, 1.0)
        sim.run(until=0.45)
        assert mgr.channel_state(1) == mgr.FAILED
        assert self.failures == [1]
        sim.run(until=0.52)
        # Life signs move it to probing before the threshold is met.
        assert mgr.channel_state(1) == mgr.PROBING
        sim.run(until=1.0)
        assert mgr.channel_state(1) == mgr.REVIVED
        assert self.revivals == [1]
        assert mgr.revivals_reported == [1]
        assert mgr.channel_state(0) == mgr.ACTIVE

    def test_hold_down_delays_revival(self, sim):
        mgr = self.make(sim, min_down_time=0.6)
        feed(sim, mgr, 0, 0.0, 1.5)
        feed(sim, mgr, 1, 0.0, 0.2)
        feed(sim, mgr, 1, 0.4, 1.5)
        sim.run(until=0.6)
        # Plenty of life signs, but the hold-down has not elapsed.
        assert mgr.channel_state(1) == mgr.PROBING
        assert self.revivals == []
        sim.run(until=1.5)
        assert mgr.channel_state(1) == mgr.REVIVED

    def test_flap_doubles_hold_down(self, sim):
        mgr = self.make(sim, flap_window=2.0, flap_factor=2.0)
        feed(sim, mgr, 0, 0.0, 2.0)
        feed(sim, mgr, 1, 0.0, 0.2)
        feed(sim, mgr, 1, 0.5, 0.7)  # revive...
        # ...then go dark again immediately: a flap.
        feed(sim, mgr, 1, 1.2, 2.0)
        sim.run(until=1.1)
        assert self.failures == [1, 1]
        assert mgr.flap_counts[1] == 1
        assert mgr.hold_down(1) == pytest.approx(0.2)
        sim.run(until=2.0)
        assert self.revivals == [1, 1]

    def test_flap_hold_down_is_capped(self, sim):
        mgr = self.make(sim, min_down_time=0.4, max_down_time=1.0)
        sim.run(until=0.01)
        mgr._revived_at[1] = sim.now
        for _ in range(5):
            mgr._note_failure(1)
        assert mgr.hold_down(1) == pytest.approx(1.0)

    def test_stable_failure_resets_hold_down(self, sim):
        mgr = self.make(sim, flap_window=0.5)
        feed(sim, mgr, 0, 0.0, 3.0)
        feed(sim, mgr, 1, 0.0, 0.2)
        feed(sim, mgr, 1, 0.5, 1.5)  # revives, then stays up a while
        sim.run(until=1.0)
        assert mgr.channel_state(1) == mgr.REVIVED
        # The second death comes well outside the flap window: no damping.
        sim.run(until=2.0)
        assert self.failures == [1, 1]
        assert mgr.flap_counts[1] == 0
        assert mgr.hold_down(1) == pytest.approx(mgr.min_down_time)

    def test_note_probe_gates_on_threshold_and_hold_down(self, sim):
        mgr = self.make(sim, revival_arrivals=2, min_down_time=0.1)
        feed(sim, mgr, 0, 0.0, 1.0)
        feed(sim, mgr, 1, 0.0, 0.2)
        sim.run(until=0.45)
        assert mgr.channel_state(1) == mgr.FAILED
        # One life sign is below the threshold: the probe is not acked.
        mgr.note_arrival(1)
        assert mgr.note_probe(1) is False
        # The second one clears it (hold-down long elapsed).
        mgr.note_arrival(1)
        assert mgr.note_probe(1) is True
        assert mgr.channel_state(1) == mgr.REVIVED
        # Healthy channels always ack.
        assert mgr.note_probe(0) is True

    def test_note_probe_bounds_check(self, sim):
        mgr = self.make(sim)
        with pytest.raises(ValueError, match="probe on port 5"):
            mgr.note_probe(5)
        with pytest.raises(ValueError):
            mgr.note_probe(-1)

    def test_note_rejoin_rearms_silence_watch(self, sim):
        mgr = self.make(sim)
        feed(sim, mgr, 0, 0.0, 1.5)
        feed(sim, mgr, 1, 0.0, 0.2)
        sim.run(until=0.45)
        assert self.failures == [1]
        # A rejoin RESET re-admits channel 1; the stale last_arrival must
        # not instantly re-fail it, and a later death must re-report.
        mgr.note_rejoin([0, 1])
        assert mgr.channel_state(1) == mgr.ACTIVE
        assert 1 not in mgr.failed
        sim.run(until=0.5)
        assert self.failures == [1]  # not instantly re-failed
        sim.run(until=1.5)  # channel 1 stays silent: genuine second death
        assert self.failures == [1, 1]


class _StallPort:
    """A port whose queue/acceptance the test scripts directly."""

    def __init__(self) -> None:
        self.queue_length = 0
        self.accepting = True

    def can_accept(self) -> bool:
        return self.accepting


class TestSenderHealthMonitor:
    def make(self, sim, n=2, backlog=1, **kwargs):
        defaults = dict(stall_timeout=0.1, check_interval=0.02)
        defaults.update(kwargs)
        monitor = SenderHealthMonitor(sim, **defaults)
        self.ports = [_StallPort() for _ in range(n)]
        self.stalls: List[int] = []
        monitor.bind(
            self.ports, self.stalls.append, backlog_fn=lambda: backlog
        )
        return monitor

    def test_blocked_port_without_progress_stalls(self, sim):
        monitor = self.make(sim)
        self.ports[0].accepting = False
        self.ports[0].queue_length = 5
        sim.run(until=0.3)
        assert self.stalls == [0]
        assert monitor.stalled == {0}

    def test_draining_port_never_stalls(self, sim):
        monitor = self.make(sim)
        self.ports[0].accepting = False
        self.ports[0].queue_length = 50

        def drain():
            if self.ports[0].queue_length > 0:
                self.ports[0].queue_length -= 1
            sim.schedule(0.02, drain)

        sim.schedule_at(0.0, drain)
        sim.run(until=0.5)
        assert self.stalls == []

    def test_idle_sender_never_stalls(self, sim):
        self.make(sim, backlog=0)
        self.ports[0].accepting = False  # blocked but nothing pending
        sim.run(until=0.5)
        assert self.stalls == []

    def test_wedged_queue_counts_as_pending_traffic(self, sim):
        # Pipeline backlog can be zero while packets sit in the port.
        self.make(sim, backlog=0)
        self.ports[0].accepting = False
        self.ports[0].queue_length = 3
        sim.run(until=0.3)
        assert self.stalls == [0]

    def test_clear_rearms_the_watch(self, sim):
        monitor = self.make(sim)
        self.ports[0].accepting = False
        self.ports[0].queue_length = 5
        sim.run(until=0.3)
        assert self.stalls == [0]
        monitor.clear(0)
        assert monitor.stalled == set()
        sim.run(until=0.6)  # still wedged: reported again after the timeout
        assert self.stalls == [0, 0]

    def test_credit_starvation_blocks(self, sim):
        class Starved:
            def available(self, i: int) -> int:
                return 0

        monitor = SenderHealthMonitor(
            sim, stall_timeout=0.1, check_interval=0.02
        )
        port = _StallPort()
        port.queue_length = 1  # pending traffic, port itself would accept
        stalls: List[int] = []
        monitor.bind(
            [port], stalls.append, credit=Starved(), backlog_fn=lambda: 1
        )
        sim.run(until=0.3)
        assert stalls == [0]


class _ProbeRecorderPort:
    def __init__(self, sim) -> None:
        self.sim = sim
        self.sent: List[Any] = []
        self.send_times: List[float] = []

    def send(self, packet: Any, force: bool = False) -> bool:
        assert force, "probes must be forced past the queue limit"
        self.sent.append(packet)
        self.send_times.append(self.sim.now)
        return True


class _ProbeSession:
    """The minimal sender-session surface the prober drives."""

    RUNNING = "running"

    def __init__(self, sim, n=3, active=(0, 1, 2)) -> None:
        self.state = self.RUNNING
        self.all_ports = [_ProbeRecorderPort(sim) for _ in range(n)]
        self.config = StripeConfig(
            quanta=tuple(1000.0 for _ in active),
            active_channels=tuple(active),
        )
        self.on_probe_ack: Optional[Any] = None
        self.on_reset_complete: Optional[Any] = None
        self.resets: List[StripeConfig] = []

    def config_with(
        self, port_index: int, quantum: Optional[float] = None
    ) -> StripeConfig:
        if quantum is None:
            quantum = sum(self.config.quanta) / len(self.config.quanta)
        merged = sorted(
            zip(
                self.config.active_channels + (port_index,),
                self.config.quanta + (float(quantum),),
            )
        )
        return StripeConfig(
            quanta=tuple(q for _, q in merged),
            active_channels=tuple(c for c, _ in merged),
        )

    def initiate_reset(self, config: StripeConfig) -> None:
        self.resets.append(config)
        self.config = config
        if self.on_reset_complete is not None:
            self.on_reset_complete(len(self.resets))


class TestChannelProber:
    def test_probes_back_off_exponentially(self, sim):
        session = _ProbeSession(sim, active=(0, 2))
        prober = ChannelProber(
            sim, session,
            initial_interval=0.01, backoff=2.0, max_interval=0.08,
        )
        assert prober.probing_channels == [1]
        sim.run(until=0.5)
        times = session.all_ports[1].send_times
        assert len(times) >= 5
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Doubling until the cap, then steady at the cap.
        assert gaps[0] == pytest.approx(0.02)
        assert gaps[1] == pytest.approx(0.04)
        assert gaps[2] == pytest.approx(0.08)
        assert all(g == pytest.approx(0.08) for g in gaps[2:])
        assert session.all_ports[0].sent == []
        assert session.all_ports[2].sent == []

    def test_ack_triggers_rejoin_reset_with_remembered_quantum(self, sim):
        session = _ProbeSession(sim, active=(0, 1, 2))
        session.config = StripeConfig(
            quanta=(1000.0, 750.0, 1000.0), active_channels=(0, 1, 2)
        )
        prober = ChannelProber(sim, session, initial_interval=0.01)
        # The session drops channel 1 (e.g. stall exclusion).
        session.config = StripeConfig(
            quanta=(1000.0, 1000.0), active_channels=(0, 2)
        )
        session.on_reset_complete(1)
        assert prober.probing_channels == [1]
        sim.run(until=0.05)
        session.on_probe_ack(ProbeAckPacket(channel=1, seq=1))
        assert prober.rejoins == 1
        assert prober.probing_channels == []
        rejoined = session.resets[-1]
        assert rejoined.active_channels == (0, 1, 2)
        # Channel 1 re-enters with its pre-failure quantum, not the mean.
        assert rejoined.quanta == (1000.0, 750.0, 1000.0)

    def test_abandons_after_max_probes(self, sim):
        session = _ProbeSession(sim, active=(0, 2))
        prober = ChannelProber(
            sim, session, initial_interval=0.01, max_probes=3
        )
        sim.run(until=1.0)
        assert len(session.all_ports[1].sent) == 3
        assert prober.abandoned == [1]
        assert prober.probing_channels == []

    def test_flap_penalty_defers_rejoin(self, sim):
        session = _ProbeSession(sim, active=(0, 2))
        prober = ChannelProber(
            sim, session,
            initial_interval=0.01, flap_penalty=0.3, flap_window=2.0,
        )
        sim.run(until=0.05)
        session.on_probe_ack(ProbeAckPacket(channel=1, seq=1))
        assert prober.rejoins == 1
        # It flaps: excluded again right after rejoining.
        session.config = StripeConfig(
            quanta=(1000.0, 1000.0), active_channels=(0, 2)
        )
        session.on_reset_complete(2)
        assert prober.hold_down(1) == pytest.approx(0.3)
        down_at = sim.now
        sim.run(until=down_at + 0.1)
        session.on_probe_ack(ProbeAckPacket(channel=1, seq=2))
        assert prober.rejoins == 1  # damped: ack inside the hold-down
        sim.run(until=down_at + 0.4)
        session.on_probe_ack(ProbeAckPacket(channel=1, seq=3))
        assert prober.rejoins == 2

    def test_stale_ack_for_active_channel_is_ignored(self, sim):
        session = _ProbeSession(sim, active=(0, 1, 2))
        prober = ChannelProber(sim, session)
        session.on_probe_ack(ProbeAckPacket(channel=1, seq=1))
        assert prober.rejoins == 0
        assert session.resets == []


class TestEndToEndLifecycle:
    def test_fail_probe_rejoin_restores_quantum_share(self, sim):
        """The acceptance scenario: a dark channel is excluded, probed,
        and rejoined; right after the rejoin it carries its share again."""
        detector = ChannelLifecycleManager(
            sim, silence_threshold=0.15, check_interval=0.05,
            revival_arrivals=2, min_down_time=0.1,
        )
        testbed = build_session_testbed(
            sim, n_channels=3, link_mbps=(10.0,), loss_rates=(0.0,),
            message_bytes=1000, failure_detector=detector,
            enable_prober=True,
            prober_options=dict(initial_interval=0.05, max_interval=0.2),
        )
        dark_at, heal_at = 0.6, 1.4
        sim.schedule_at(
            dark_at, lambda: setattr(testbed.loss_models[1], "p", 1.0)
        )
        sim.schedule_at(
            heal_at, lambda: setattr(testbed.loss_models[1], "p", 0.0)
        )
        timeline = []
        reset_done_at = []
        chained = testbed.sender.session.on_reset_complete

        def record_reset(epoch):
            reset_done_at.append(sim.now)
            chained(epoch)

        testbed.sender.session.on_reset_complete = record_reset

        def sample():
            timeline.append(
                (
                    sim.now,
                    tuple(testbed.sender.session.config.active_channels),
                    tuple(
                        link.ab.stats.delivered_packets
                        for link in testbed.links
                    ),
                )
            )
            sim.schedule(0.002, sample)

        sim.schedule_at(0.0, sample)
        sim.run(until=3.0)

        # Failure was detected and the channel excluded...
        assert detector.failures_reported == [1]
        assert any(active == (0, 2) for _, active, _ in timeline)
        # ...probes flowed, the lifecycle gated the ack, and it rejoined.
        assert testbed.sender.prober.probes_sent >= 2
        assert testbed.sender.prober.rejoins == 1
        assert detector.revivals_reported == [1]
        assert tuple(testbed.sender.session.config.active_channels) == (
            0, 1, 2,
        )
        # The rejoin is complete when its RESET handshake finishes.
        rejoin_t = max(t for t in reset_done_at if t > heal_at)
        # The revived channel carries traffic within two round times of
        # the rejoin (a 1000 B message at 10 Mbps is 0.8 ms per channel
        # per round), plus one sampling interval of slack.
        two_rounds = 2 * 3 * 1000 * 8 / 10e6
        frames = {t: per_link for t, _, per_link in timeline}
        at_rejoin = max(t for t in frames if t <= rejoin_t)
        soon = min(t for t in frames if t >= rejoin_t + two_rounds + 0.002)
        assert frames[soon][1] > frames[at_rejoin][1]
        # ...and over the steady window it carries ~its quantum share
        # (equal quanta: within tolerance of the surviving channels).
        late = max(t for t in frames)
        ch1 = frames[late][1] - frames[soon][1]
        others = [
            (frames[late][i] - frames[soon][i]) for i in (0, 2)
        ]
        assert ch1 >= 0.6 * min(others)
        # Delivery itself kept flowing through the outage...
        assert len(testbed.delivered_between(dark_at, heal_at)) > 100
        # ...and is sequence-exact overall (no duplicates ever).
        seqs = [seq for _, seq in testbed.deliveries]
        assert len(seqs) == len(set(seqs))

    def test_stalled_channel_excluded_by_health_monitor(self, sim):
        """Sender-side detection: a wedged queue is excluded without
        waiting for the receiver to notice silence."""
        monitor = SenderHealthMonitor(
            sim, stall_timeout=0.2, check_interval=0.05
        )
        testbed = build_session_testbed(
            sim, n_channels=3, link_mbps=(10.0,), loss_rates=(0.0,),
            message_bytes=1000, health_monitor=monitor,
        )
        # Channel 1's link slows to a crawl: its queue wedges solid.
        sim.schedule_at(0.5, lambda: testbed.links[1].set_rate(1e3))
        sim.run(until=2.0)
        assert monitor.stalls_reported == [1]
        assert tuple(testbed.sender.session.config.active_channels) == (
            0, 2,
        )
        # Delivery continued on the survivors after the exclusion.
        assert len(testbed.delivered_between(1.2, 2.0)) > 100
