"""Unit tests for UDP sockets."""

import pytest

from repro.net.ethernet import EthernetInterface
from repro.net.stack import Link, Stack
from repro.transport.udp import UDP_HEADER_BYTES, UdpDatagram, UdpLayer


def udp_pair(sim):
    s = Stack(sim, "S")
    r = Stack(sim, "R")
    a = EthernetInterface(sim, "eth0", "10.0.1.1")
    b = EthernetInterface(sim, "eth0", "10.0.1.2")
    s.add_interface(a)
    r.add_interface(b)
    Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.0005)
    s.routing.add("10.0.1.0", 24, a)
    r.routing.add("10.0.1.0", 24, b)
    return UdpLayer(s), UdpLayer(r)


class TestSockets:
    def test_basic_delivery(self, sim):
        us, ur = udp_pair(sim)
        got = []
        ur.bind(5000, on_datagram=lambda d, src: got.append((d.payload, str(src))))
        us.bind().sendto("hello", 50, "10.0.1.2", 5000)
        sim.run(until=0.1)
        assert got == [("hello", "10.0.1.1")]

    def test_datagram_size_includes_header(self):
        datagram = UdpDatagram(1, 2, None, payload_size=100)
        assert datagram.size == 100 + UDP_HEADER_BYTES

    def test_port_demux(self, sim):
        us, ur = udp_pair(sim)
        a, b = [], []
        ur.bind(5000, on_datagram=lambda d, s: a.append(d.payload))
        ur.bind(5001, on_datagram=lambda d, s: b.append(d.payload))
        sock = us.bind()
        sock.sendto("for-a", 10, "10.0.1.2", 5000)
        sock.sendto("for-b", 10, "10.0.1.2", 5001)
        sim.run(until=0.1)
        assert a == ["for-a"] and b == ["for-b"]

    def test_unbound_port_drops(self, sim):
        us, ur = udp_pair(sim)
        us.bind().sendto("x", 10, "10.0.1.2", 9999)
        sim.run(until=0.1)
        assert ur.no_socket_drops == 1

    def test_duplicate_bind_rejected(self, sim):
        us, _ = udp_pair(sim)
        us.bind(5000)
        with pytest.raises(ValueError):
            us.bind(5000)

    def test_ephemeral_ports_unique(self, sim):
        us, _ = udp_pair(sim)
        a = us.bind()
        b = us.bind()
        assert a.port != b.port
        assert a.port >= 49152

    def test_close_releases_port(self, sim):
        us, _ = udp_pair(sim)
        sock = us.bind(5000)
        sock.close()
        us.bind(5000)  # no error

    def test_counters(self, sim):
        us, ur = udp_pair(sim)
        rx = ur.bind(5000, on_datagram=lambda d, s: None)
        tx = us.bind()
        for _ in range(3):
            tx.sendto("x", 10, "10.0.1.2", 5000)
        sim.run(until=0.1)
        assert tx.sent == 3
        assert rx.received == 3
        assert ur.received == 3
