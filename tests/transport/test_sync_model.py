"""Synchronization-model behavior and the marker-free regression suite.

The refactor's load-bearing guarantee: a hash-synchronized receiver makes
**zero marker-codec calls** and allocates **zero resequencer buffers** —
checked here both at the unit level and through the full socket receive
path with the codec monkeypatched to count invocations.
"""

import pytest

from repro.core.markers import encode_marker
from repro.core.packet import MarkerPacket
from repro.core.resequencer import DirectReception
from repro.core.striper import MarkerPolicy
from repro.transport import sync_model as sync_module
from repro.transport.endpoint import (
    StripeReceiverPipeline,
    make_discipline,
    receiver_mode_for,
)
from repro.transport.sync_model import (
    HashSyncModel,
    HeaderSyncModel,
    MarkerSyncModel,
    make_sync_model,
)


class TestHashSyncModel:
    def test_direct_reception_no_resequencer(self):
        model = make_sync_model("direct", n_channels=4)
        assert isinstance(model, HashSyncModel)
        assert isinstance(model.receiver, DirectReception)
        # No per-channel buffers exist at all — not merely empty ones.
        assert not hasattr(model.receiver, "buffers")

    def test_rejects_marker_policy(self):
        with pytest.raises(ValueError, match="no.*marker policy"):
            make_sync_model(
                "direct", n_channels=2, marker_policy=MarkerPolicy(1)
            )

    def test_keepalive_is_meaningless(self):
        model = make_sync_model("direct", n_channels=2)
        with pytest.raises(ValueError, match="keepalive"):
            model.start_keepalive(None, None, 0.01)

    def test_decode_wire_counts_strays_without_codec(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            sync_module, "decode_marker",
            lambda data: calls.append(data),
        )
        model = make_sync_model("direct", n_channels=2)
        frame = encode_marker(MarkerPacket(channel=0, round_number=1, deficit=0.0))
        assert model.decode_wire(frame) is None
        assert model.decode_wire(b"\x00garbage") is None
        assert model.stray_wire_frames == 2
        assert calls == []  # a real marker frame never reaches the codec

    def test_stray_marker_objects_counted_and_dropped(self):
        delivered = []
        model = make_sync_model(
            "direct", n_channels=2, on_deliver=delivered.append
        )
        out = model.on_channel_deliver(
            0, MarkerPacket(channel=0, round_number=1, deficit=0.0)
        )
        assert out == []
        assert delivered == []
        assert model.receiver.stray_markers == 1
        assert model.receiver_state()["stray_markers"] == 1

    def test_snapshot_stateless(self):
        model = make_sync_model("direct", n_channels=2)
        assert model.snapshot() is None
        model.restore(None)  # no-op
        with pytest.raises(ValueError, match="stateless"):
            model.restore({"round": 3})

    def test_receiver_state_shape(self):
        model = make_sync_model("direct", n_channels=3)
        state = model.receiver_state()
        assert state["sync_model"] == "hash"
        assert state["mode"] == "direct"
        assert state["buffered"] == 0
        assert state["max_buffered"] == 0


def srr_algorithm(n=2):
    from repro.core.srr import SRR

    return SRR([1000.0] * n)


class TestMarkerSyncModel:
    def test_families(self):
        marker = make_sync_model("marker", srr_algorithm(), n_channels=2)
        assert isinstance(marker, MarkerSyncModel)
        assert marker.marker_codec is True
        header = make_sync_model("mppp", None, n_channels=2)
        assert isinstance(header, HeaderSyncModel)
        assert header.kind == "header"
        with pytest.raises(ValueError, match="unknown receiver mode"):
            make_sync_model("telepathy", None, n_channels=2)

    def test_decode_errors_counted(self):
        model = make_sync_model("none", None, n_channels=2)
        assert model.decode_wire(b"\x00bad") is None
        assert model.marker_decode_errors == 1
        frame = encode_marker(MarkerPacket(channel=1, round_number=7, deficit=0.0))
        decoded = model.decode_wire(frame)
        assert decoded is not None and decoded.round_number == 7

    def test_keepalive_requires_policy_and_sim(self):
        model = make_sync_model("marker", srr_algorithm(), n_channels=2)
        with pytest.raises(ValueError, match="marker policy"):
            model.start_keepalive(None, object(), 0.01)


class TestMarkerFreeReceivePath:
    """End-to-end regression: marker-free receivers never touch the codec
    and never allocate resequencer state."""

    def _count_codec(self, monkeypatch):
        calls = {"n": 0}
        real = sync_module.decode_marker

        def counting(data):
            calls["n"] += 1
            return real(data)

        monkeypatch.setattr(sync_module, "decode_marker", counting)
        return calls

    @pytest.mark.parametrize("name", ["address_hash", "sprinklers"])
    def test_zero_codec_calls_through_pipeline(self, name, monkeypatch):
        calls = self._count_codec(monkeypatch)
        disc = make_discipline(name, 2)
        assert receiver_mode_for(disc) == "direct"
        delivered = []
        pipeline = StripeReceiverPipeline(
            2, None, mode="direct", on_message=delivered.append
        )
        assert isinstance(pipeline.sync, HashSyncModel)
        # A genuine encoded marker frame arrives on the wire (e.g. from a
        # misconfigured marker-mode sender): dropped undecoded.
        frame = encode_marker(MarkerPacket(channel=0, round_number=1, deficit=0.0))
        assert pipeline.push_wire(0, frame) == []
        assert calls["n"] == 0
        assert pipeline.sync.stray_wire_frames == 1
        from repro.core.packet import Packet

        pipeline.push(0, Packet(size=100, seq=0))
        pipeline.push(1, Packet(size=100, seq=1))
        assert [p.seq for p in delivered] == [0, 1]
        assert calls["n"] == 0

    def test_marker_pipeline_does_decode(self, monkeypatch):
        # Positive control: the patch point is live — a marker-mode
        # pipeline decodes the same frame through the counted codec.
        calls = self._count_codec(monkeypatch)
        disc = make_discipline("srr", 2)
        pipeline = StripeReceiverPipeline(2, disc.algorithm, mode="marker")
        frame = encode_marker(MarkerPacket(channel=0, round_number=1, deficit=0.0))
        pipeline.push_wire(0, frame)
        assert calls["n"] == 1

    @pytest.mark.parametrize("fast", [False, True])
    def test_socket_testbed_zero_codec_calls(self, sim, fast, monkeypatch):
        calls = self._count_codec(monkeypatch)
        from repro.experiments.socket_harness import (
            SocketTestbedConfig,
            build_socket_testbed,
        )

        config = SocketTestbedConfig(
            n_channels=2,
            link_mbps=(10.0,) * 2,
            prop_delay_s=(1e-3,) * 2,
            loss_rates=(0.0,) * 2,
            discipline="sprinklers",
            discipline_options={"initial_share": 1.0},
            fast=fast,
        )
        testbed = build_socket_testbed(sim, config)
        sim.run(until=0.1)
        assert len(testbed.deliveries) > 0
        assert calls["n"] == 0
        state = testbed.receiver.receiver_state()
        assert state["sync_model"] == "hash"
        assert state["max_buffered"] == 0
