"""Unit tests for FCVC credit flow control."""

import pytest

from repro.transport.credit import CreditPacket, CreditReceiver, CreditSender


class TestCreditSender:
    def test_initial_credit_spendable(self):
        sender = CreditSender(2, initial_credit=3)
        for _ in range(3):
            assert sender.can_send(0)
            sender.on_send(0)
        assert not sender.can_send(0)
        assert sender.can_send(1)

    def test_send_without_credit_rejected(self):
        sender = CreditSender(1, initial_credit=0)
        with pytest.raises(RuntimeError):
            sender.on_send(0)

    def test_credit_advertisement_extends_limit(self):
        sender = CreditSender(1, initial_credit=1)
        sender.on_send(0)
        assert not sender.can_send(0)
        sender.on_credit(0, limit=5)
        assert sender.available(0) == 4

    def test_stale_advertisement_ignored(self):
        sender = CreditSender(1, initial_credit=10)
        sender.on_credit(0, limit=3)  # lower than current: keep max
        assert sender.limits[0] == 10

    def test_regressing_limit_never_shrinks_window(self):
        """A reordered CreditPacket overtaken by a newer piggybacked
        credit must not claw back already-granted sending rights."""
        sender = CreditSender(1, initial_credit=2)
        sender.on_credit(0, limit=8)
        for _ in range(5):
            sender.on_send(0)
        sender.on_credit(0, limit=4)  # stale: below what we already used
        assert sender.limits[0] == 8
        assert sender.can_send(0)  # 5 < 8: still allowed to send
        assert sender.stale_credits == 1

    def test_duplicate_advertisement_counted_not_applied(self):
        sender = CreditSender(1, initial_credit=2)
        sender.on_credit(0, limit=6)
        sender.on_credit(0, limit=6)  # keepalive re-advertisement
        assert sender.limits[0] == 6
        assert sender.stale_credits == 1

    def test_stale_credit_never_fires_unblock(self):
        """A stale advertisement cannot unblock a sender: limits did not
        move, so firing the pump would be a spurious wakeup at best and
        mask a real deadlock at worst."""
        fired = []
        sender = CreditSender(1, initial_credit=1,
                              on_unblocked=lambda: fired.append(1))
        sender.on_send(0)  # blocked at limit 1
        sender.on_credit(0, limit=1)
        sender.on_credit(0, limit=0)
        assert fired == []
        assert not sender.can_send(0)
        assert sender.stale_credits == 2
        sender.on_credit(0, limit=2)  # a real advertisement
        assert fired == [1]

    def test_unblock_callback(self):
        fired = []
        sender = CreditSender(1, initial_credit=1,
                              on_unblocked=lambda: fired.append(1))
        sender.on_send(0)
        sender.on_credit(0, limit=2)
        assert fired == [1]

    def test_no_callback_when_not_blocked(self):
        fired = []
        sender = CreditSender(1, initial_credit=5,
                              on_unblocked=lambda: fired.append(1))
        sender.on_credit(0, limit=9)
        assert fired == []

    def test_validation(self):
        with pytest.raises(ValueError):
            CreditSender(0, 1)
        with pytest.raises(ValueError):
            CreditSender(1, -1)


class TestCreditReceiver:
    def test_advertises_consumed_plus_buffer(self):
        sent = []
        receiver = CreditReceiver(
            2, buffer_packets=8, send_credit=lambda c, l: sent.append((c, l))
        )
        receiver.on_consumed(0)
        assert sent == [(0, 9)]

    def test_batched_advertisements(self):
        sent = []
        receiver = CreditReceiver(
            1, buffer_packets=4,
            send_credit=lambda c, l: sent.append(l),
            advertise_every=3,
        )
        for _ in range(7):
            receiver.on_consumed(0)
        assert sent == [7, 10]  # after 3rd and 6th consumption

    def test_piggyback_limit(self):
        receiver = CreditReceiver(1, buffer_packets=16)
        for _ in range(5):
            receiver.consumed[0] += 1
        assert receiver.piggyback_limit(0) == 21

    def test_validation(self):
        with pytest.raises(ValueError):
            CreditReceiver(1, buffer_packets=0)
        with pytest.raises(ValueError):
            CreditReceiver(1, buffer_packets=4, advertise_every=0)


class TestInvariant:
    def test_sender_never_exceeds_receiver_buffer(self):
        """The FCVC safety property: in-flight <= buffer size always."""
        buffer_size = 4
        sender = CreditSender(1, initial_credit=buffer_size)
        receiver = CreditReceiver(
            1, buffer_packets=buffer_size,
            send_credit=lambda c, l: sender.on_credit(c, l),
        )
        in_buffer = 0
        max_in_buffer = 0
        consumed_total = 0
        sent_total = 0
        import random

        rng = random.Random(1)
        for _ in range(2000):
            if sender.can_send(0) and rng.random() < 0.7:
                sender.on_send(0)
                sent_total += 1
                in_buffer += 1
            elif in_buffer and rng.random() < 0.5:
                in_buffer -= 1
                consumed_total += 1
                receiver.on_consumed(0)
            max_in_buffer = max(max_in_buffer, in_buffer)
        assert max_in_buffer <= buffer_size
        assert sent_total - consumed_total <= buffer_size


class TestCreditPacket:
    def test_fields(self):
        packet = CreditPacket(channel=1, limit=42)
        assert packet.codepoint == "credit"
        assert "42" in repr(packet)
