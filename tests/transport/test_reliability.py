"""Selective-repeat ARQ over the bundle: unit and end-to-end tests.

Unit layers: the RFC 6298-shaped :class:`RtoEstimator`, the
:class:`ReliableSender` window/ack/timer machinery (backpressure, Karn's
rule, SACK fast retransmit, escalation), and the
:class:`ReliableReceiver` resequencing/ack generation.

End to end: under seeded 10% *persistent* loss (the regime quasi-FIFO
striping alone cannot survive), ``reliability="reliable"`` delivers every
submitted message exactly once in FIFO order on both the socket stack and
the session stack, and the sender's retransmission state fully drains.
"""

import pytest

from repro.core.packet import Packet, SackInfo
from repro.sim.engine import Simulator
from repro.transport.reliability import (
    FAST_RETRANSMIT_HINTS,
    AckPacket,
    ReliableReceiver,
    ReliableSender,
    RtoEstimator,
)


@pytest.fixture
def sim():
    return Simulator()


def sack(cum, *blocks):
    return SackInfo(cum_ack=cum, blocks=tuple(blocks))


# ---------------------------------------------------------------------- #
# RTO estimator


class TestRtoEstimator:
    def test_initial_rto_used_before_any_sample(self):
        rto = RtoEstimator(initial_rto=0.3)
        assert rto.rto == 0.3
        assert rto.srtt is None

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            RtoEstimator(initial_rto=0.01, min_rto=0.02)
        with pytest.raises(ValueError):
            RtoEstimator(initial_rto=3.0, max_rto=2.0)

    def test_first_sample_seeds_srtt_and_var(self):
        rto = RtoEstimator()
        rto.sample(0.1)
        assert rto.srtt == pytest.approx(0.1)
        assert rto.rttvar == pytest.approx(0.05)
        # RFC 6298: RTO = SRTT + K * RTTVAR
        assert rto.rto == pytest.approx(0.1 + 4.0 * 0.05)

    def test_ewma_update(self):
        rto = RtoEstimator()
        rto.sample(0.1)
        rto.sample(0.2)
        assert rto.rttvar == pytest.approx(0.75 * 0.05 + 0.25 * 0.1)
        assert rto.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)
        assert rto.samples == 2

    def test_min_clamp(self):
        rto = RtoEstimator(min_rto=0.02)
        rto.sample(1e-4)
        assert rto.rto == 0.02

    def test_backoff_doubles_and_caps(self):
        rto = RtoEstimator(initial_rto=0.8, max_rto=2.0)
        rto.backoff()
        assert rto.rto == pytest.approx(1.6)
        rto.backoff()
        assert rto.rto == 2.0  # capped
        assert rto.backoffs == 2

    def test_sample_collapses_backoff(self):
        rto = RtoEstimator(initial_rto=0.2, max_rto=2.0)
        rto.backoff()
        rto.backoff()
        rto.sample(0.01)
        assert rto.rto == pytest.approx(0.01 + 4.0 * 0.005)

    def test_negative_sample_ignored(self):
        rto = RtoEstimator()
        rto.sample(-1.0)
        assert rto.samples == 0
        assert rto.srtt is None

    def test_consecutive_doublings_capped(self):
        rto = RtoEstimator(initial_rto=0.1, max_rto=1000.0, backoff_cap=3)
        for _ in range(6):
            rto.backoff()
        # Three doublings applied, three refused — but every timeout is
        # still counted (harnesses assert on ``backoffs``).
        assert rto.rto == pytest.approx(0.8)
        assert rto.backoffs == 6
        assert rto.capped_backoffs == 3

    def test_sample_reopens_the_doubling_budget(self):
        rto = RtoEstimator(initial_rto=0.1, max_rto=1000.0, backoff_cap=2)
        rto.backoff()
        rto.backoff()
        rto.backoff()  # refused
        assert rto.capped_backoffs == 1
        rto.sample(0.1)
        rto.backoff()  # streak reset: doubles again
        assert rto.rto == pytest.approx(2 * (0.1 + 4.0 * 0.05))

    def test_reset_backoff_restores_smoothed_estimate(self):
        rto = RtoEstimator(initial_rto=0.2, max_rto=1000.0)
        rto.sample(0.1)
        base = rto.rto
        rto.backoff()
        rto.backoff()
        assert rto.rto > base
        rto.reset_backoff()
        assert rto.rto == pytest.approx(base)

    def test_reset_backoff_without_samples_uses_initial(self):
        rto = RtoEstimator(initial_rto=0.2, max_rto=1000.0)
        rto.backoff()
        rto.reset_backoff()
        assert rto.rto == pytest.approx(0.2)

    def test_backoff_cap_validated(self):
        with pytest.raises(ValueError):
            RtoEstimator(backoff_cap=0)


# ---------------------------------------------------------------------- #
# sender harness: "striping" = record the packet, then report the
# transmission back like a recording port would.


class SenderHarness:
    """A ReliableSender whose stripe path transmits instantly on channel 0.

    ``auto_send=False`` models a striper that queued the packet but has
    not transmitted it yet (``note_sent`` never fires).
    """

    def __init__(self, sim, auto_send=True, channel=0, **options):
        self.sent = []
        self.auto_send = auto_send
        self.channel = channel
        self.suspects = []
        self.window_opens = 0
        options.setdefault("on_channel_suspect", self.suspects.append)
        options.setdefault(
            "on_window_open",
            lambda: setattr(self, "window_opens", self.window_opens + 1),
        )
        self.sender = ReliableSender(self._stripe, sim, **options)

    def _stripe(self, packet):
        self.sent.append(packet)
        if self.auto_send:
            self.sender.note_sent(self.channel, packet)

    def submit(self, n, size=100):
        return [
            self.sender.submit(Packet(size=size, seq=i)) for i in range(n)
        ]


class TestSenderWindow:
    def test_rseq_assigned_in_submit_order(self, sim):
        h = SenderHarness(sim)
        h.submit(3)
        assert [p.rseq for p in h.sent] == [0, 1, 2]
        assert h.sender.next_rseq == 3

    def test_window_full_parks_submits(self, sim):
        h = SenderHarness(sim, window_packets=2)
        h.submit(5)
        assert len(h.sent) == 2  # only the window's worth was striped
        assert h.sender.backlog == 3
        assert not h.sender.can_submit()
        assert h.sender.stats.backpressure_stalls == 3

    def test_ack_refills_window_in_order(self, sim):
        h = SenderHarness(sim, window_packets=2)
        h.submit(5)
        h.sender.on_ack(sack(2))  # rseq 0, 1 retired
        assert [p.rseq for p in h.sent] == [0, 1, 2, 3]
        assert h.sender.backlog == 1
        h.sender.on_ack(sack(4))
        assert [p.rseq for p in h.sent] == [0, 1, 2, 3, 4]
        assert h.sender.can_submit()

    def test_window_open_fires_once_drained(self, sim):
        h = SenderHarness(sim, window_packets=2)
        h.submit(3)
        assert h.window_opens == 0
        h.sender.on_ack(sack(2))
        # overflow replayed and there is room again
        assert h.window_opens == 1
        assert h.sender.stats.acked == 2

    def test_ack_packet_and_bare_sack_both_accepted(self, sim):
        h = SenderHarness(sim)
        h.submit(2)
        h.sender.on_ack(AckPacket(sack=sack(1)))
        h.sender.on_ack(sack(2))
        assert not h.sender.unacked

    def test_stale_cum_ack_is_harmless(self, sim):
        h = SenderHarness(sim)
        h.submit(2)
        h.sender.on_ack(sack(2))
        h.sender.on_ack(sack(1))  # reordered older ack
        assert h.sender.stats.acked == 2
        assert not h.sender.unacked

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            ReliableSender(lambda p: None, sim, window_packets=0)
        with pytest.raises(ValueError):
            ReliableSender(lambda p: None, sim, max_retries=0)


class TestKarnSampling:
    def test_single_transmission_sampled(self, sim):
        h = SenderHarness(sim)
        h.submit(1)
        sim.schedule_at(0.05, lambda: h.sender.on_ack(sack(1)))
        sim.run(until=0.1)
        assert h.sender.stats.rtt_samples == 1
        assert h.sender.rto.srtt == pytest.approx(0.05)

    def test_retransmitted_packet_not_sampled(self, sim):
        h = SenderHarness(sim, rto=RtoEstimator(initial_rto=0.05))
        h.submit(1)
        sim.run(until=0.2)  # RTO fires, packet retransmitted
        assert h.sender.stats.timeouts >= 1
        h.sender.on_ack(sack(1))
        assert h.sender.stats.rtt_samples == 0  # Karn's rule

    def test_sacked_packet_sampled_once(self, sim):
        h = SenderHarness(sim)
        h.submit(3)
        sim.schedule_at(
            0.02, lambda: h.sender.on_ack(sack(0, (2, 3)))
        )
        sim.schedule_at(0.03, lambda: h.sender.on_ack(sack(3)))
        sim.run(until=0.1)
        # one sample per packet: 2 at cum-ack time, 1 at sack time
        assert h.sender.stats.rtt_samples == 3


class TestFastRetransmit:
    def test_hole_retransmitted_after_dupthresh_hints(self, sim):
        h = SenderHarness(sim)
        h.submit(6)
        # rseq 0 is lost; SACKs report ever newer data behind it.  The
        # SRTT gate needs a round trip of silence per hint, so space the
        # acks a full (seeded) SRTT apart.
        h.sender.rto.sample(0.001)
        for i in range(FAST_RETRANSMIT_HINTS):
            sim.schedule_at(
                0.01 * (i + 1),
                lambda i=i: h.sender.on_ack(sack(0, (1, 2 + i))),
            )
        sim.run(until=0.01 * FAST_RETRANSMIT_HINTS + 0.001)
        assert h.sender.stats.fast_retransmissions == 1
        assert [p.rseq for p in h.sent].count(0) == 2

    def test_no_retransmit_while_repair_in_flight(self, sim):
        h = SenderHarness(sim)
        h.submit(6)
        h.sender.rto.sample(0.05)  # srtt 50 ms
        # Same-instant ack burst: only the first hint can accrue.
        for i in range(5):
            h.sender.on_ack(sack(0, (1, 2 + i)))
        assert h.sender.stats.fast_retransmissions == 0

    def test_sacked_records_not_retransmitted(self, sim):
        h = SenderHarness(sim)
        h.submit(4)
        h.sender.rto.sample(0.001)
        for i in range(FAST_RETRANSMIT_HINTS + 1):
            sim.schedule_at(
                0.01 * (i + 1),
                lambda: h.sender.on_ack(sack(0, (1, 4))),
            )
        sim.run(until=0.1)
        # Only the hole (rseq 0) ever went out twice.
        counts = {r: [p.rseq for p in h.sent].count(r) for r in range(4)}
        assert counts[0] == 2
        assert counts[1] == counts[2] == counts[3] == 1


class TestTimerAndEscalation:
    def test_timeout_retransmits_and_backs_off(self, sim):
        h = SenderHarness(sim, rto=RtoEstimator(initial_rto=0.1))
        h.submit(1)
        sim.run(until=0.35)  # 0.1 then backed-off 0.2
        assert h.sender.stats.timeouts == 2
        assert h.sender.rto.backoffs == 2
        assert len(h.sent) == 3
        assert h.sender.stats.retransmissions == 2

    def test_timer_quiesces_when_all_acked(self, sim):
        h = SenderHarness(sim, rto=RtoEstimator(initial_rto=0.1))
        h.submit(2)
        h.sender.on_ack(sack(2))
        sim.run(until=1.0)
        assert h.sender.stats.timeouts == 0
        assert not h.sent[3:]

    def test_unsent_packet_not_retransmitted(self, sim):
        # The striper accepted the packet but never transmitted it (all
        # channels wedged): there is nothing to time out yet.
        h = SenderHarness(sim, auto_send=False,
                          rto=RtoEstimator(initial_rto=0.05))
        h.submit(1)
        sim.run(until=0.5)
        assert h.sender.stats.timeouts == 0
        assert len(h.sent) == 1

    def test_escalation_reports_last_channel_once(self, sim):
        h = SenderHarness(
            sim, channel=2, max_retries=3,
            rto=RtoEstimator(initial_rto=0.02, min_rto=0.02, max_rto=0.04),
        )
        h.submit(1)
        sim.run(until=2.0)
        assert h.sender.stats.escalations == 1
        assert h.suspects == [2]
        # Escalation does not abandon the data: retries continue.
        assert h.sender.stats.retransmissions > 3
        # Late ack still retires it.
        h.sender.on_ack(sack(1))
        assert not h.sender.unacked

    def test_retransmissions_tracked_per_channel(self, sim):
        h = SenderHarness(sim, rto=RtoEstimator(initial_rto=0.05))
        h.submit(1, size=123)
        sim.run(until=0.2)  # two timeouts (t=0.05, then backed-off t=0.15)
        assert h.sender.retransmitted_bytes == {0: 2 * 123}

    def test_channel_rejoin_collapses_inflated_rto(self, sim):
        """Regression (channel rejoin satellite): after an outage inflates
        the shared RTO, an ack-triggered rejoin collapses it — the next
        retry fires at the smoothed estimate, not the backed-off timer."""
        h = SenderHarness(
            sim, rto=RtoEstimator(initial_rto=0.05, max_rto=30.0)
        )
        h.submit(1)
        h.sender.rto.sample(0.05)
        base = h.sender.rto.rto
        sim.run(until=2.0)  # several unanswered timeouts back the timer off
        assert h.sender.rto.backoffs >= 3
        inflated = h.sender.rto.rto
        assert inflated > 2 * base
        sent_before = len(h.sent)

        h.sender.on_channel_rejoin()
        assert h.sender.rto.rto == pytest.approx(base)
        # The single retransmission timer was re-armed at the collapsed
        # timeout: the pending packet goes out again within ~base, far
        # sooner than the inflated timer would have allowed.
        sim.run(until=sim.now + 2 * base)
        assert len(h.sent) > sent_before

    def test_channel_rejoin_with_nothing_outstanding_is_noop(self, sim):
        h = SenderHarness(sim, rto=RtoEstimator(initial_rto=0.05))
        h.submit(1)
        h.sender.on_ack(sack(1))
        h.sender.on_channel_rejoin()
        sim.run(until=1.0)
        assert h.sender.stats.timeouts == 0


# ---------------------------------------------------------------------- #
# receiver


class ReceiverHarness:
    def __init__(self, sim=None, **options):
        self.delivered = []
        self.acks = []
        options.setdefault("send_ack", self.acks.append)
        self.receiver = ReliableReceiver(
            self.delivered.append, sim=sim, **options
        )

    def push(self, rseq, seq=None):
        packet = Packet(size=100, seq=seq if seq is not None else rseq)
        packet.rseq = rseq
        self.receiver.push(packet)
        return packet


class TestReceiverOrdering:
    def test_in_order_stream_delivered(self):
        h = ReceiverHarness()
        for i in range(5):
            h.push(i)
        assert [p.rseq for p in h.delivered] == [0, 1, 2, 3, 4]
        assert h.receiver.stats.out_of_order == 0

    def test_gap_held_back_until_filled(self):
        h = ReceiverHarness()
        h.push(0)
        h.push(2)
        h.push(3)
        assert [p.rseq for p in h.delivered] == [0]
        h.push(1)  # retransmission arrives
        assert [p.rseq for p in h.delivered] == [0, 1, 2, 3]

    def test_duplicates_dropped(self):
        h = ReceiverHarness()
        h.push(0)
        h.push(0)          # below cum
        h.push(2)
        h.push(2)          # already buffered
        assert h.receiver.stats.duplicates == 2
        assert [p.rseq for p in h.delivered] == [0]

    def test_beyond_window_dropped(self):
        h = ReceiverHarness(window_packets=4)
        h.push(0)
        h.push(100)
        assert h.receiver.stats.window_drops == 1
        h.push(1)
        assert [p.rseq for p in h.delivered] == [0, 1]

    def test_unsequenced_packet_passes_through(self):
        h = ReceiverHarness()
        packet = Packet(size=100, seq=7)  # rseq is None
        h.receiver.push(packet)
        assert h.delivered == [packet]
        assert h.receiver.stats.received == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliableReceiver(lambda p: None, window_packets=0)
        with pytest.raises(ValueError):
            ReliableReceiver(lambda p: None, ack_every=0)


class TestReceiverAcks:
    def test_every_nth_in_order_delivery_acked(self):
        h = ReceiverHarness(ack_every=2)
        h.push(0)
        assert len(h.acks) == 0
        h.push(1)
        assert len(h.acks) == 1
        assert h.acks[-1] == SackInfo(cum_ack=2)

    def test_out_of_order_acks_immediately(self):
        h = ReceiverHarness(ack_every=100)
        h.push(0)
        h.push(2)
        assert len(h.acks) == 1
        assert h.acks[-1] == SackInfo(cum_ack=1, blocks=((2, 3),))

    def test_duplicate_acks_immediately(self):
        h = ReceiverHarness(ack_every=100)
        h.push(0)
        h.push(0)
        assert len(h.acks) == 1  # the loss signal must not wait

    def test_delayed_ack_fires(self, sim):
        h = ReceiverHarness(sim=sim, ack_every=10, ack_delay_s=0.005)
        h.push(0)
        assert len(h.acks) == 0
        sim.run(until=0.01)
        assert len(h.acks) == 1
        assert h.acks[-1].cum_ack == 1
        # and does not re-fire with nothing new to ack
        sim.run(until=0.05)
        assert len(h.acks) == 1

    def test_sack_blocks_coalesced_newest_edge_first(self):
        h = ReceiverHarness()
        for rseq in (2, 3, 6, 5):
            h.push(rseq)
        info = h.receiver.sack_info()
        # {2,3} and {5,6} coalesce; 5 was the most recent out-of-order
        # arrival, so its block is reported first.
        assert info.cum_ack == 0
        assert info.blocks == ((5, 7), (2, 4))

    def test_sack_truncation_keeps_freshest(self):
        h = ReceiverHarness()
        for rseq in (2, 5, 8):
            h.push(rseq)
        info = h.receiver.sack_info(max_blocks=2)
        # newest arrival (8) first, then newest edge of the rest
        assert info.blocks == ((8, 9), (5, 6))


# ---------------------------------------------------------------------- #
# loopback: sender and receiver glued through a lossy "bundle"


class TestLoopback:
    def run_loopback(self, sim, lose, n=50, delay=0.002):
        """Stripe sender->receiver with per-copy drop decisions."""
        h = SenderHarness(sim, auto_send=False)
        hr = ReceiverHarness(
            sim=sim, ack_every=2, ack_delay_s=0.004,
        )
        copies = iter(range(1 << 20))

        def stripe(packet):
            h.sent.append(packet)
            h.sender.note_sent(0, packet)
            if not lose(next(copies)):
                sim.schedule(delay, hr.receiver.push, packet)

        h.sender._submit = stripe
        hr.receiver.send_ack = lambda info: sim.schedule(
            delay, h.sender.on_ack, info
        )
        for i in range(n):
            h.sender.submit(Packet(size=100, seq=i))
        sim.run(until=5.0)
        return h, hr

    def test_lossless_loopback(self, sim):
        h, hr = self.run_loopback(sim, lose=lambda i: False)
        assert [p.seq for p in hr.delivered] == list(range(50))
        assert not h.sender.unacked
        assert h.sender.stats.retransmissions == 0

    def test_every_fifth_copy_lost_still_exactly_once(self, sim):
        h, hr = self.run_loopback(sim, lose=lambda i: i % 5 == 0)
        assert [p.seq for p in hr.delivered] == list(range(50))
        assert not h.sender.unacked
        assert h.sender.stats.retransmissions > 0


# ---------------------------------------------------------------------- #
# end to end on the real stacks, under persistent loss


def drain(sim, testbed, until, settle):
    sim.run(until=until)
    testbed.source.stop()
    sim.run(until=until + settle)


@pytest.mark.parametrize("seed", [3, 11])
def test_socket_stack_reliable_under_persistent_loss(seed):
    from repro.experiments.socket_harness import (
        SocketTestbedConfig,
        build_socket_testbed,
    )

    sim = Simulator()
    testbed = build_socket_testbed(
        sim,
        SocketTestbedConfig(
            n_channels=3, link_mbps=(10.0,), prop_delay_s=(0.5e-3,),
            loss_rates=(0.1,),  # persistent: never switched off
            reliability="reliable", seed=seed,
        ),
    )
    drain(sim, testbed, until=1.0, settle=2.0)

    seqs = testbed.delivered_seqs()
    generated = testbed.source.generated
    assert generated > 1000
    assert seqs == sorted(set(seqs)), "not exactly-once in order"
    assert set(seqs) == set(range(generated)), "a submitted message was lost"
    arq = testbed.sender.reliable
    assert not arq.unacked and not arq.backlog
    assert arq.stats.retransmissions > 0


def test_socket_stack_quasi_fifo_unchanged_by_default():
    """The default mode has no ARQ state and loses packets under loss."""
    from repro.experiments.socket_harness import (
        SocketTestbedConfig,
        build_socket_testbed,
    )

    sim = Simulator()
    testbed = build_socket_testbed(
        sim,
        SocketTestbedConfig(
            n_channels=3, link_mbps=(10.0,), prop_delay_s=(0.5e-3,),
            loss_rates=(0.1,), seed=3,
        ),
    )
    assert testbed.sender.reliable is None
    assert testbed.receiver.reliable is None
    drain(sim, testbed, until=1.0, settle=1.0)
    seqs = testbed.delivered_seqs()
    assert len(seqs) == len(set(seqs))
    assert len(seqs) < testbed.source.generated  # loss is real


@pytest.mark.parametrize("seed", [0])
def test_session_stack_reliable_under_persistent_loss(seed):
    from repro.experiments.fault_tolerance import build_session_testbed

    sim = Simulator()
    testbed = build_session_testbed(
        sim, n_channels=3, link_mbps=(10.0,), loss_rates=(0.1,),
        seed=seed, reliability="reliable",
    )
    drain(sim, testbed, until=1.0, settle=2.0)

    seqs = [seq for _, seq in testbed.deliveries]
    generated = testbed.source.generated
    assert generated > 1000
    assert seqs == sorted(set(seqs)), "not exactly-once in order"
    assert set(seqs) == set(range(generated)), "a submitted message was lost"
    arq = testbed.sender.reliable
    assert not arq.unacked and not arq.backlog
    assert arq.stats.retransmissions > 0


def test_session_stack_escalation_excludes_dead_channel():
    """A channel that goes fully dark: ARQ escalation feeds the session's
    exclusion machinery, and the stream still delivers everything."""
    from repro.experiments.fault_tolerance import build_session_testbed

    sim = Simulator()
    testbed = build_session_testbed(
        sim, n_channels=3, link_mbps=(10.0,), loss_rates=(0.0,),
        reliability="reliable",
        reliability_options={"sender": {"max_retries": 3}},
    )
    sim.schedule_at(
        0.3, lambda: setattr(testbed.loss_models[1], "p", 1.0)
    )
    drain(sim, testbed, until=1.2, settle=2.0)

    arq = testbed.sender.reliable
    assert arq.stats.escalations >= 1
    assert testbed.sender.session.resets_completed >= 1
    assert 1 not in testbed.sender.session.config.active_channels
    seqs = [seq for _, seq in testbed.deliveries]
    assert seqs == sorted(set(seqs))
    assert set(seqs) == set(range(testbed.source.generated))
    assert not arq.unacked and not arq.backlog


# ---------------------------------------------------------------------- #
# batched ARQ surface: submit_many / note_burst / batched retransmissions


class BurstHarness:
    """SenderHarness analog whose stripe path takes whole bursts.

    Models the fast path's recording burst port: ``submit_many`` bursts
    arrive through one ``_stripe_many`` call and are reported back with
    one ``note_burst``.
    """

    def __init__(self, sim, **options):
        self.sent = []
        self.bursts = []
        self.sender = ReliableSender(
            self._stripe, sim, submit_many=self._stripe_many, **options
        )

    def _stripe(self, packet):
        self.sent.append(packet)
        self.sender.note_sent(0, packet)

    def _stripe_many(self, packets):
        burst = list(packets)
        self.bursts.append(burst)
        self.sent.extend(burst)
        self.sender.note_burst(0, burst)

    def submit_burst(self, n, size=100):
        packets = [Packet(size=size, seq=i) for i in range(n)]
        self.sender.submit_many(packets)
        return packets


class TestBatchedArq:
    def test_submit_many_equivalent_to_per_packet_submits(self, sim):
        a = SenderHarness(sim)
        a.submit(6)
        b = BurstHarness(sim)
        b.submit_burst(6)
        assert [p.rseq for p in b.sent] == [p.rseq for p in a.sent]
        assert list(b.sender.unacked) == list(a.sender.unacked)
        assert b.sender.next_rseq == a.sender.next_rseq
        assert len(b.bursts) == 1  # one striper call, not six
        assert b.sender.stats.burst_submits == 1
        assert b.sender.stats.submitted == 6

    def test_submit_many_respects_window_backpressure(self, sim):
        a = SenderHarness(sim, window_packets=4)
        a.submit(6)
        b = BurstHarness(sim, window_packets=4)
        b.submit_burst(6)
        assert [p.rseq for p in b.sent] == [p.rseq for p in a.sent]
        assert b.sender.backlog == a.sender.backlog == 2
        assert b.sender.stats.backpressure_stalls == 2
        a.sender.on_ack(sack(2))
        b.sender.on_ack(sack(2))
        # acks replay the parked tail identically on both harnesses
        assert [p.rseq for p in b.sent] == [p.rseq for p in a.sent]
        assert b.sender.backlog == a.sender.backlog == 0

    def test_note_burst_equivalent_to_note_sent_loop(self, sim):
        a = SenderHarness(sim)
        a.submit(4)
        b = BurstHarness(sim)
        b.submit_burst(4)
        for rseq, ra in a.sender.unacked.items():
            rb = b.sender.unacked[rseq]
            assert (
                rb.transmissions, rb.first_sent, rb.last_sent,
                rb.last_channel, rb.rtx_pending,
            ) == (
                ra.transmissions, ra.first_sent, ra.last_sent,
                ra.last_channel, ra.rtx_pending,
            )

    def test_multi_hole_repair_goes_out_as_one_burst(self, sim):
        h = BurstHarness(sim)
        h.submit_burst(8)
        # rseq 0 and 1 are both lost; SACKs report ever newer data.
        h.sender.rto.sample(0.001)
        for i in range(FAST_RETRANSMIT_HINTS):
            sim.schedule_at(
                0.01 * (i + 1),
                lambda i=i: h.sender.on_ack(sack(0, (2, 4 + i))),
            )
        sim.run(until=0.01 * FAST_RETRANSMIT_HINTS + 0.001)
        assert h.sender.stats.fast_retransmissions == 2
        assert h.sender.stats.batched_retransmissions == 2
        # both holes repaired through one striper burst
        assert sorted(p.rseq for p in h.bursts[-1]) == [0, 1]
        assert h.sender.stats.sack_scans == FAST_RETRANSMIT_HINTS
        assert h.sender.stats.retransmissions == 2
        assert h.sender.retransmitted_bytes[0] == 200
