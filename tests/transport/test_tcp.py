"""Unit tests for the simplified TCP."""

import pytest

from repro.net.ethernet import EthernetInterface
from repro.net.stack import Link, Stack
from repro.sim.loss import DeterministicLoss
from repro.transport.tcp import BulkReceiver, BulkSender, TcpLayer, TcpSegment


def tcp_pair(sim, bandwidth=10e6, queue_limit=50, loss_ab=None):
    s = Stack(sim, "S")
    r = Stack(sim, "R")
    a = EthernetInterface(sim, "eth0", "10.0.1.1")
    b = EthernetInterface(sim, "eth0", "10.0.1.2")
    s.add_interface(a)
    r.add_interface(b)
    link = Link(sim, a, b, bandwidth_bps=bandwidth, prop_delay=0.0005,
                queue_limit=queue_limit, loss_ab=loss_ab)
    s.routing.add("10.0.1.0", 24, a)
    r.routing.add("10.0.1.0", 24, b)
    return TcpLayer(s, sim), TcpLayer(r, sim), link


class TestHandshake:
    def test_connection_establishes(self, sim):
        ts, tr, _ = tcp_pair(sim)
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=0)
        tx.start()
        sim.run(until=0.1)
        assert tx.state == "ESTABLISHED"
        assert rx.established

    def test_lost_syn_retried(self, sim):
        ts, tr, _ = tcp_pair(sim, loss_ab=DeterministicLoss([0]))
        BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=0)
        tx.start()
        sim.run(until=5.0)
        assert tx.state == "ESTABLISHED"

    def test_double_start_rejected(self, sim):
        ts, tr, _ = tcp_pair(sim)
        BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000)
        tx.start()
        with pytest.raises(RuntimeError):
            tx.start()

    def test_duplicate_port_rejected(self, sim):
        ts, tr, _ = tcp_pair(sim)
        BulkReceiver(tr, 80)
        with pytest.raises(ValueError):
            BulkReceiver(tr, 80)


class TestTransfer:
    def test_finite_transfer_completes(self, sim):
        ts, tr, _ = tcp_pair(sim)
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=200_000)
        tx.start()
        sim.run(until=5.0)
        assert rx.bytes_delivered == 200_000
        assert rx.rcv_nxt == 200_000

    def test_goodput_near_line_rate(self, sim):
        ts, tr, _ = tcp_pair(sim)
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000)
        tx.start()
        sim.run(until=3.0)
        mbps = rx.bytes_delivered * 8 / 3.0 / 1e6
        assert mbps > 8.0  # 10 Mbps line, ~9.6 theoretical max

    def test_variable_segment_sizes(self, sim):
        sizes = iter([100, 900, 50, 1460, 333] * 1000)
        ts, tr, _ = tcp_pair(sim)
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000,
                        segment_size_fn=lambda: next(sizes))
        tx.start()
        sim.run(until=1.0)
        assert rx.bytes_delivered > 0
        # stream is contiguous despite mixed sizes
        assert rx.rcv_nxt == rx.bytes_delivered

    def test_cwnd_grows_in_slow_start(self, sim):
        ts, tr, _ = tcp_pair(sim, queue_limit=2000)
        BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000)
        initial_cwnd = tx.cwnd
        tx.start()
        sim.run(until=0.2)
        assert tx.cwnd > initial_cwnd


class TestLossRecovery:
    def test_recovers_from_single_loss(self, sim):
        # segment index 10 lost (plus handshake offset); transfer completes.
        ts, tr, _ = tcp_pair(sim, loss_ab=DeterministicLoss([12]))
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=300_000)
        tx.start()
        sim.run(until=10.0)
        assert rx.bytes_delivered == 300_000
        assert tx.retransmits >= 1

    def test_recovers_from_loss_burst(self, sim):
        ts, tr, _ = tcp_pair(
            sim, loss_ab=DeterministicLoss(range(20, 35))
        )
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=300_000)
        tx.start()
        sim.run(until=20.0)
        assert rx.bytes_delivered == 300_000

    def test_fast_retransmit_triggered_by_dupacks(self, sim):
        ts, tr, _ = tcp_pair(sim, loss_ab=DeterministicLoss([15]))
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=400_000)
        tx.start()
        sim.run(until=10.0)
        assert tx.fast_retransmits >= 1
        assert rx.bytes_delivered == 400_000

    def test_loss_halves_cwnd(self, sim):
        ts, tr, _ = tcp_pair(sim)
        BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000)
        tx.start()
        sim.run(until=3.0)
        # The 50-frame queue forces periodic AIMD loss events.
        assert tx.fast_retransmits + tx.timeouts >= 1

    def test_receiver_tracks_reorder_events(self, sim):
        ts, tr, _ = tcp_pair(sim, loss_ab=DeterministicLoss([15]))
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=200_000)
        tx.start()
        sim.run(until=10.0)
        # The retransmission arrives after later segments: one reorder.
        assert rx.reorder_events >= 1
        assert rx.ooo_segments >= 1


class TestSegment:
    def test_size_includes_header(self):
        segment = TcpSegment(1, 2, 0, 0, frozenset(), payload_size=100)
        assert segment.size == 120

    def test_flags(self):
        segment = TcpSegment(1, 2, 0, 0, frozenset({"SYN"}))
        assert segment.has("SYN") and not segment.has("ACK")

    def test_rtt_estimator_updates(self, sim):
        ts, tr, _ = tcp_pair(sim)
        BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=50_000)
        tx.start()
        sim.run(until=2.0)
        assert tx.srtt is not None
        assert 0 < tx.srtt < 0.5
        assert tx.rto >= tx.MIN_RTO
