"""Integration tests for session-managed striping over simulated UDP."""


from repro.experiments.fault_tolerance import (
    build_session_testbed,
    run_capacity_adaptation,
    run_link_failure,
    run_state_corruption,
)
from repro.sim.engine import Simulator
from repro.transport.session_striping import ChannelFailureDetector


class TestSessionDataPath:
    def test_lossless_fifo(self):
        sim = Simulator()
        testbed = build_session_testbed(sim, n_channels=2)
        sim.run(until=0.5)
        seqs = [seq for _, seq in testbed.deliveries]
        assert len(seqs) > 100
        assert seqs == sorted(seqs)

    def test_mid_run_reset_preserves_order(self):
        sim = Simulator()
        testbed = build_session_testbed(sim, n_channels=2)
        sim.schedule_at(0.25, testbed.sender.session.initiate_reset)
        sim.run(until=0.6)
        # Data keeps flowing across the reset; what is delivered in the new
        # epoch stays in order (a bounded set may be lost in flight).
        assert testbed.sender.session.resets_completed == 1
        after = [seq for t, seq in testbed.deliveries if t > 0.3]
        assert after == sorted(after)
        assert after[-1] > 200

    def test_reset_over_lossy_control_path_retries(self):
        sim = Simulator()
        testbed = build_session_testbed(
            sim, n_channels=2, loss_rates=(0.3,)
        )
        sim.schedule_at(0.2, testbed.sender.session.initiate_reset)
        sim.run(until=2.0)
        assert testbed.sender.session.resets_completed == 1
        assert testbed.sender.session.state == "running"


class TestLinkFailureScenario:
    def test_without_handling_stream_stalls(self):
        result = run_link_failure(fail_at=0.5, total_s=1.6)
        row = result.rows[0]
        assert not row.with_detector
        assert row.goodput_after < 0.5  # head-of-line blocked

    def test_with_detector_stream_survives(self):
        result = run_link_failure(fail_at=0.5, total_s=1.6)
        row = result.rows[1]
        assert row.with_detector
        assert row.surviving_channels == 2
        assert row.resets >= 1
        # roughly 2/3 of the 3-channel rate
        assert row.goodput_after > 0.5 * row.goodput_before

    def test_survivor_stream_is_fifo(self):
        sim = Simulator()
        detector = ChannelFailureDetector(sim, silence_threshold=0.2)
        testbed = build_session_testbed(
            sim, n_channels=3, link_mbps=(10.0,), loss_rates=(0.0,),
            failure_detector=detector,
        )
        sim.schedule_at(
            0.5, lambda: setattr(testbed.loss_models[1], "p", 1.0)
        )
        sim.run(until=1.6)
        after = [seq for t, seq in testbed.deliveries if t > 1.0]
        assert after == sorted(after)
        assert len(after) > 100


class TestCorruptionScenario:
    def test_markers_alone_cannot_fix_round_corruption(self):
        result = run_state_corruption(corrupt_at=0.5, total_s=2.0)
        unchecked = result.rows[0]
        assert unchecked.ooo_after_window > 50

    def test_local_checker_corrects(self):
        result = run_state_corruption(corrupt_at=0.5, total_s=2.0)
        checked = result.rows[1]
        assert checked.violations > 0
        assert checked.resets >= 1
        # residual OOO is back at the quasi-FIFO background level
        assert checked.ooo_after_window < result.rows[0].ooo_after_window / 5


class TestAdaptationScenario:
    def test_adaptive_quanta_recover_throughput(self):
        result = run_capacity_adaptation(change_at=0.8, total_s=3.0)
        static = result.rows[0]
        adaptive = result.rows[1]
        assert adaptive.adaptations >= 1
        assert adaptive.goodput_after > 1.8 * static.goodput_after
        # learned weights approximate the true 4:1 capacity ratio
        ratio = adaptive.final_quanta[0] / adaptive.final_quanta[1]
        assert 2.5 < ratio < 6.0
