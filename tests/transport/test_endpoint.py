"""Tests for the transport-agnostic endpoint layer.

Covers the discipline registry (any (s0, f, g) scheme into any
transport), the shared sender/receiver pipelines over in-memory ports,
the kernel surface for non-causal sharers, and the dead-channel
regressions for the plain striped-socket and TCP paths.
"""

import pytest

from repro.baselines import (
    BondingFrame,
    MpppDiscipline,
    MpppFragment,
    RandomSelection,
    ShortestQueueFirst,
)
from repro.core.kernel import SharerKernel, kernel_for
from repro.core.packet import MarkerPacket, Packet, is_marker
from repro.core.srr import SRR, make_rr
from repro.core.striper import ListPort, MarkerPolicy, Striper
from repro.core.transform import LoadSharer, TransformedLoadSharer
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.experiments.tcp_channels import build_tcp_striped
from repro.sim.loss import BernoulliLoss
from repro.transport.endpoint import (
    DISCIPLINES,
    ChannelFailureDetector,
    FastStriper,
    StripeReceiverPipeline,
    StripeSenderPipeline,
    make_discipline,
    receiver_mode_for,
    resolve_discipline,
)


def make_ports(n, limit=None):
    return [ListPort(limit) for _ in range(n)]


class TestDisciplineRegistry:
    @pytest.mark.parametrize("name", sorted(set(DISCIPLINES)))
    def test_every_name_builds(self, name):
        sharer = make_discipline(name, 3)
        assert sharer.n_channels == 3
        assert hasattr(sharer, "choose") and hasattr(sharer, "notify_sent")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown discipline"):
            make_discipline("fifo", 2)

    def test_resolve_wraps_causal_fq(self):
        sharer = resolve_discipline(SRR([100.0, 100.0]), 2)
        assert isinstance(sharer, TransformedLoadSharer)

    def test_resolve_passes_sharer_through(self):
        sqf = ShortestQueueFirst(2)
        assert resolve_discipline(sqf, 2) is sqf

    def test_resolve_channel_mismatch(self):
        with pytest.raises(ValueError):
            resolve_discipline(SRR([100.0, 100.0]), 3)

    def test_resolve_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_discipline(42, 2)

    def test_receiver_modes(self):
        assert receiver_mode_for(SRR([1.0, 1.0]), markers=True) == "marker"
        assert receiver_mode_for(make_discipline("rr", 2)) == "plain"
        assert receiver_mode_for(ShortestQueueFirst(2)) == "none"
        assert receiver_mode_for(make_discipline("mppp", 2)) == "mppp"
        assert receiver_mode_for(make_discipline("bonding", 2)) == "bonding"
        # Marker-free disciplines: direct even when markers are offered.
        hash_based = make_discipline("address_hash", 2)
        assert receiver_mode_for(hash_based) == "direct"
        assert receiver_mode_for(hash_based, markers=True) == "direct"
        assert receiver_mode_for(make_discipline("sprinklers", 2)) == "direct"

    def test_sync_model_families(self):
        from repro.transport.endpoint import SYNC_MODELS, sync_model_for

        assert set(SYNC_MODELS) == {"marker", "hash", "header"}
        assert sync_model_for(SRR([1.0, 1.0]), markers=True) == "marker"
        assert sync_model_for(make_discipline("rr", 2)) == "marker"
        assert sync_model_for(ShortestQueueFirst(2)) == "marker"
        assert sync_model_for(make_discipline("sprinklers", 2)) == "hash"
        assert sync_model_for(make_discipline("address_hash", 2)) == "hash"
        assert sync_model_for(make_discipline("mppp", 2)) == "header"
        assert sync_model_for(make_discipline("bonding", 2)) == "header"
        assert sync_model_for("direct") == "hash"  # mode strings work too
        with pytest.raises(ValueError, match="unknown receiver mode"):
            sync_model_for("telepathy")


class TestSharerKernel:
    def test_kernel_for_builds_sharer_kernel(self):
        kernel = kernel_for(ShortestQueueFirst(2))
        assert isinstance(kernel, SharerKernel)
        assert kernel.n_channels == 2

    def test_step_matches_direct_use(self):
        import random

        kernel = kernel_for(RandomSelection(3, random.Random(7)))
        direct = RandomSelection(3, random.Random(7))
        packets = [Packet(size=100, seq=i) for i in range(20)]
        via_kernel = [kernel.step_packet(p) for p in packets]
        via_direct = []
        for p in packets:
            c = direct.choose(p, None)
            direct.notify_sent(c, p)
            via_direct.append(c)
        assert via_kernel == via_direct

    def test_snapshot_restore_round_trip(self):
        import random

        kernel = kernel_for(RandomSelection(3, random.Random(11)))
        for _ in range(5):
            kernel.step(100)
        snap = kernel.snapshot()
        first = [kernel.step(100) for _ in range(10)]
        kernel.restore(snap)
        replay = [kernel.step(100) for _ in range(10)]
        assert first == replay


class TestSenderPipeline:
    def test_matches_manual_striper_with_markers(self):
        policy = MarkerPolicy(interval_rounds=1)
        ports_a = make_ports(3)
        manual = Striper(
            TransformedLoadSharer(SRR([500.0] * 3)), ports_a, policy
        )
        ports_b = make_ports(3)
        pipeline = StripeSenderPipeline(
            ports_b, SRR([500.0] * 3), marker_policy=policy
        )
        for i in range(30):
            packet = Packet(size=200 + (i * 37) % 900, seq=i)
            manual.submit(packet)
            pipeline.submit_packet(
                Packet(size=packet.size, seq=i)
            )
        for a, b in zip(ports_a, ports_b):
            assert [type(p).__name__ for p in a.sent] == [
                type(p).__name__ for p in b.sent
            ]
            assert [p.seq for p in a.data_packets()] == [
                p.seq for p in b.data_packets()
            ]

    def test_named_discipline_and_counters(self):
        ports = make_ports(2)
        pipeline = StripeSenderPipeline(ports, "rr")
        first = pipeline.send_message(100)
        second = pipeline.send_message(100)
        assert (first.seq, second.seq) == (0, 1)
        assert pipeline.messages_submitted == 2
        assert pipeline.backlog == 0
        assert [len(p.sent) for p in ports] == [1, 1]

    def test_mppp_discipline_wraps_with_headers(self):
        ports = make_ports(2)
        pipeline = StripeSenderPipeline(ports, "mppp")
        for i in range(6):
            pipeline.send_message(500)
        fragments = [p for port in ports for p in port.sent]
        assert all(isinstance(f, MpppFragment) for f in fragments)
        assert sorted(f.sequence for f in fragments) == list(range(6))
        assert all(f.size == 500 + 4 for f in fragments)

    def test_bonding_discipline_carves_frames(self):
        ports = make_ports(2)
        pipeline = StripeSenderPipeline(
            ports, "bonding", discipline_options={"frame_bytes": 256}
        )
        pipeline.send_message(1000)  # 3 full frames + 232B residue
        frames = [p for port in ports for p in port.sent]
        assert all(isinstance(f, BondingFrame) for f in frames)
        assert len(frames) == 3
        pipeline.flush()
        frames = [p for port in ports for p in port.sent]
        assert len(frames) == 4
        assert all(f.size == 256 for f in frames)

    def test_fast_pump_selected_by_port_capabilities(self):
        plain = StripeSenderPipeline(make_ports(2), "rr")
        assert not isinstance(plain.striper, FastStriper)

        class BurstPort(ListPort):
            def send_burst(self, packets):
                self.sent.extend(packets)

            def free_capacity(self):
                return 1 << 30

        fast = StripeSenderPipeline([BurstPort(), BurstPort()], "rr")
        assert isinstance(fast.striper, FastStriper)

    def test_keepalive_requires_policy_and_scheduler(self):
        with pytest.raises(ValueError, match="marker policy"):
            StripeSenderPipeline(
                make_ports(2), "rr", marker_keepalive_s=0.1
            )


class TestReceiverPipeline:
    def feed(self, pipeline, algorithm, n_packets=20, n_channels=2):
        """Stripe a stream with a local striper and push arrivals in order."""
        ports = make_ports(n_channels)
        striper = Striper(TransformedLoadSharer(algorithm), ports)
        for i in range(n_packets):
            striper.submit(Packet(size=100, seq=i))
        # interleave per-channel FIFOs in logical order for a loss-free run
        cursors = [0] * n_channels
        kernel = kernel_for(SRR([100.0] * n_channels))
        for _ in range(n_packets):
            channel = kernel.step(100)
            pipeline.push(channel, ports[channel].sent[cursors[channel]])
            cursors[channel] += 1

    def test_plain_mode_delivers_fifo(self):
        pipeline = StripeReceiverPipeline(
            2, SRR([100.0, 100.0]), mode="plain"
        )
        self.feed(pipeline, SRR([100.0, 100.0]))
        assert [p.seq for p in pipeline.delivered] == list(range(20))

    def test_buffer_cap_drop_rule(self):
        pipeline = StripeReceiverPipeline(
            2, SRR([100.0, 100.0]), mode="plain", buffer_packets=2
        )
        # channel 1 floods while channel 0 stays silent: logical reception
        # blocks on channel 0 so channel 1's buffer fills and overflows.
        for i in range(6):
            pipeline.push(1, Packet(size=100, seq=i))
        assert pipeline.buffer_drops == 4
        assert pipeline.delivered == []

    def test_piggybacked_credit_reaches_sink(self):
        pipeline = StripeReceiverPipeline(2, SRR([100.0, 100.0]))
        seen = []
        pipeline.credit_sink = lambda ch, credit: seen.append((ch, credit))
        pipeline.push(
            0,
            MarkerPacket(channel=0, round_number=0, deficit=100.0, credit=7),
        )
        assert seen == [(0, 7)]

    def test_credit_issued_as_packets_consumed(self):
        class StubCredit:
            def __init__(self):
                self.consumed = []

            def on_consumed(self, channel):
                self.consumed.append(channel)

        credit = StubCredit()
        pipeline = StripeReceiverPipeline(
            2, SRR([100.0, 100.0]), mode="plain", credit=credit
        )
        self.feed(pipeline, SRR([100.0, 100.0]), n_packets=8)
        assert sorted(credit.consumed) == [0] * 4 + [1] * 4

    def test_piggybacked_sack_reaches_sink(self):
        from repro.core.markers import attach_sack
        from repro.core.packet import SackInfo

        pipeline = StripeReceiverPipeline(2, SRR([100.0, 100.0]))
        seen = []
        pipeline.sack_sink = seen.append
        marker = MarkerPacket(channel=0, round_number=0, deficit=100.0)
        attach_sack(marker, SackInfo(cum_ack=5, blocks=((7, 9),)))
        pipeline.push(0, marker)
        assert seen == [SackInfo(cum_ack=5, blocks=((7, 9),))]

    def test_push_wire_decodes_markers(self):
        from repro.core.markers import encode_marker

        pipeline = StripeReceiverPipeline(2, SRR([100.0, 100.0]))
        wire = encode_marker(
            MarkerPacket(channel=0, round_number=1, deficit=100.0, credit=3)
        )
        seen = []
        pipeline.credit_sink = lambda ch, credit: seen.append((ch, credit))
        pipeline.push_wire(0, wire)
        assert seen == [(0, 3)]
        assert pipeline.marker_decode_errors == 0

    def test_push_wire_counts_and_drops_malformed_frames(self):
        pipeline = StripeReceiverPipeline(2, SRR([100.0, 100.0]))
        for blob in (b"", b"\x00" * 31, b"\xff" * 32, b"\x00" * 40):
            assert pipeline.push_wire(0, blob) == []
        assert pipeline.marker_decode_errors == 4
        assert pipeline.resequencer.stats.markers_received == 0

    def test_mppp_mode_strips_headers(self):
        discipline = MpppDiscipline(2)
        pipeline = StripeReceiverPipeline(2, mode="mppp")
        sharer_ports = make_ports(2)
        sender = StripeSenderPipeline(sharer_ports, discipline)
        for i in range(10):
            sender.send_message(300)
        # arbitrary arrival interleaving: sequence numbers fix the order
        for channel in (1, 0):
            for fragment in sharer_ports[channel].sent:
                pipeline.push(channel, fragment)
        assert [p.seq for p in pipeline.delivered] == list(range(10))
        assert all(p.size == 300 for p in pipeline.delivered)


class TestFailureDetectorPipeline:
    def test_plain_pipeline_survives_dead_channel(self, sim):
        detector = ChannelFailureDetector(
            sim, silence_threshold=0.05, check_interval=0.01
        )
        pipeline = StripeReceiverPipeline(
            2, SRR([100.0, 100.0]), mode="plain", failure_detector=detector
        )
        # Equal quanta + equal sizes => strict alternation 0,1,0,1,...
        # Channel 1 dies after seq 5; channel 0 keeps receiving.
        def arrival(t, channel, seq):
            sim.schedule_at(
                t, lambda: pipeline.push(channel, Packet(size=100, seq=seq))
            )

        seq = 0
        t = 0.0
        while seq < 6:  # both channels alive
            arrival(t, seq % 2, seq)
            seq += 1
            t += 0.005
        for dead_seq in range(6, 20, 2):  # only channel 0 from here on
            arrival(t, 0, dead_seq)
            t += 0.01
        sim.run(until=1.0)
        assert detector.failures_reported == [1]
        # the receiver kept delivering channel 0's packets (with gaps)
        delivered = [p.seq for p in pipeline.delivered]
        assert delivered[:6] == [0, 1, 2, 3, 4, 5]
        assert set(range(6, 20, 2)) <= set(delivered)
        assert pipeline.resequencer.assumed_lost > 0

    def test_striped_socket_plain_path_survives_dead_channel(self, sim):
        detector = ChannelFailureDetector(
            sim, silence_threshold=0.1, check_interval=0.02
        )
        config = SocketTestbedConfig(
            mode="plain", failure_detector=detector, message_bytes=1000
        )
        testbed = build_socket_testbed(sim, config)

        def kill_channel_one():
            testbed.loss_models[1].p = 1.0

        sim.schedule_at(0.3, kill_channel_one)
        sim.run(until=1.5)
        assert detector.failures_reported == [1]
        late = testbed.deliveries_after(0.8)
        assert late, "delivery stalled after the channel died"
        assert testbed.receiver.resequencer.assumed_lost > 0

    def test_striped_tcp_path_survives_dead_connection(self, sim):
        detector = ChannelFailureDetector(
            sim, silence_threshold=0.15, check_interval=0.02
        )
        sender, receiver, links = build_tcp_striped(
            sim, failure_detector=detector
        )

        progress = {}

        def kill_channel_zero():
            links[0].ab.loss_model = BernoulliLoss(1.0)
            progress["at_failure"] = len(receiver.delivered)

        sim.schedule_at(0.5, kill_channel_zero)
        sim.run(until=3.0)
        assert 0 in detector.failures_reported
        # everything buffered on the surviving connection was flushed
        # instead of stalling behind the dead channel forever
        assert len(receiver.delivered) > progress["at_failure"]
        assert receiver.resequencer.assumed_lost > 0
        assert receiver.resequencer.buffered == 0


class TestAdapterSurfaces:
    def test_stacks_share_the_pipeline(self):
        from repro.transport.fast_path import (
            FastStripedReceiver,
            FastStripedSender,
        )
        from repro.transport.socket_striping import (
            StripedSocketReceiver,
            StripedSocketSender,
        )
        from repro.transport.tcp_striping import (
            StripedTcpReceiver,
            StripedTcpSender,
        )

        assert issubclass(StripedSocketSender, StripeSenderPipeline)
        assert issubclass(FastStripedSender, StripeSenderPipeline)
        assert issubclass(StripedTcpSender, StripeSenderPipeline)
        assert issubclass(StripedSocketReceiver, StripeReceiverPipeline)
        assert issubclass(FastStripedReceiver, StripeReceiverPipeline)
        assert issubclass(StripedTcpReceiver, StripeReceiverPipeline)


class TestSenderPipelineClose:
    def test_keepalive_stops_after_close(self, sim):
        """A closed pipeline's pending keepalive tick must not fire
        markers into ports that may already be torn down."""
        ports = make_ports(2)
        pipeline = StripeSenderPipeline(
            ports, SRR([100.0, 100.0]),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=sim, marker_keepalive_s=0.05,
        )
        pipeline.send_message(100)
        sim.run(until=0.2)
        idle_markers = sum(
            1 for port in ports for p in port.sent if is_marker(p)
        )
        assert idle_markers > 2  # keepalives flowed while open
        pipeline.close()
        sim.run(until=1.0)
        after = sum(
            1 for port in ports for p in port.sent if is_marker(p)
        )
        assert after == idle_markers


class TestDetectorBounds:
    def test_note_arrival_out_of_range_raises(self, sim):
        detector = ChannelFailureDetector(sim)
        detector.bind(2, lambda channel: None)
        with pytest.raises(ValueError, match="arrival on port 5"):
            detector.note_arrival(5)
        with pytest.raises(ValueError):
            detector.note_arrival(-1)
        with pytest.raises(ValueError, match="was bind"):
            ChannelFailureDetector(sim).note_arrival(0)

    def test_idle_sender_keepalive_prevents_false_failure(self, sim):
        """The source stops but the channels are healthy: keepalive
        markers must keep the silence watchdog quiet."""
        from repro.sim.channel import Channel
        from repro.transport.fast_path import FastChannelPort

        channels = [
            Channel(
                sim, bandwidth_bps=8e6, prop_delay=0.5e-3,
                queue_limit=16, name=f"ch{i}",
            )
            for i in range(2)
        ]
        ports = [FastChannelPort(ch) for ch in channels]
        sender = StripeSenderPipeline(
            ports, SRR([500.0, 500.0]),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=sim, marker_keepalive_s=0.05,
        )
        detector = ChannelFailureDetector(
            sim, silence_threshold=0.15, check_interval=0.02
        )
        receiver = StripeReceiverPipeline(
            2, SRR([500.0, 500.0]), mode="marker",
            failure_detector=detector, sim=sim,
        )
        for index, channel in enumerate(channels):
            channel.on_deliver = receiver.channel_handler(index)
            channel.on_space = sender._pump

        def tick():
            if sim.now < 0.2:  # the source stops at t=0.2
                sender.send_message(500)
                sim.schedule(0.001, tick)

        sim.schedule_at(0.0, tick)
        sim.run(until=1.5)
        assert detector.failures_reported == []
        assert len(receiver.delivered) == 200
        # The watchdog stayed quiet because keepalives kept arriving,
        # not because it never looked.
        assert receiver.resequencer.stats.markers_received > 220


class TestFailChannelAllModes:
    """Satellite: ``fail_channel`` works on every factory path."""

    @pytest.mark.parametrize(
        "mode", ["marker", "plain", "none", "mppp", "bonding"]
    )
    def test_fail_then_revive_never_raises(self, mode):
        algorithm = (
            SRR([100.0, 100.0]) if mode in ("marker", "plain") else None
        )
        pipeline = StripeReceiverPipeline(2, algorithm, mode=mode)
        assert pipeline.fail_channel(1) == []
        assert pipeline.failed_channels == {1}
        pipeline.revive_channel(1)
        assert pipeline.failed_channels == set()

    def test_marker_mode_survives_and_revives(self):
        pipeline = StripeReceiverPipeline(
            2, SRR([100.0, 100.0]), mode="marker"
        )
        # Strict alternation 0,1,0,1 with equal quanta.
        for seq in range(4):
            pipeline.push(seq % 2, Packet(size=100, seq=seq))
        pipeline.fail_channel(1)
        for seq in range(4, 10, 2):
            pipeline.push(0, Packet(size=100, seq=seq))
        delivered = [p.seq for p in pipeline.delivered]
        assert set(range(4, 10, 2)) <= set(delivered)
        # Revival re-enters the adoption path: the next marker resyncs.
        pipeline.revive_channel(1)
        resequencer = pipeline.resequencer
        assert resequencer.sync_round[1] is None
        assert resequencer.pending[1]

    def test_mppp_mode_fail_skips_gap_and_flushes(self):
        discipline = MpppDiscipline(2)
        ports = make_ports(2)
        sender = StripeSenderPipeline(ports, discipline)
        for i in range(6):
            sender.send_message(300)
        fragments = sorted(
            (f for port in ports for f in port.sent),
            key=lambda f: f.sequence,
        )
        pipeline = StripeReceiverPipeline(2, mode="mppp")
        pipeline.push(0, fragments[0])
        pipeline.push(0, fragments[1])
        # Fragment 2 is lost on the dying channel; 3..5 arrive and wait.
        for fragment in fragments[3:]:
            pipeline.push(1, fragment)
        assert [p.seq for p in pipeline.delivered] == [0, 1]
        released = pipeline.fail_channel(0)
        assert [p.seq for p in released] == [3, 4, 5]
        assert pipeline.resequencer.gaps_skipped == 1
