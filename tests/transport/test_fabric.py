"""Unit tests for the session fabric: flow table, weighted DRR, interop.

Covers the flow registry (weight resolution, O(1) lookups), the
FabricScheduler's DRR semantics (visit crediting, rotation, mid-visit
pause under a closed downstream gate, snapshot/restore), the per-flow
backpressure contract against PR-5's reliable mode (a stalled flow must
neither block siblings nor leak shared window slots), and the 512-flow
fairness smoke run backing ``make fabric-smoke``.
"""

from typing import List, Tuple

import pytest

from repro.core.packet import Packet
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.transport.endpoint import (
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.fabric import (
    FabricScheduler,
    FlowTable,
    logarithmic_tenant_weights,
)
from repro.transport.fast_path import FastChannelPort


def pkt(size: int = 100, **kwargs) -> Packet:
    return Packet(size=size, **kwargs)


class TestFlowTable:
    def test_weight_resolution_explicit_beats_tenant_beats_default(self):
        table = FlowTable(
            tenant_weights={"gold": 4.0}, default_weight=1.0,
            quantum_bytes=100.0,
        )
        assert table.register("a", weight=9.0, tenant="gold").weight == 9.0
        assert table.register("b", tenant="gold").weight == 4.0
        assert table.register("c", tenant="unknown").weight == 1.0
        assert table.register("d").weight == 1.0
        # quantum scales with the resolved weight
        assert table["b"].quantum == 400.0

    def test_duplicate_and_invalid_registration(self):
        table = FlowTable()
        table.register("a")
        with pytest.raises(ValueError):
            table.register("a")
        with pytest.raises(ValueError):
            table.register("b", weight=0.0)

    def test_lookup_remove_and_tenant_totals(self):
        table = FlowTable(tenant_weights={"t1": 2.0})
        table.register("a", tenant="t1")
        table.register("b", tenant="t2")
        assert "a" in table and table.get("missing") is None
        assert len(table) == 2
        table["a"].serviced_bytes = 300
        table["b"].serviced_bytes = 100
        assert table.tenant_totals() == {"t1": 300, "t2": 100}
        table.remove("a")
        assert "a" not in table and len(table) == 1

    def test_logarithmic_tenant_weights(self):
        weights = logarithmic_tenant_weights({"big": 7, "small": 1, "none": 0})
        assert weights["none"] == 1.0
        assert weights["small"] == 2.0  # 1 + log2(2)
        assert weights["big"] == 4.0  # 1 + log2(8)
        # sublinear: 7x the flows buys 2x the weight, not 7x
        assert weights["big"] / weights["small"] < 7


class TestFabricScheduler:
    def drain_setup(self, **kwargs):
        table = FlowTable(quantum_bytes=100.0)
        fabric = FabricScheduler(table, **kwargs)
        out: List[Packet] = []
        fabric.bind(out.append)
        return table, fabric, out

    def test_weighted_service_order(self):
        table, fabric, out = self.drain_setup()
        table.register("w1", weight=1.0)
        table.register("w2", weight=2.0)
        gate_open = [False]
        fabric.bind(out.append, ready=lambda: gate_open[0])
        for k in range(6):
            fabric.submit("w1", pkt(100, label=f"a{k}"))
            fabric.submit("w2", pkt(100, label=f"b{k}"))
        gate_open[0] = True
        fabric.pump()
        # per DRR lap: one packet from w1, two from w2
        assert [p.label for p in out][:6] == ["a0", "b0", "b1", "a1", "b2",
                                              "b3"]

    def test_flow_stamping_and_stats(self):
        table, fabric, out = self.drain_setup()
        fabric.submit("f", pkt(100))
        assert out[0].flow == "f"
        flow = table["f"]  # auto-registered
        assert flow.submitted_packets == flow.serviced_packets == 1
        assert fabric.stats.packets_scheduled == 1
        assert fabric.stats.bytes_scheduled == 100

    def test_auto_register_off_raises(self):
        _, fabric, _ = self.drain_setup(auto_register=False)
        with pytest.raises(KeyError):
            fabric.submit("ghost", pkt())

    def test_per_flow_backpressure_is_isolated(self):
        table, fabric, out = self.drain_setup(flow_buffer_packets=2)
        fabric.bind(out.append, ready=lambda: False)  # nothing drains
        for _ in range(5):
            fabric.submit("full", pkt())
        assert not fabric.can_submit("full")
        assert fabric.can_submit("other")  # sibling unaffected
        assert table["full"].backlog == 2
        assert table["full"].refusals == 3
        assert fabric.stats.refusals == 3

    def test_mid_visit_pause_resumes_in_place(self):
        table, fabric, out = self.drain_setup()
        table.register("x", weight=2.0)  # quantum 200 = two packets/visit
        table.register("y", weight=1.0)
        budget = [0]

        def gate():
            return budget[0] > 0

        def downstream(packet):
            out.append(packet)
            budget[0] -= 1

        fabric.bind(downstream, ready=gate)
        for k in range(4):
            fabric.submit("x", pkt(100, label=f"x{k}"))
            fabric.submit("y", pkt(100, label=f"y{k}"))
        budget[0] = 1
        fabric.pump()
        # x's visit paused mid-way: one of its two packets went out.
        assert [p.label for p in out] == ["x0"]
        budget[0] = 100
        fabric.pump()
        # The resumed pump finishes x's visit (no re-credit) then proceeds
        # in the same lap order.
        assert [p.label for p in out][:6] == ["x0", "x1", "y0", "x2", "x3",
                                              "y1"]

    def test_snapshot_restore_roundtrip(self):
        table, fabric, out = self.drain_setup()
        table.register("a", weight=1.5)
        table.register("b", weight=1.0)
        gate_open = [True]
        fabric.bind(out.append, ready=lambda: gate_open[0])
        gate_open[0] = False
        for k in range(4):
            fabric.submit("a", pkt(100, label=f"a{k}"))
            fabric.submit("b", pkt(100, label=f"b{k}"))
        gate_open[0] = True
        budget_pump = fabric.pump()
        assert budget_pump > 0
        snap = fabric.snapshot()

        # Drain the original to completion and record the tail order.
        gate_open[0] = True
        fabric.pump()
        tail_a = [p.label for p in out[budget_pump:]]

        # Rebuild the same queues, restore the snapshot, drain again: the
        # tail must replay identically.
        table2 = FlowTable(quantum_bytes=100.0)
        fabric2 = FabricScheduler(table2)
        out2: List[Packet] = []
        closed = [True]
        fabric2.bind(out2.append, ready=lambda: not closed[0])
        table2.register("a", weight=1.5)
        table2.register("b", weight=1.0)
        for k in range(4):
            fabric2.submit("a", pkt(100, label=f"a{k}"))
            fabric2.submit("b", pkt(100, label=f"b{k}"))
        # Fast-forward: drop the packets the original already serviced.
        for packet in out[:budget_pump]:
            flow = table2[packet.flow]
            assert flow.queue.popleft().label == packet.label
            if not flow.queue:
                flow.active = False
        fabric2.restore(snap)
        closed[0] = False
        fabric2.pump()
        assert [p.label for p in out2] == tail_a

    def test_restore_unknown_flow_rejected(self):
        _, fabric, _ = self.drain_setup()
        fabric.submit("a", pkt())
        snap = fabric.snapshot()
        other = FabricScheduler(FlowTable())
        with pytest.raises(ValueError):
            other.restore(snap)


class ReliableFabricRig:
    """Two channels, reliable mode, a fabric with a small per-flow cap."""

    def __init__(self, sim: Simulator, flow_buffer_packets: int = 4) -> None:
        self.sim = sim
        self.channels = [
            Channel(sim, bandwidth_bps=8e6, prop_delay=0.5e-3,
                    queue_limit=32, name=f"ch{i}")
            for i in range(2)
        ]
        ports = [FastChannelPort(ch) for ch in self.channels]
        quanta = [200.0, 200.0]
        self.fabric = FabricScheduler(
            FlowTable(quantum_bytes=200.0),
            flow_buffer_packets=flow_buffer_packets,
        )
        self.sender = StripeSenderPipeline(
            ports,
            SRR(quanta),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=sim,
            marker_keepalive_s=0.02,
            reliability="reliable",
            fabric=self.fabric,
        )
        self.delivered: List[Tuple[str, int]] = []
        self.receiver = StripeReceiverPipeline(
            2,
            SRR(quanta),
            mode="marker",
            on_message=lambda p: self.delivered.append(p.payload),
            sim=sim,
            reliability="reliable",
            send_ack=lambda sack: sim.schedule(
                0.5e-3, self.sender.on_ack, sack
            ),
        )
        for index, channel in enumerate(self.channels):
            channel.on_deliver = self.receiver.channel_handler(index)
            channel.on_space = self.sender._pump


class TestReliableInterop:
    """Satellite 6: per-flow backpressure vs the PR-5 reliable mode."""

    def test_stalled_flow_blocks_neither_siblings_nor_window(self):
        sim = Simulator()
        rig = ReliableFabricRig(sim, flow_buffer_packets=4)
        sender = rig.sender

        # Flow A floods far beyond its 4-packet fabric queue in one burst
        # (an aggressive tenant); flow B trickles alongside.
        a_accepted = sum(
            1 if sender.submit("A", pkt(200, payload=("A", k))) else 0
            for k in range(200)
        )
        assert a_accepted < 200, "the flow cap never engaged"
        assert not sender.can_submit(flow_id="A")  # A is backpressured...
        assert sender.can_submit(flow_id="B")  # ...B is not

        b_sent = 0

        def trickle():
            nonlocal b_sent
            if b_sent >= 50:
                return
            # B honors its own (open) gate, never consults A's.
            if sender.can_submit(flow_id="B"):
                assert sender.submit("B", pkt(200, payload=("B", b_sent)))
                b_sent += 1
            sim.schedule(1e-3, trickle)

        sim.schedule_at(0.0, trickle)
        sim.run(until=0.5)

        # Every accepted packet of both flows arrived exactly once.
        a_delivered = [k for f, k in rig.delivered if f == "A"]
        b_delivered = [k for f, k in rig.delivered if f == "B"]
        assert b_sent == 50 and b_delivered == list(range(50)), (
            "the stalled flow A throttled its sibling B"
        )
        assert a_delivered == list(range(a_accepted))

        # No leaked window slots: the ARQ window fully drained, and the
        # refusals were absorbed by the fabric, not the shared window.
        arq = sender.reliable
        assert not arq.unacked and not arq.backlog
        assert rig.fabric.table["A"].refusals == 200 - a_accepted
        assert rig.fabric.backlog == 0

    def test_window_reopen_refills_from_fabric(self):
        sim = Simulator()
        rig = ReliableFabricRig(sim, flow_buffer_packets=256)
        sender = rig.sender
        for k in range(150):
            sender.submit("A", pkt(200, payload=("A", k)))
        # More packets were queued than the downstream (ARQ window +
        # striper backlog gate) accepted up front: completing the run
        # requires the window-open / port-space pumps to keep refilling
        # from the fabric queues.
        assert 0 < len(sender.reliable.unacked) <= 64
        assert rig.fabric.backlog > 0
        sim.run(until=1.0)
        assert [k for f, k in rig.delivered] == list(range(150))
        assert not sender.reliable.unacked


class TestFabricSmoke:
    """The 512-flow quick fairness run behind ``make fabric-smoke``."""

    def test_512_flows_fair_within_tenants(self):
        from repro.experiments.fabric import run_fabric

        result = run_fabric(n_flows=512)
        assert result.delivered_packets == result.total_packets
        assert result.jain_min >= 0.95, result.render()
        assert result.max_share_error <= 0.10, result.render()
