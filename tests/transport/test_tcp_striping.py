"""Tests for striping over TCP connections (transport channels, §2)."""

import pytest

from repro.experiments.tcp_channels import build_tcp_striped
from repro.net.ethernet import EthernetInterface
from repro.net.stack import Link, Stack
from repro.transport.tcp import BulkReceiver, BulkSender, TcpLayer


class TestTcpChannelStriping:
    def test_guaranteed_fifo_no_markers(self, sim):
        sender, receiver, _ = build_tcp_striped(sim)
        sim.run(until=2.0)
        seqs = [p.seq for p in receiver.delivered]
        assert len(seqs) > 300
        assert seqs == sorted(seqs)
        # no marker machinery anywhere
        assert sender.striper.markers_sent == 0

    def test_aggregate_exceeds_single_channel(self, sim):
        sender, receiver, _ = build_tcp_striped(sim, n_channels=3)
        sim.run(until=2.0)
        delivered_bytes = sum(p.size for p in receiver.delivered)
        mbps = delivered_bytes * 8 / 2.0 / 1e6
        assert mbps > 1.7 * 9.0  # well past one 10 Mbps link

    def test_fifo_survives_channel_packet_loss(self, sim):
        """TCP repairs losses inside each channel, so the striped stream
        stays *guaranteed* FIFO even over lossy links — the reliability
        is inherited from the channel, exactly the paper's point."""
        sender, receiver, _ = build_tcp_striped(sim, loss=0.05, seed=3)
        sim.run(until=4.0)
        seqs = [p.seq for p in receiver.delivered]
        assert len(seqs) > 200
        assert seqs == sorted(seqs)
        # losses really happened inside the channels
        assert any(c.retransmits > 0 for c in sender.connections)

    def test_message_boundaries_preserved(self, sim):
        sender, receiver, _ = build_tcp_striped(
            sim, message_sizes=(137, 1460, 999)
        )
        sim.run(until=1.0)
        assert receiver.delivered
        assert {p.size for p in receiver.delivered} <= {137, 1460, 999}

    def test_backpressure_bounds_connection_queue(self, sim):
        sender, receiver, _ = build_tcp_striped(sim, link_mbps=1.0)
        sim.run(until=1.0)
        for connection in sender.connections:
            assert connection.queued_message_bytes <= 64 * 1024 + 1460


class TestMessageModeUnit:
    def test_write_message_roundtrip(self, sim):
        s = Stack(sim, "S")
        r = Stack(sim, "R")
        a = EthernetInterface(sim, "eth0", "10.0.1.1")
        b = EthernetInterface(sim, "eth0", "10.0.1.2")
        s.add_interface(a)
        r.add_interface(b)
        Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.0005)
        s.routing.add("10.0.1.0", 24, a)
        r.routing.add("10.0.1.0", 24, b)
        ts, tr = TcpLayer(s, sim), TcpLayer(r, sim)
        got = []
        BulkReceiver(tr, 80, on_message=got.append)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000)
        tx.start()
        sim.run(until=0.05)
        from repro.core.packet import Packet

        messages = [Packet(700 + i, seq=i) for i in range(5)]
        for message in messages:
            tx.write_message(message, message.size)
        sim.run(until=1.0)
        assert got == messages

    def test_small_messages_pack_into_one_segment(self, sim):
        s = Stack(sim, "S")
        r = Stack(sim, "R")
        a = EthernetInterface(sim, "eth0", "10.0.1.1")
        b = EthernetInterface(sim, "eth0", "10.0.1.2")
        s.add_interface(a)
        r.add_interface(b)
        Link(sim, a, b, bandwidth_bps=10e6, prop_delay=0.0005)
        s.routing.add("10.0.1.0", 24, a)
        r.routing.add("10.0.1.0", 24, b)
        ts, tr = TcpLayer(s, sim), TcpLayer(r, sim)
        got = []
        BulkReceiver(tr, 80, on_message=got.append)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, mss=1460)
        tx.start()
        sim.run(until=0.05)
        segments_before = tx.segments_sent
        from repro.core.packet import Packet

        for i in range(4):
            tx.write_message(Packet(100, seq=i), 100)
        sim.run(until=0.5)
        assert len(got) == 4
        assert tx.segments_sent - segments_before <= 2  # packed tightly

    def test_message_mode_conflicts_with_size_fn(self, sim):
        s = Stack(sim, "S")
        a = EthernetInterface(sim, "eth0", "10.0.1.1")
        s.add_interface(a)
        ts = TcpLayer(s, sim)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000,
                        segment_size_fn=lambda: 100)
        with pytest.raises(RuntimeError):
            tx.write_message(object(), 10)

    def test_invalid_message_size(self, sim):
        s = Stack(sim, "S")
        a = EthernetInterface(sim, "eth0", "10.0.1.1")
        s.add_interface(a)
        ts = TcpLayer(s, sim)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000)
        with pytest.raises(ValueError):
            tx.write_message(object(), 0)
