"""Unit tests for transport-level striping over UDP sockets (§6.3)."""

import pytest

from repro.analysis.reorder import analyze_order
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator


class TestLosslessOperation:
    def test_exact_fifo(self):
        sim = Simulator()
        testbed = build_socket_testbed(sim, SocketTestbedConfig())
        sim.run(until=0.5)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        assert report.is_fifo
        assert report.delivered > 100

    def test_both_channels_used(self):
        sim = Simulator()
        testbed = build_socket_testbed(sim, SocketTestbedConfig())
        sim.run(until=0.5)
        assert testbed.sender.ports[0].sent_data > 50
        assert testbed.sender.ports[1].sent_data > 50

    def test_no_resequencing_mode_reorders(self):
        sim = Simulator()
        config = SocketTestbedConfig(
            mode="none",
            prop_delay_s=(0.2e-3, 5e-3),  # strong skew
            marker_interval_rounds=0,
        )
        testbed = build_socket_testbed(sim, config)
        sim.run(until=0.5)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        assert report.out_of_order > 0

    def test_dissimilar_rates_aggregate(self):
        """Weighted SRR is not configured here (equal quanta), so the
        closed loop settles at 2x the slower link — but nothing reorders."""
        sim = Simulator()
        config = SocketTestbedConfig(link_mbps=(10.0, 5.0))
        testbed = build_socket_testbed(sim, config)
        sim.run(until=0.5)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        assert report.is_fifo


class TestLossAndRecovery:
    def test_quasi_fifo_under_loss(self):
        sim = Simulator()
        config = SocketTestbedConfig(loss_rates=(0.2,))
        testbed = build_socket_testbed(sim, config)
        sim.run(until=1.0)
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        assert report.missing > 0  # losses happened
        # quasi-FIFO: some reordering during desync windows is expected,
        # but it stays a small fraction of deliveries
        assert report.out_of_order_fraction < 0.2

    def test_fifo_restored_after_losses_stop(self):
        sim = Simulator()
        config = SocketTestbedConfig(loss_rates=(0.5,))
        testbed = build_socket_testbed(sim, config)
        testbed.stop_losses_at(0.5)
        sim.run(until=1.5)
        tail = [d.seq for d in testbed.deliveries_after(0.7)]
        assert len(tail) > 100
        assert tail == sorted(tail)

    def test_receiver_buffer_cap_drops(self):
        sim = Simulator()
        config = SocketTestbedConfig(
            link_mbps=(10.0, 1.0),  # heavy skew via rate mismatch
            buffer_packets=4,
        )
        testbed = build_socket_testbed(sim, config)
        sim.run(until=0.5)
        assert testbed.receiver.buffer_drops > 0


class TestCreditIntegration:
    def test_credits_prevent_buffer_drops(self):
        sim = Simulator()
        config = SocketTestbedConfig(
            link_mbps=(10.0, 1.0),
            buffer_packets=4,
            use_credit=True,
        )
        testbed = build_socket_testbed(sim, config)
        sim.run(until=0.5)
        assert testbed.receiver.buffer_drops == 0
        assert testbed.sender.credit.stalls > 0  # throttling did happen
        report = analyze_order(testbed.delivered_seqs(), testbed.messages_sent)
        assert report.is_fifo

    def test_credit_requires_buffer(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_socket_testbed(
                sim, SocketTestbedConfig(use_credit=True)
            )


class TestConfigValidation:
    def test_scalar_broadcast(self):
        config = SocketTestbedConfig(n_channels=3, link_mbps=(5.0,),
                                     prop_delay_s=(1e-3,), loss_rates=(0.0,))
        assert config.link_mbps == (5.0, 5.0, 5.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SocketTestbedConfig(n_channels=3, link_mbps=(5.0, 5.0))
