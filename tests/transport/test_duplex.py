"""Tests for duplex striping with marker-piggybacked credits."""

import pytest

from repro.core.srr import SRR
from repro.net.ethernet import EthernetInterface
from repro.net.stack import Link, Stack
from repro.transport.duplex import connect_duplex
from repro.workloads.generators import ClosedLoopSource, ConstantSizes


def build_duplex(sim, link_mbps=(10.0, 10.0), buffer_packets=16,
                 message_bytes=1000, reliability="quasi_fifo",
                 data_loss=(0.0, 0.0)):
    """Two hosts, two bidirectional links, duplex striped session.

    ``data_loss`` installs per-direction Bernoulli loss on data-sized
    frames only (markers — and the credits/SACKs they carry — survive),
    the regime where piggybacked-ack recovery is observable in isolation.
    """
    import random

    from repro.sim.loss import BernoulliLoss, SizeGatedLoss

    def gated(p, seed):
        if p <= 0.0:
            return None
        return SizeGatedLoss(
            BernoulliLoss(p, rng=random.Random(seed)), min_size=500
        )

    a = Stack(sim, "A")
    b = Stack(sim, "B")
    a_targets = []
    b_targets = []
    links = []
    for index in range(2):
        ia = EthernetInterface(sim, f"ch{index}a", f"10.{50+index}.0.1")
        ib = EthernetInterface(sim, f"ch{index}b", f"10.{50+index}.0.2")
        a.add_interface(ia)
        b.add_interface(ib)
        links.append(Link(
            sim, ia, ib,
            bandwidth_bps=link_mbps[index] * 1e6, prop_delay=0.5e-3,
            queue_limit=40, name=f"duplex{index}",
            loss_ab=gated(data_loss[0], 100 + index),
            loss_ba=gated(data_loss[1], 200 + index),
        ))
        a.routing.add(f"10.{50+index}.0.2", 24, ia)
        b.routing.add(f"10.{50+index}.0.1", 24, ib)
        ia.arp_cache.install(ib.ip_address, ib.mac)
        ib.arp_cache.install(ia.ip_address, ia.mac)
        a_targets.append((f"10.{50+index}.0.2", 7100 + index))
        b_targets.append((f"10.{50+index}.0.1", 7000 + index))
    end_a, end_b = connect_duplex(
        sim, a, b, a_targets, b_targets,
        algorithm_factory=lambda: SRR([float(message_bytes)] * 2),
        buffer_packets=buffer_packets,
        reliability=reliability,
    )

    # Closed-loop sources both ways; wake on link drain both directions.
    def backlog_fn(endpoint):
        def backlog():
            if not endpoint.sender.can_submit():
                return 1 << 30  # ARQ window full: read as backlogged
            return endpoint.sender.backlog

        return backlog

    src_a = ClosedLoopSource(
        sim, end_a.submit_packet, backlog_fn(end_a),
        ConstantSizes(message_bytes), target=8,
    )
    src_b = ClosedLoopSource(
        sim, end_b.submit_packet, backlog_fn(end_b),
        ConstantSizes(message_bytes), target=8,
    )
    src_a.start()
    src_b.start()
    for link in links:
        link.ab.on_space = lambda: (end_a.sender.pump(), src_a.poke())
        link.ba.on_space = lambda: (end_b.sender.pump(), src_b.poke())
    return end_a, end_b, links


class TestDuplexCredits:
    def test_both_directions_fifo(self, sim):
        end_a, end_b, _ = build_duplex(sim)
        sim.run(until=1.0)
        for endpoint in (end_a, end_b):
            seqs = [p.seq for p in endpoint.delivered]
            assert len(seqs) > 100
            assert seqs == sorted(seqs)

    def test_credits_ride_markers_only(self, sim):
        """Flow control works with zero standalone credit packets."""
        end_a, end_b, _ = build_duplex(sim)
        sim.run(until=1.0)
        # Both senders consumed credit grants (flow control active)...
        assert end_a.sender.credit.limits[0] > 16
        assert end_b.sender.credit.limits[0] > 16
        # ...that arrived exclusively on markers (no credit sockets exist).
        assert end_a.receiver._credit_socket is None
        assert end_b.receiver._credit_socket is None

    def test_mismatched_rates_no_buffer_overflow(self, sim):
        end_a, end_b, _ = build_duplex(
            sim, link_mbps=(10.0, 2.0), buffer_packets=12
        )
        sim.run(until=1.5)
        assert end_a.receiver.buffer_drops == 0
        assert end_b.receiver.buffer_drops == 0
        assert end_a.sender.credit.stalls > 0  # throttling happened

class TestDuplexReliable:
    def test_exactly_once_both_directions_under_loss(self, sim):
        """Reliable duplex: both directions survive data loss with
        exactly-once in-order delivery, acks riding markers only."""
        end_a, end_b, _ = build_duplex(
            sim, reliability="reliable", data_loss=(0.08, 0.08)
        )
        sim.run(until=2.0)
        # Stop the sources so the windows can drain, then let the
        # retransmission machinery finish.
        end_a.sender.reliable.on_window_open = None
        end_b.sender.reliable.on_window_open = None
        sim.run(until=4.0)
        for endpoint, peer in ((end_a, end_b), (end_b, end_a)):
            seqs = [p.seq for p in endpoint.delivered]
            assert len(seqs) > 100
            assert seqs == sorted(seqs)  # in order
            assert len(seqs) == len(set(seqs))  # exactly once
            # Losses were real and repaired.
            assert peer.sender.reliable.stats.retransmissions > 0

    def test_acks_ride_markers_only(self, sim):
        """Duplex mode has no standalone ack path at all: every SACK
        that reached a sender was piggybacked on a reverse marker."""
        end_a, end_b, _ = build_duplex(
            sim, reliability="reliable", data_loss=(0.05, 0.05)
        )
        sim.run(until=1.0)
        for endpoint in (end_a, end_b):
            assert endpoint.receiver._credit_socket is None
            # The senders did consume acks (the windows move)...
            assert endpoint.sender.reliable.stats.acked > 100
            # ...which only markers could have carried.
            assert endpoint.receiver.reliable.stats.acks_sent > 0

    def test_quasi_fifo_duplex_unaffected(self, sim):
        """Default mode builds no ARQ state on either side."""
        end_a, end_b, _ = build_duplex(sim)
        sim.run(until=0.5)
        for endpoint in (end_a, end_b):
            assert endpoint.sender.reliable is None
            assert endpoint.receiver.reliable is None
            assert len(endpoint.delivered) > 50


class TestValidation:
    def test_channel_count_mismatch_rejected(self, sim):
        a = Stack(sim, "A")
        b = Stack(sim, "B")
        with pytest.raises(ValueError):
            connect_duplex(
                sim, a, b, [("10.0.0.2", 7100)], [],
                algorithm_factory=lambda: SRR([1000.0]),
                buffer_packets=8,
            )
