"""Tests for duplex striping with marker-piggybacked credits."""

import pytest

from repro.core.srr import SRR
from repro.net.ethernet import EthernetInterface
from repro.net.stack import Link, Stack
from repro.transport.duplex import connect_duplex
from repro.workloads.generators import ClosedLoopSource, ConstantSizes


def build_duplex(sim, link_mbps=(10.0, 10.0), buffer_packets=16,
                 message_bytes=1000):
    """Two hosts, two bidirectional links, duplex striped session."""
    a = Stack(sim, "A")
    b = Stack(sim, "B")
    a_targets = []
    b_targets = []
    links = []
    for index in range(2):
        ia = EthernetInterface(sim, f"ch{index}a", f"10.{50+index}.0.1")
        ib = EthernetInterface(sim, f"ch{index}b", f"10.{50+index}.0.2")
        a.add_interface(ia)
        b.add_interface(ib)
        links.append(Link(
            sim, ia, ib,
            bandwidth_bps=link_mbps[index] * 1e6, prop_delay=0.5e-3,
            queue_limit=40, name=f"duplex{index}",
        ))
        a.routing.add(f"10.{50+index}.0.2", 24, ia)
        b.routing.add(f"10.{50+index}.0.1", 24, ib)
        ia.arp_cache.install(ib.ip_address, ib.mac)
        ib.arp_cache.install(ia.ip_address, ia.mac)
        a_targets.append((f"10.{50+index}.0.2", 7100 + index))
        b_targets.append((f"10.{50+index}.0.1", 7000 + index))
    end_a, end_b = connect_duplex(
        sim, a, b, a_targets, b_targets,
        algorithm_factory=lambda: SRR([float(message_bytes)] * 2),
        buffer_packets=buffer_packets,
    )
    # Closed-loop sources both ways; wake on link drain both directions.
    src_a = ClosedLoopSource(
        sim, end_a.submit_packet, lambda: end_a.sender.backlog,
        ConstantSizes(message_bytes), target=8,
    )
    src_b = ClosedLoopSource(
        sim, end_b.submit_packet, lambda: end_b.sender.backlog,
        ConstantSizes(message_bytes), target=8,
    )
    src_a.start()
    src_b.start()
    for link in links:
        link.ab.on_space = lambda: (end_a.sender.pump(), src_a.poke())
        link.ba.on_space = lambda: (end_b.sender.pump(), src_b.poke())
    return end_a, end_b, links


class TestDuplexCredits:
    def test_both_directions_fifo(self, sim):
        end_a, end_b, _ = build_duplex(sim)
        sim.run(until=1.0)
        for endpoint in (end_a, end_b):
            seqs = [p.seq for p in endpoint.delivered]
            assert len(seqs) > 100
            assert seqs == sorted(seqs)

    def test_credits_ride_markers_only(self, sim):
        """Flow control works with zero standalone credit packets."""
        end_a, end_b, _ = build_duplex(sim)
        sim.run(until=1.0)
        # Both senders consumed credit grants (flow control active)...
        assert end_a.sender.credit.limits[0] > 16
        assert end_b.sender.credit.limits[0] > 16
        # ...that arrived exclusively on markers (no credit sockets exist).
        assert end_a.receiver._credit_socket is None
        assert end_b.receiver._credit_socket is None

    def test_mismatched_rates_no_buffer_overflow(self, sim):
        end_a, end_b, _ = build_duplex(
            sim, link_mbps=(10.0, 2.0), buffer_packets=12
        )
        sim.run(until=1.5)
        assert end_a.receiver.buffer_drops == 0
        assert end_b.receiver.buffer_drops == 0
        assert end_a.sender.credit.stalls > 0  # throttling happened

    def test_channel_count_mismatch_rejected(self, sim):
        a = Stack(sim, "A")
        b = Stack(sim, "B")
        with pytest.raises(ValueError):
            connect_duplex(
                sim, a, b, [("10.0.0.2", 7100)], [],
                algorithm_factory=lambda: SRR([1000.0]),
                buffer_packets=8,
            )
