"""Unit tests for the FEC transport layer (:mod:`repro.transport.fec`).

Drives :class:`FecSender` / :class:`FecReceiver` directly against
hand-rolled downstreams — no channels, no striper — so every group
lifecycle (seal by count, seal by timeout, decode, gap-skip, escalation)
is observable in isolation.
"""

import pytest

from repro.core.packet import Codepoint, Packet, PacketPool, is_parity
from repro.transport.fec import (
    PARITY_HEADER_BYTES,
    FecReceiver,
    FecSender,
    ParityPacket,
    packet_from_shard,
    shard_for,
)


def _packet(seq, payload=b"x" * 10, size=100):
    return Packet(size=size, seq=seq, payload=payload)


class _Tap:
    """Records everything submitted through it."""

    def __init__(self):
        self.packets = []
        self.parity = []

    def submit(self, packet):
        self.packets.append(packet)

    def stripe_parity(self, parity):
        self.parity.extend(parity)


def make_sender(sim=None, **kw):
    tap = _Tap()
    sender = FecSender(tap.submit, tap.stripe_parity, sim=sim, **kw)
    return sender, tap


# --------------------------------------------------------------------- #
# shard round-trip


def test_shard_round_trip_restores_fields():
    packet = _packet(42, payload=b"hello", size=77)
    packet.rseq = 9
    rebuilt = packet_from_shard(shard_for(packet), fseq=5)
    assert rebuilt.size == 77
    assert rebuilt.seq == 42
    assert rebuilt.rseq == 9
    assert rebuilt.fseq == 5
    assert rebuilt.payload == b"hello"
    assert rebuilt.synthesized
    assert rebuilt.uid != packet.uid


def test_shard_round_trip_none_fields_and_padding():
    packet = Packet(size=10, seq=None, payload=None)
    shard = shard_for(packet).ljust(64, b"\x00")  # decoder-side padding
    rebuilt = packet_from_shard(shard, fseq=0)
    assert rebuilt.seq is None and rebuilt.rseq is None
    assert rebuilt.payload is None


def test_non_bytes_payload_rejected():
    with pytest.raises(TypeError):
        shard_for(Packet(size=10, seq=0, payload={"not": "bytes"}))


# --------------------------------------------------------------------- #
# sender: group sealing


def test_sender_seals_on_count_and_stripes_parity():
    sender, tap = make_sender(k=3, m=2)
    for i in range(6):
        sender.submit(_packet(i))
    assert [p.fseq for p in tap.packets] == list(range(6))
    assert len(tap.parity) == 4  # two groups x two parity shards
    assert all(is_parity(p) for p in tap.parity)
    assert [p.group for p in tap.parity] == [0, 0, 3, 3]
    assert [p.index for p in tap.parity] == [0, 1, 0, 1]
    assert all(p.members == 3 and p.nparity == 2 for p in tap.parity)
    assert sender.stats.count_sealed == 2
    assert sender.stats.timeout_sealed == 0


def test_sender_downstream_called_before_absorb():
    """Hybrid contract: the shard must capture the downstream-stamped rseq."""
    sender, tap = make_sender(k=2, m=1)

    def stamping_downstream(packet):
        packet.rseq = 1000 + packet.seq
        tap.submit(packet)

    sender._downstream = stamping_downstream
    sender.submit(_packet(0))
    sender.submit(_packet(1))
    (parity,) = tap.parity
    # XOR of the two shards must reflect the stamped rseqs: rebuild shard 0
    # from parity + shard 1 and check its rseq survived.
    shard1 = shard_for(tap.packets[1])
    shard0 = bytes(a ^ b for a, b in zip(parity.payload, shard1))
    assert packet_from_shard(shard0, fseq=0).rseq == 1000


def test_sender_seal_timeout_closes_partial_group(sim):
    sender, tap = make_sender(sim=sim, k=4, m=1, seal_timeout_s=0.01)
    sender.submit(_packet(0))
    sender.submit(_packet(1))
    assert not tap.parity
    sim.run(until=0.02)
    assert len(tap.parity) == 1
    assert tap.parity[0].members == 2
    assert sender.stats.timeout_sealed == 1


def test_sender_flush_seals_immediately():
    sender, tap = make_sender(k=4, m=2)
    sender.submit(_packet(0))
    sender.flush()
    assert len(tap.parity) == 2
    assert tap.parity[0].members == 1
    sender.flush()  # idempotent on an empty group
    assert len(tap.parity) == 2


def test_sender_submit_many_batches_downstream():
    tap = _Tap()
    batches = []
    sender = FecSender(
        tap.submit, tap.stripe_parity, k=3, m=1,
        downstream_many=lambda ps: batches.append(list(ps)),
    )
    sender.submit_many([_packet(i) for i in range(3)])
    assert len(batches) == 1 and len(batches[0]) == 3
    assert len(tap.parity) == 1


def test_parity_packet_size_accounts_header():
    parity = ParityPacket(
        group=0, members=3, index=0, nparity=1, shard_len=50,
        payload=b"\x00" * 50,
    )
    assert parity.size == 50 + PARITY_HEADER_BYTES
    assert parity.codepoint == Codepoint.PARITY


# --------------------------------------------------------------------- #
# receiver: reconstruction


def _wire(sim=None, *, drop=(), k=3, m=2, **kw):
    """Sender and receiver glued by an in-order lossy wire."""
    delivered = []
    receiver = FecReceiver(delivered.append, k=k, m=m, sim=sim, **kw)

    def wire(packet):
        if getattr(packet, "fseq", None) in drop:
            return
        receiver.on_packet(packet)

    sender = FecSender(wire, lambda ps: [wire(p) for p in ps], sim=sim, k=k, m=m)
    return sender, receiver, delivered


def test_receiver_reconstructs_dropped_members_in_order():
    sender, receiver, delivered = _wire(drop={1, 5})
    originals = [_packet(i, payload=bytes([i]) * (10 + i)) for i in range(9)]
    for packet in originals:
        sender.submit(packet)
    assert [p.seq for p in delivered] == list(range(9))
    for seq in (1, 5):
        rebuilt = delivered[seq]
        assert rebuilt.synthesized
        assert rebuilt.payload == originals[seq].payload
        assert rebuilt.size == originals[seq].size
        assert rebuilt.uid != originals[seq].uid
    assert receiver.stats.reconstructed == 2
    assert receiver.stats.groups_decoded == 2
    # Resolved groups release their cached state.
    assert not receiver._shards and not receiver._base_of


def test_receiver_unordered_mode_passes_through_and_fills_holes():
    delivered = []
    receiver = FecReceiver(delivered.append, k=2, m=1, ordered=False)
    sender = FecSender(
        lambda p: p.fseq != 0 and receiver.on_packet(p),
        lambda ps: [receiver.on_packet(p) for p in ps],
        k=2, m=1,
    )
    sender.submit(_packet(0))
    sender.submit(_packet(1))
    # Hybrid ordering is ARQ's job: the survivor arrives first, the
    # reconstruction after parity.
    assert [p.seq for p in delivered] == [1, 0]
    assert delivered[1].synthesized


def test_receiver_duplicate_data_counted_once():
    delivered = []
    receiver = FecReceiver(delivered.append, k=2, m=1)
    sender = FecSender(receiver.on_packet, lambda ps: None, k=2, m=1)
    packet = _packet(0)
    sender.submit(packet)
    receiver.on_packet(packet)  # replayed arrival
    assert receiver.stats.duplicate_packets == 1
    assert len(delivered) == 1


def test_receiver_late_parity_after_resolve_is_noop():
    sender, receiver, delivered = _wire(k=2, m=2)
    held = []
    sender._stripe_parity = lambda ps: held.extend(ps)
    sender.submit(_packet(0))
    sender.submit(_packet(1))
    receiver.on_packet(held[0])  # group complete -> resolves
    assert receiver.stats.groups_resolved == 1
    receiver.on_packet(held[1])  # sibling of a settled group
    assert receiver.stats.groups_resolved == 1
    assert len(delivered) == 2


def test_receiver_group_timeout_gives_up_and_skips(sim):
    """Losses beyond m: the group times out, the gap-skip timer advances
    past the dead positions, and later traffic keeps flowing."""
    sender, receiver, delivered = _wire(
        sim=sim, drop={0, 1}, k=3, m=1, group_timeout_s=0.05,
    )
    for i in range(6):
        sender.submit(_packet(i))
    sim.run(until=1.0)
    assert [p.seq for p in delivered] == [2, 3, 4, 5]
    assert receiver.stats.unrecoverable_groups == 1
    assert receiver.stats.skipped == 2


def test_receiver_escalates_after_consecutive_failures(sim):
    escalations = []
    sender, receiver, delivered = _wire(
        sim=sim, drop={0, 1, 3, 4, 6, 7}, k=3, m=1,
        group_timeout_s=0.05, escalate_after=3,
        on_escalate=escalations.append,
    )
    for i in range(9):
        sender.submit(_packet(i))
    sim.run(until=1.0)
    assert receiver.stats.unrecoverable_groups == 3
    assert len(escalations) == 1
    assert receiver.stats.escalations == 1
    # A successful group resets the streak.
    assert receiver._consecutive_failures == 0


def test_receiver_recovered_group_resets_failure_streak(sim):
    escalations = []
    sender, receiver, delivered = _wire(
        sim=sim, drop={0, 1}, k=3, m=1,
        group_timeout_s=0.05, escalate_after=2,
        on_escalate=escalations.append,
    )
    for i in range(9):
        sender.submit(_packet(i))  # group 0 fails; groups 1, 2 clean
    sim.run(until=1.0)
    assert receiver.stats.unrecoverable_groups == 1
    assert not escalations


# --------------------------------------------------------------------- #
# pool contract (satellite: reconstructed packets never re-enter a pool)


def test_pool_refuses_synthesized_packets():
    pool = PacketPool(max_size=4)
    original = pool.acquire(size=100, seq=0, payload=b"data")
    rebuilt = packet_from_shard(shard_for(original), fseq=0)
    assert rebuilt.synthesized
    pool.release(rebuilt)
    assert pool.released == 0, "synthesized packet entered the pool"
    recycled = pool.acquire(size=50, seq=1)
    assert recycled.uid != rebuilt.uid
    # Fresh acquisitions never resurrect FEC state.
    assert recycled.fseq is None and not recycled.synthesized
    pool.release(original)
    assert pool.released == 1


# --------------------------------------------------------------------- #
# transport inheritance: the socket harness (reference + fast paths)
# mounts fec / hybrid exactly like the pipelines they wrap


class TestTransportInheritance:
    """`reliability="fec" | "hybrid"` through `build_socket_testbed`.

    The adapters (socket / fast / session / tcp / duplex) all delegate
    reliability mounting to the endpoint pipelines; these smokes pin the
    harness plumbing — fec options forwarded, hybrid's ack path wired —
    on the two paths the harness builds directly.
    """

    def _config(self, mode, fast, loss):
        from repro.experiments.socket_harness import SocketTestbedConfig

        options = {"sender": {"fec": {"k": 4, "m": 2}}}
        if mode == "hybrid":
            options["sender"]["window_packets"] = 128
        return SocketTestbedConfig(
            n_channels=3,
            link_mbps=(10.0,),
            prop_delay_s=(0.5e-3,),
            loss_rates=(loss,),
            message_bytes=1000,
            reliability=mode,
            reliability_options={
                **options,
                "receiver": {"fec": {"k": 4, "m": 2}},
            },
            fast=fast,
            seed=5,
        )

    @pytest.mark.parametrize("fast", [False, True])
    def test_pure_fec_recovers_on_both_paths(self, fast):
        from repro.experiments.socket_harness import build_socket_testbed
        from repro.sim.engine import Simulator

        sim = Simulator()
        testbed = build_socket_testbed(sim, self._config("fec", fast, 0.05))
        sim.run(until=1.0)
        testbed.source.stop()
        sim.run(until=2.0)
        sent = testbed.messages_sent
        seqs = testbed.delivered_seqs()
        assert testbed.sender.reliable is None  # structurally no ARQ
        assert seqs == sorted(set(seqs))
        assert len(seqs) >= 0.95 * sent > 0
        assert testbed.receiver.fec.stats.reconstructed > 0

    @pytest.mark.parametrize("fast", [False, True])
    def test_hybrid_exactly_once_on_both_paths(self, fast):
        from repro.experiments.socket_harness import build_socket_testbed
        from repro.sim.engine import Simulator

        sim = Simulator()
        testbed = build_socket_testbed(
            sim, self._config("hybrid", fast, 0.05)
        )
        sim.run(until=1.0)
        testbed.source.stop()
        sim.run(until=3.0)
        sent = testbed.messages_sent
        seqs = testbed.delivered_seqs()
        assert seqs == list(range(sent)), "hybrid broke exactly-once"
        arq = testbed.sender.reliable
        assert not arq.unacked and not arq.backlog, "ARQ never drained"
        assert testbed.receiver.fec.stats.reconstructed > 0
