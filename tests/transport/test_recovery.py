"""Crash-recovery subsystem: codec, store, and handshake unit tests.

Three layers under test, bottom up:

* the **checkpoint codec** — tagged-tree encode/decode, the versioned
  CRC-guarded frame, and the typed corruption/version-skew errors;
* the **checkpoint store** — last-good fallback, write-ahead log sealing
  (torn tails stop the scan), and the persistent incarnation epoch;
* the **recovery managers** — serialize → rebuild → restore round trips
  for composed sender/receiver endpoints across the whole discipline ×
  reliability registry (the 39 constructible cells), asserted as a
  byte-level fixpoint: ``to_bytes(restore(fresh, to_bytes(live)))`` must
  reproduce the original frame exactly.
"""

import pytest

from repro.core.markers import ReceiverSnapshot
from repro.core.packet import MarkerPacket, Packet, SackInfo
from repro.core.srr import SRR, SRRState, make_grr, make_rr
from repro.core.striper import MarkerPolicy
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import persistent_loss_schedule
from repro.transport.endpoint import (
    RELIABILITY_MODES,
    StripeReceiverPipeline,
    StripeSenderPipeline,
    make_discipline,
    receiver_mode_for,
)
from repro.transport.fast_path import FastChannelPort
from repro.transport.fec import ParityPacket
from repro.transport.recovery import (
    CHECKPOINT_MAGIC,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    CheckpointVersionError,
    ReceiverRecovery,
    SenderRecovery,
    checksum,
    decode_checkpoint,
    encode_checkpoint,
    pack_packet,
    receiver_from_bytes,
    receiver_to_bytes,
    sender_from_bytes,
    sender_to_bytes,
    unpack_packet,
)

# ---------------------------------------------------------------------- #
# tagged tree codec + frame


class _Opaque:
    """An arbitrary object the codec must fall back to pickling."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return type(other) is _Opaque and other.value == self.value


TREES = [
    None,
    True,
    False,
    0,
    -(2**70),
    3.5,
    float("inf"),
    "",
    "snow❄unicode",
    b"",
    b"\x00\xff" * 17,
    [],
    [1, [2, [3, None]]],
    (1, "two", 3.0),
    {},
    {"a": 1, 2: "b", None: [True, (b"x",)]},
    SRRState(1, 4, (0.0, 250.0, 500.0)),
    ReceiverSnapshot(2, 7, (0.0, 1.0), (True, False), (3, 4)),
    _Opaque({"nested": (1, 2)}),
]


class TestCheckpointCodec:
    @pytest.mark.parametrize("tree", TREES, ids=lambda t: type(t).__name__)
    def test_round_trip(self, tree):
        decoded = decode_checkpoint(encode_checkpoint(tree))
        assert decoded == tree or (tree != tree and decoded != decoded)

    def test_round_trip_preserves_list_tuple_distinction(self):
        assert decode_checkpoint(encode_checkpoint([1, 2])) == [1, 2]
        assert decode_checkpoint(encode_checkpoint((1, 2))) == (1, 2)

    def test_srr_state_survives_as_srr_state(self):
        state = SRRState(0, 9, (10.0, 20.0))
        out = decode_checkpoint(encode_checkpoint({"k": state}))["k"]
        assert type(out) is SRRState
        assert out == state

    def test_frame_starts_with_magic(self):
        assert encode_checkpoint({"x": 1}).startswith(CHECKPOINT_MAGIC)

    def test_bad_magic_is_corrupt(self):
        blob = bytearray(encode_checkpoint({"x": 1}))
        blob[0] ^= 0xFF
        with pytest.raises(CheckpointCorruptError):
            decode_checkpoint(bytes(blob))

    @pytest.mark.parametrize("position", [5, 8, -6, -1])
    def test_any_flipped_byte_is_corrupt(self, position):
        blob = bytearray(encode_checkpoint({"x": list(range(20))}))
        blob[position] ^= 0x01
        with pytest.raises(CheckpointCorruptError):
            decode_checkpoint(bytes(blob))

    def test_truncation_is_corrupt(self):
        blob = encode_checkpoint({"x": 1})
        for cut in (0, 3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CheckpointCorruptError):
                decode_checkpoint(blob[:cut])

    def test_intact_future_version_is_version_error(self):
        blob = encode_checkpoint({"x": 1}, version=2)
        with pytest.raises(CheckpointVersionError):
            decode_checkpoint(blob)

    def test_corrupted_future_version_is_corrupt_not_skew(self):
        # Validation order magic -> CRC -> version: bit rot that lands in
        # the version field must still read as corruption.
        blob = bytearray(encode_checkpoint({"x": 1}))
        blob[4] ^= 0x01  # version field, CRC now wrong
        with pytest.raises(CheckpointCorruptError):
            decode_checkpoint(bytes(blob))

    def test_typed_errors_are_value_errors(self):
        assert issubclass(CheckpointCorruptError, CheckpointError)
        assert issubclass(CheckpointVersionError, CheckpointError)
        assert issubclass(CheckpointError, ValueError)

    def test_checksum_is_unsigned_crc32(self):
        assert checksum(b"") == 0
        assert 0 <= checksum(b"\xff" * 64) <= 0xFFFFFFFF


# ---------------------------------------------------------------------- #
# packet packing


class TestPacketPacking:
    def test_data_packet_round_trip(self):
        packet = Packet(
            1500, seq=7, label="a", flow="f1", payload=b"body", rseq=3, fseq=2
        )
        out = unpack_packet(pack_packet(packet))
        for name in ("size", "seq", "label", "flow", "payload", "rseq", "fseq"):
            assert getattr(out, name) == getattr(packet, name)
        assert out.uid != packet.uid  # a restored packet is a new object

    def test_marker_round_trip_via_wire_codec(self):
        marker = MarkerPacket(
            channel=2,
            round_number=9,
            deficit=123.5,
            credit=4,
            sack=SackInfo(cum_ack=5, blocks=((7, 9),)),
        )
        out = unpack_packet(pack_packet(marker))
        assert (out.channel, out.round_number, out.deficit) == (2, 9, 123.5)
        assert out.credit == 4
        assert out.sack == marker.sack

    def test_parity_round_trip_keeps_group_geometry(self):
        parity = ParityPacket(
            group=8, members=3, index=1, nparity=2, shard_len=512,
            payload=b"\x01" * 512, rseq=11, fseq=9,
        )
        out = unpack_packet(pack_packet(parity))
        assert type(out) is ParityPacket
        for name in (
            "group", "members", "index", "nparity", "shard_len", "payload",
            "size", "rseq", "fseq",
        ):
            assert getattr(out, name) == getattr(parity, name)

    def test_packed_forms_survive_the_checkpoint_codec(self):
        packets = [
            Packet(500, seq=1),
            MarkerPacket(channel=0, round_number=1, deficit=0.0),
            ParityPacket(
                group=0, members=2, index=0, nparity=1, shard_len=4,
                payload=b"abcd",
            ),
        ]
        tree = decode_checkpoint(
            encode_checkpoint([pack_packet(p) for p in packets])
        )
        restored = [unpack_packet(t) for t in tree]
        assert restored[0].seq == 1
        assert restored[1].round_number == 1
        assert restored[2].group == 0


# ---------------------------------------------------------------------- #
# checkpoint store


class TestCheckpointStore:
    def test_load_empty_is_none(self):
        assert CheckpointStore().load_checkpoint() is None

    def test_save_then_load(self):
        store = CheckpointStore()
        store.save_checkpoint(encode_checkpoint({"v": 1}))
        assert store.load_checkpoint() == {"v": 1}
        assert store.checkpoints_saved == 1
        assert store.checkpoint_bytes > 0

    def test_corrupt_current_falls_back_to_previous(self):
        store = CheckpointStore()
        store.save_checkpoint(encode_checkpoint({"v": 1}))
        blob = bytearray(encode_checkpoint({"v": 2}))
        blob[-1] ^= 0xFF
        store.save_checkpoint(bytes(blob))
        assert store.load_checkpoint() == {"v": 1}
        assert store.fallbacks == 1

    def test_both_corrupt_is_none(self):
        store = CheckpointStore()
        for v in (1, 2):
            blob = bytearray(encode_checkpoint({"v": v}))
            blob[-1] ^= 0xFF
            store.save_checkpoint(bytes(blob))
        assert store.load_checkpoint() is None
        assert store.fallbacks == 2

    def test_version_skew_propagates_not_papered_over(self):
        store = CheckpointStore()
        store.save_checkpoint(encode_checkpoint({"v": 1}))
        store.save_checkpoint(encode_checkpoint({"v": 2}, version=9))
        with pytest.raises(CheckpointVersionError):
            store.load_checkpoint()

    def test_checkpoint_truncates_wal(self):
        store = CheckpointStore()
        store.append_wal(b"one")
        store.save_checkpoint(encode_checkpoint({}))
        assert store.wal_payloads() == []
        assert store.wal_records == 1  # lifetime counter keeps counting

    def test_wal_round_trip(self):
        store = CheckpointStore()
        payloads = [b"a", b"bb", b"", b"\x00" * 100]
        for p in payloads:
            store.append_wal(p)
        assert store.wal_payloads() == payloads

    def test_torn_wal_tail_stops_scan(self):
        store = CheckpointStore()
        store.append_wal(b"good")
        store.append_wal(b"torn-away")
        store._wal[-1] = store._wal[-1][:-3]  # tear the tail record
        assert store.wal_payloads() == [b"good"]
        assert store.corrupt_wal_records == 1

    def test_bit_rotted_wal_record_stops_scan(self):
        store = CheckpointStore()
        store.append_wal(b"good")
        store.append_wal(b"rotten")
        store.append_wal(b"unreachable")
        sealed = bytearray(store._wal[1])
        sealed[5] ^= 0xFF
        store._wal[1] = bytes(sealed)
        assert store.wal_payloads() == [b"good"]
        assert store.corrupt_wal_records == 1

    def test_epoch_is_monotone_and_survives_lose_data(self):
        store = CheckpointStore()
        assert store.next_epoch() == 1
        assert store.next_epoch() == 2
        store.save_checkpoint(encode_checkpoint({"v": 1}))
        store.append_wal(b"x")
        store.lose_data()
        assert store.load_checkpoint() is None
        assert store.wal_payloads() == []
        # The incarnation counter is NVRAM-like: it must keep increasing
        # so a cold restart still gets a fresh epoch.
        assert store.next_epoch() == 3


# ---------------------------------------------------------------------- #
# registry-wide serialization round trip

N_CHANNELS = 3
MARKER_FAMILY = ("srr", "rr", "grr")

#: every constructible (discipline, reliability) cell: 7 disciplines x 5
#: modes + the two header-sync baselines x their 2 legal modes = 39.
CELLS = [
    (disc, rel)
    for disc in ("srr", "rr", "grr", "sqf", "random", "hash", "sprinklers")
    for rel in RELIABILITY_MODES
] + [
    (disc, rel)
    for disc in ("mppp", "bonding")
    for rel in ("best_effort", "quasi_fifo")
]


def _build_spec(disc):
    if disc == "srr":
        return SRR([500.0] * N_CHANNELS)
    if disc == "rr":
        return make_rr(N_CHANNELS)
    if disc == "grr":
        return make_grr([1.0] * N_CHANNELS)
    return make_discipline(disc, N_CHANNELS)


def _build_pair(sim, channels, disc, rel, deliveries):
    policy = (
        MarkerPolicy(interval_rounds=1) if disc in MARKER_FAMILY else None
    )
    mode = receiver_mode_for(_build_spec(disc), markers=policy is not None)
    sender = StripeSenderPipeline(
        [FastChannelPort(ch) for ch in channels],
        _build_spec(disc),
        marker_policy=policy,
        sim=sim,
        reliability=rel,
    )
    receiver = StripeReceiverPipeline(
        N_CHANNELS,
        _build_spec(disc),
        mode=mode,
        on_message=deliveries.append,
        sim=sim,
        reliability=rel,
        send_ack=lambda ack: sim.schedule(5e-4, sender.on_ack, ack),
    )
    return sender, receiver, mode


@pytest.mark.parametrize("disc,rel", CELLS, ids=[f"{d}-{r}" for d, r in CELLS])
def test_registry_cell_serialization_is_a_fixpoint(disc, rel):
    """serialize -> restore into a fresh endpoint -> serialize == original.

    Run live lossy traffic first so the serialized state is non-trivial
    (ARQ windows, resequencer buffers, partial rounds, residual frames),
    then require the restored endpoint to re-serialize byte-identically.
    """
    sim = Simulator()
    channels = [
        Channel(
            sim, bandwidth_bps=8e6, prop_delay=5e-4, queue_limit=64,
            name=f"ch{i}",
        )
        for i in range(N_CHANNELS)
    ]
    deliveries = []
    sender, receiver, mode = _build_pair(sim, channels, disc, rel, deliveries)
    for i, ch in enumerate(channels):
        ch.on_deliver = receiver.channel_handler(i)
        ch.on_space = sender._pump
    persistent_loss_schedule(N_CHANNELS, 0.15, until=0.05).install(
        sim, channels, seed=3
    )

    seq = [0]

    def tick():
        if sim.now >= 0.05:
            return
        if sender.can_submit():
            sender.submit_packet(
                Packet(size=500, seq=seq[0], flow=f"f{seq[0] % 3}")
            )
            seq[0] += 1
        sim.schedule(1e-3, tick)

    sim.schedule_at(0.0, tick)
    sim.run(until=0.1)
    assert seq[0] > 0  # the state being serialized is real

    blob_s = sender_to_bytes(sender, peer_epoch=5)
    blob_r = receiver_to_bytes(receiver, sender_epoch=5)

    fresh_sender, fresh_receiver, _ = _build_pair(
        sim, channels, disc, rel, []
    )
    sender_from_bytes(fresh_sender, blob_s)
    receiver_from_bytes(fresh_receiver, blob_r)
    assert sender_to_bytes(fresh_sender, peer_epoch=5) == blob_s
    assert receiver_to_bytes(fresh_receiver, sender_epoch=5) == blob_r


def test_sender_checkpoint_rejected_by_receiver_restore():
    sim = Simulator()
    channels = [
        Channel(
            sim, bandwidth_bps=8e6, prop_delay=5e-4, queue_limit=64,
            name=f"ch{i}",
        )
        for i in range(N_CHANNELS)
    ]
    sender, receiver, _ = _build_pair(sim, channels, "srr", "reliable", [])
    with pytest.raises(CheckpointError):
        receiver_from_bytes(receiver, sender_to_bytes(sender))
    with pytest.raises(CheckpointError):
        sender_from_bytes(sender, receiver_to_bytes(receiver))


def test_version_skewed_endpoint_blob_raises_typed_error():
    sim = Simulator()
    channels = [
        Channel(
            sim, bandwidth_bps=8e6, prop_delay=5e-4, queue_limit=64,
            name=f"ch{i}",
        )
        for i in range(N_CHANNELS)
    ]
    sender, receiver, _ = _build_pair(sim, channels, "srr", "reliable", [])
    blob = bytearray(sender_to_bytes(sender))
    # Rewrite the version field and re-seal the CRC so the frame is intact
    # but from a "future" codec.
    import struct

    struct.pack_into("!H", blob, 4, 2)
    blob[-4:] = struct.pack("!I", checksum(bytes(blob[:-4])))
    with pytest.raises(CheckpointVersionError):
        sender_from_bytes(sender, bytes(blob))


# ---------------------------------------------------------------------- #
# recovery managers


class TestRecoveryManagers:
    def _rig(self, sim, *, interval=0.02):
        channels = [
            Channel(
                sim, bandwidth_bps=8e6, prop_delay=5e-4, queue_limit=64,
                name=f"ch{i}",
            )
            for i in range(N_CHANNELS)
        ]
        deliveries = []
        sender, receiver, _ = _build_pair(
            sim, channels, "srr", "reliable", deliveries
        )
        for i, ch in enumerate(channels):
            ch.on_deliver = receiver.channel_handler(i)
            ch.on_space = sender._pump
        return channels, sender, receiver, deliveries

    def test_install_assigns_epoch_and_first_install_does_not_announce(self):
        sim = Simulator()
        _, sender, _, _ = self._rig(sim)
        sent = []
        recovery = SenderRecovery(
            sender, CheckpointStore(), sim=sim, send_control=sent.append
        )
        assert recovery.install() is False  # nothing to restore
        assert recovery.epoch == 1
        assert sent == []  # first incarnation has no peer to resync

    def test_periodic_checkpoints_fire(self):
        sim = Simulator()
        _, sender, _, _ = self._rig(sim)
        store = CheckpointStore()
        recovery = SenderRecovery(
            sender, store, sim=sim, checkpoint_interval_s=0.01
        )
        recovery.install()
        sim.run(until=0.055)
        assert store.checkpoints_saved >= 4
        recovery.stop()

    def test_sender_wal_logs_registered_packets(self):
        sim = Simulator()
        _, sender, _, _ = self._rig(sim)
        store = CheckpointStore()
        recovery = SenderRecovery(sender, store, sim=sim)
        recovery.install()
        for i in range(5):
            sender.submit_packet(Packet(size=500, seq=i))
        sim.run(until=0.05)
        assert store.wal_records >= 5
        recovery.stop()

    def test_second_install_restores_from_checkpoint(self):
        sim = Simulator()
        _, sender, _, _ = self._rig(sim)
        store = CheckpointStore()
        recovery = SenderRecovery(sender, store, sim=sim)
        recovery.install()
        for i in range(5):
            sender.submit_packet(Packet(size=500, seq=i))
        sim.run(until=0.02)
        recovery.checkpoint()
        recovery.stop()

        _, sender2, _, _ = self._rig(sim)
        sent = []
        recovery2 = SenderRecovery(
            sender2, store, sim=sim, send_control=sent.append
        )
        assert recovery2.install() is True
        assert recovery2.epoch == 2
        assert sent, "a restored sender announces itself"
        recovery2.stop()

    def test_receiver_recovery_cold_without_checkpoint(self):
        sim = Simulator()
        _, _, receiver, _ = self._rig(sim)
        store = CheckpointStore()
        store.next_epoch()  # a prior incarnation existed
        store.lose_data()
        recovery = ReceiverRecovery(receiver, store, sim=sim)
        assert recovery.install() is False
        assert recovery.cold is True
        recovery.stop()
