"""Deeper TCP recovery-path tests: RTO backoff, Karn's rule, go-back-N."""

import pytest

from repro.net.ethernet import EthernetInterface
from repro.net.stack import Link, Stack
from repro.sim.loss import BernoulliLoss, DeterministicLoss
from repro.transport.tcp import BulkReceiver, BulkSender, TcpLayer
import random


def tcp_pair(sim, loss_ab=None, loss_ba=None, bandwidth=10e6, queue_limit=50):
    s = Stack(sim, "S")
    r = Stack(sim, "R")
    a = EthernetInterface(sim, "eth0", "10.0.1.1")
    b = EthernetInterface(sim, "eth0", "10.0.1.2")
    s.add_interface(a)
    r.add_interface(b)
    Link(sim, a, b, bandwidth_bps=bandwidth, prop_delay=0.0005,
         queue_limit=queue_limit, loss_ab=loss_ab, loss_ba=loss_ba)
    s.routing.add("10.0.1.0", 24, a)
    r.routing.add("10.0.1.0", 24, b)
    a.arp_cache.install(b.ip_address, b.mac)
    b.arp_cache.install(a.ip_address, a.mac)
    return TcpLayer(s, sim), TcpLayer(r, sim)


class TestRtoBehaviour:
    def test_rto_backs_off_exponentially(self, sim):
        """With the forward path dead, successive timeouts double the RTO."""
        ts, tr = tcp_pair(sim)
        BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000)  # unbounded transfer
        tx.start()
        sim.run(until=0.05)  # establish + get some data out
        assert tx.state == "ESTABLISHED"
        # Kill the forward path entirely.
        route = ts.stack.routing.lookup("10.0.1.2")
        route.interface.channel_out.loss_model = BernoulliLoss(1.0)
        rto_before = tx.rto
        sim.run(until=10.0)
        assert tx.timeouts >= 3
        assert tx.rto > 2 * rto_before

    def test_karns_rule_no_rtt_sample_from_retransmits(self, sim):
        """Retransmitted segments must not poison the RTT estimator: after
        a retransmission-heavy episode the smoothed RTT stays near the true
        path RTT rather than absorbing timeout-length samples."""
        ts, tr = tcp_pair(
            sim, loss_ab=DeterministicLoss(range(12, 18))
        )
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=400_000)
        tx.start()
        sim.run(until=15.0)
        assert rx.bytes_delivered == 400_000
        assert tx.retransmits >= 5
        assert tx.srtt is not None
        assert tx.srtt < 0.1  # true RTT is ~1-50 ms; timeouts are >= 200 ms

    def test_reverse_path_loss_recovers(self, sim):
        """Lost ACKs are covered by later cumulative ACKs (no stall)."""
        ts, tr = tcp_pair(
            sim, loss_ba=BernoulliLoss(0.3, rng=random.Random(5))
        )
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=300_000)
        tx.start()
        sim.run(until=20.0)
        assert rx.bytes_delivered == 300_000

    def test_heavy_random_loss_still_completes(self, sim):
        ts, tr = tcp_pair(
            sim, loss_ab=BernoulliLoss(0.1, rng=random.Random(9))
        )
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=200_000)
        tx.start()
        sim.run(until=60.0)
        assert rx.bytes_delivered == 200_000
        assert rx.rcv_nxt == 200_000


class TestGoBackN:
    def test_timeout_replays_preserved_boundaries(self, sim):
        """After an RTO the retransmissions reuse the original segment
        boundaries (receiver sees consistent (seq, len) pairs)."""
        sizes = iter([500, 700, 300, 900, 400] * 1000)
        ts, tr = tcp_pair(sim, loss_ab=DeterministicLoss(range(10, 22)))
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(
            ts, "10.0.1.2", 80, 1000,
            segment_size_fn=lambda: next(sizes), total_bytes=100_000,
        )
        tx.start()
        sim.run(until=30.0)
        assert rx.bytes_delivered == 100_000
        # a contiguous stream implies boundary-consistent retransmissions
        assert rx.rcv_nxt == 100_000

    def test_cwnd_collapses_to_one_mss_on_timeout(self, sim):
        ts, tr = tcp_pair(sim)
        BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000)
        tx.start()
        sim.run(until=0.3)
        route = ts.stack.routing.lookup("10.0.1.2")
        route.interface.channel_out.loss_model = BernoulliLoss(1.0)
        sim.run(until=2.0)
        assert tx.timeouts >= 1
        assert tx.cwnd == pytest.approx(float(tx.mss))


class TestStatCoherence:
    def test_counters_consistent_on_clean_run(self, sim):
        ts, tr = tcp_pair(sim, queue_limit=2000)
        rx = BulkReceiver(tr, 80)
        tx = BulkSender(ts, "10.0.1.2", 80, 1000, total_bytes=150_000)
        tx.start()
        sim.run(until=5.0)
        assert rx.bytes_delivered == 150_000
        assert tx.retransmits == 0
        assert rx.duplicate_segments == 0
        assert rx.reorder_events == 0
        assert tx.bytes_sent == 150_000
