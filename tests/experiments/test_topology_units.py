"""Unit tests for testbed helpers and the Figure 15 shape checker."""

import pytest

from repro.core.srr import SRR
from repro.experiments.figure15 import (
    Figure15Result,
    Figure15Row,
    check_figure15_shape,
)
from repro.experiments.topology import (
    SCHEME_GRR,
    SCHEME_RR,
    SCHEME_SRR,
    make_scheme,
    marker_interval_for,
)


class TestMakeScheme:
    def test_srr_quanta_proportional(self):
        scheme = make_scheme(SCHEME_SRR, 10e6, 20e6)
        assert scheme.quanta[1] / scheme.quanta[0] == pytest.approx(2.0)
        assert min(scheme.quanta) == 1500.0  # >= Max (Theorem 5.1)
        assert not scheme.count_packets

    def test_grr_from_bandwidths(self):
        scheme = make_scheme(SCHEME_GRR, 10e6, 20e6)
        assert scheme.count_packets
        assert tuple(scheme.quanta) == (1.0, 2.0)

    def test_grr_explicit_weights(self):
        scheme = make_scheme(SCHEME_GRR, 10e6, 20e6, grr_weights=(1, 1))
        assert tuple(scheme.quanta) == (1.0, 1.0)

    def test_rr(self):
        scheme = make_scheme(SCHEME_RR, 10e6, 20e6)
        assert tuple(scheme.quanta) == (1.0, 1.0)
        assert scheme.count_packets

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_scheme("bogus", 1.0, 1.0)


class TestMarkerInterval:
    def test_byte_counting(self):
        # quanta total 3570 bytes/round, ~900 B packets -> ~4 pkts/round
        srr = SRR([1500.0, 2070.0])
        interval = marker_interval_for(srr, target_packets=50)
        assert interval == pytest.approx(50 / (3570 / 900), abs=1)

    def test_packet_counting(self):
        grr = SRR([5.0, 7.0], count_packets=True)  # 12 packets per round
        assert marker_interval_for(grr, target_packets=48) == 4

    def test_never_below_one(self):
        srr = SRR([1e6, 1e6])
        assert marker_interval_for(srr, target_packets=1) == 1


def rows_from(table):
    rows = []
    for atm, upper, variants in table:
        row = Figure15Row(atm_mbps=atm, upper_bound=upper,
                          eth_alone=0.0, atm_alone=0.0)
        row.variants = dict(zip(
            ("srr_lr", "srr_nolr", "grr_lr", "grr_nolr", "rr_lr", "rr_nolr"),
            variants,
        ))
        rows.append(row)
    return Figure15Result(rows)


class TestShapeChecker:
    GOOD = [
        (3.8, 12.0, (11.4, 6.5, 11.6, 6.9, 6.2, 4.8)),
        (13.8, 19.9, (19.8, 9.9, 19.7, 9.2, 18.5, 10.7)),
        (23.8, 27.3, (19.4, 10.4, 19.6, 9.8, 18.5, 11.1)),
    ]

    def test_paper_shape_passes(self):
        assert check_figure15_shape(rows_from(self.GOOD)) == []

    def test_detects_nolr_beating_lr(self):
        bad = [
            (3.8, 12.0, (11.4, 12.5, 11.6, 6.9, 6.2, 4.8)),
            (13.8, 19.9, (19.8, 21.0, 19.7, 9.2, 18.5, 10.7)),
            (23.8, 27.3, (19.4, 22.0, 19.6, 9.8, 18.5, 11.1)),
        ]
        problems = check_figure15_shape(rows_from(bad))
        assert any("no-LR" in p or "srr_nolr" in p for p in problems)

    def test_detects_rr_scaling(self):
        bad = [
            (3.8, 12.0, (11.4, 6.5, 11.6, 6.9, 6.2, 4.8)),
            (13.8, 19.9, (19.8, 9.9, 19.7, 9.2, 12.0, 10.7)),
            (23.8, 27.3, (19.4, 10.4, 19.6, 9.8, 19.0, 11.1)),
        ]
        problems = check_figure15_shape(rows_from(bad))
        assert any("RR kept scaling" in p for p in problems)

    def test_detects_stripe_far_below_upper(self):
        bad = [
            (3.8, 12.0, (5.0, 3.5, 5.1, 3.9, 4.2, 2.8)),
            (13.8, 19.9, (8.8, 5.9, 8.7, 5.2, 8.5, 5.7)),
            (23.8, 27.3, (9.4, 6.4, 9.6, 5.8, 8.5, 6.1)),
        ]
        problems = check_figure15_shape(rows_from(bad))
        assert any("below upper bound" in p for p in problems)

    def test_render_contains_chart(self):
        text = rows_from(self.GOOD).render()
        assert "ATM PVC capacity" in text
        assert "upper bound" in text
