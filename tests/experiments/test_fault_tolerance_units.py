"""Unit tests for fault-tolerance internals (detector, adapter, sessions)."""

import pytest

from repro.core.session import StripeConfig, StripeSenderSession
from repro.core.striper import ListPort
from repro.experiments.fault_tolerance import (
    QuantaAdapter,
    build_session_testbed,
)
from repro.sim.engine import Simulator
from repro.transport.session_striping import ChannelFailureDetector


class TestChannelFailureDetector:
    def test_reports_only_silent_channel(self):
        sim = Simulator()
        testbed = build_session_testbed(
            sim, n_channels=3, link_mbps=(10.0,), loss_rates=(0.0,),
            failure_detector=ChannelFailureDetector(
                sim, silence_threshold=0.15
            ),
        )
        detector = testbed.receiver.failure_detector
        sim.schedule_at(0.4, lambda: setattr(testbed.loss_models[2], "p", 1.0))
        sim.run(until=1.2)
        assert detector.failures_reported == [2]

    def test_no_false_positives_on_healthy_channels(self):
        sim = Simulator()
        testbed = build_session_testbed(
            sim, n_channels=3, link_mbps=(10.0,), loss_rates=(0.0,),
            failure_detector=ChannelFailureDetector(
                sim, silence_threshold=0.15
            ),
        )
        sim.run(until=1.5)
        assert testbed.receiver.failure_detector.failures_reported == []

    def test_total_outage_not_misreported(self):
        """If every channel goes silent (sender stopped), nothing is alive
        to compare against, so no channel is singled out."""
        sim = Simulator()
        testbed = build_session_testbed(
            sim, n_channels=2, link_mbps=(10.0,), loss_rates=(0.0,),
            failure_detector=ChannelFailureDetector(
                sim, silence_threshold=0.15
            ),
        )
        sim.schedule_at(0.4, testbed.source.stop)
        sim.run(until=1.5)
        assert testbed.receiver.failure_detector.failures_reported == []


class TestQuantaAdapter:
    def test_no_adaptation_on_balanced_links(self):
        sim = Simulator()
        testbed = build_session_testbed(
            sim, n_channels=2, link_mbps=(10.0, 10.0), loss_rates=(0.0,),
        )
        adapter = QuantaAdapter(sim, testbed.sender, testbed.links)
        sim.run(until=2.0)
        assert adapter.adaptations == 0

    def test_adapts_towards_capacity_ratio(self):
        sim = Simulator()
        testbed = build_session_testbed(
            sim, n_channels=2, link_mbps=(10.0, 10.0), loss_rates=(0.0,),
        )
        adapter = QuantaAdapter(sim, testbed.sender, testbed.links)
        sim.schedule_at(0.5, lambda: testbed.links[1].set_rate(5e6))
        sim.run(until=3.0)
        assert adapter.adaptations >= 1
        quanta = testbed.sender.session.config.quanta
        assert 1.5 < quanta[0] / quanta[1] < 3.0

    def test_cooldown_limits_reset_rate(self):
        sim = Simulator()
        testbed = build_session_testbed(
            sim, n_channels=2, link_mbps=(10.0, 10.0), loss_rates=(0.0,),
        )
        adapter = QuantaAdapter(
            sim, testbed.sender, testbed.links, cooldown=10.0
        )
        sim.schedule_at(0.5, lambda: testbed.links[1].set_rate(2.5e6))
        sim.run(until=3.0)
        assert adapter.adaptations <= 1


class TestSenderSessionUnits:
    def test_checkpoint_round_tracks_striper(self, sim):
        from repro.core.striper import MarkerPolicy
        from repro.core.packet import Packet

        ports = [ListPort(), ListPort()]
        sender = StripeSenderSession(
            sim, ports, StripeConfig(quanta=(100.0, 100.0)),
            marker_policy=MarkerPolicy(interval_rounds=1),
        )
        assert sender.checkpoint_round() == 1
        for i in range(6):
            sender.submit(Packet(100, seq=i))
        assert sender.checkpoint_round() == 4

    def test_config_without_validation(self, sim):
        ports = [ListPort(), ListPort()]
        sender = StripeSenderSession(
            sim, ports, StripeConfig(quanta=(100.0, 100.0)),
        )
        reduced = sender.config_without(0)
        assert reduced.active_channels == (1,)
        with pytest.raises(ValueError):
            sender.config_without(5)
        single = StripeSenderSession(
            sim, [ListPort()], StripeConfig(quanta=(100.0,)),
        )
        with pytest.raises(ValueError):
            single.config_without(0)

    def test_exclude_request_ignored_for_last_channel(self, sim):
        from repro.core.session import ResetRequestPacket

        ports = [ListPort()]
        sender = StripeSenderSession(
            sim, ports, StripeConfig(quanta=(100.0,)),
        )
        sender.on_control(
            ResetRequestPacket(reason="x", exclude_channel=0)
        )
        # falls back to a plain reset rather than dropping the only channel
        assert sender.config.n_channels == 1
        assert sender.epoch == 1
