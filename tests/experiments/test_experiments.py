"""Tests of the experiment harnesses (quick-sized runs).

These check the *shape* claims each paper artifact makes, at reduced
simulation durations so the suite stays fast.  The full-size runs live in
``benchmarks/``.
"""

import pytest

from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "fig2_3", "fig5_6", "fig8_13", "fig15",
            "grr_worst", "sync_loss", "marker_freq", "marker_pos",
            "credit_fc", "video", "fault_tolerance", "chaos", "reliability",
            "recovery", "fec", "mtu", "multiflow", "fabric", "scalability",
            "sprinklers",
            "tcp_channels", "cell_striping", "kernel_bench", "sim_bench",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_main_lists(self, capsys):
        from repro.experiments.runner import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out

    def test_main_runs_cheap_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig5_6"]) == 0
        out = capsys.readouterr().out
        assert "matches paper: True" in out

    def test_main_rejects_unknown(self, capsys):
        from repro.experiments.runner import main

        assert main(["bogus"]) == 2


class TestLossRecoveryShape:
    def test_fifo_restored_up_to_80_percent(self):
        from repro.experiments.loss_recovery import run_loss_recovery

        result = run_loss_recovery(
            loss_rates=(0.2, 0.8), loss_phase_s=0.6, total_s=1.6
        )
        assert result.all_recovered
        for row in result.rows:
            assert row.lost > 0  # loss actually happened
            assert row.delivered > 0

    def test_quasi_fifo_during_loss(self):
        from repro.experiments.loss_recovery import run_loss_recovery

        result = run_loss_recovery(
            loss_rates=(0.3,), loss_phase_s=0.8, total_s=1.2
        )
        row = result.rows[0]
        assert row.ooo_total > 0  # reordering seen during the lossy phase


class TestReliabilityShape:
    def test_reliable_complete_where_best_effort_loses(self):
        from repro.experiments.reliability import run_reliability

        result = run_reliability(quick=True)
        reliable = [r for r in result.rows if r.mode == "reliable"]
        lossy_best_effort = [
            r for r in result.rows
            if r.mode == "best_effort" and r.loss_rate > 0
        ]
        assert all(
            r.completeness == 1.0 and r.in_order and r.duplicates == 0
            and r.drained
            for r in reliable
        )
        assert all(r.completeness < 1.0 for r in lossy_best_effort)
        assert any(r.retransmissions > 0 for r in reliable)


class TestMarkerFrequencyShape:
    def test_ooo_grows_with_interval(self):
        from repro.experiments.marker_frequency import run_marker_frequency

        result = run_marker_frequency(intervals=(1, 10, 40), duration_s=1.2)
        fractions = [row.ooo_fraction for row in result.rows]
        assert fractions[0] < fractions[-1]
        assert result.is_monotone_enough()


class TestMarkerPositionShape:
    def test_round_boundary_near_optimal(self):
        from repro.experiments.marker_position import run_marker_position

        result = run_marker_position(duration_s=1.0, seeds=(0, 1))
        assert result.boundary_is_near_optimal(slack=1.25)


class TestFlowControlShape:
    def test_credits_eliminate_loss(self):
        from repro.experiments.flow_control import run_flow_control

        result = run_flow_control(duration_s=1.0)
        without = result.row(False)
        with_credits = result.row(True)
        assert without.buffer_drops > 0
        assert with_credits.buffer_drops == 0
        assert with_credits.goodput_mbps >= without.goodput_mbps - 0.1


class TestVideoShape:
    def test_reordering_insignificant_vs_loss(self):
        from repro.experiments.video_quality import run_video_quality

        result = run_video_quality(
            loss_rates=(0.0, 0.2, 0.4), duration_s=3.0
        )
        assert result.reordering_insignificant()
        qualities = [row.striped_quality for row in result.rows]
        assert qualities[0] > qualities[-1]  # loss does hurt

    def test_perceptibility_thresholds_similar(self):
        from repro.experiments.video_quality import run_video_quality

        result = run_video_quality(
            loss_rates=(0.0, 0.2, 0.4, 0.6), duration_s=3.0
        )
        striped = result.first_perceptible_loss("striped")
        pure = result.first_perceptible_loss("pure_loss")
        assert striped == pure  # same threshold: reordering adds nothing


class TestExtensionShapes:
    def test_mtu_fragmentation_ordering(self):
        from repro.experiments.mtu_fragmentation import run_mtu_fragmentation

        result = run_mtu_fragmentation(duration_s=1.5, warmup_s=0.5)
        plain = result.row("plain strIPe (min MTU)")
        frag = result.row("fragmenting strIPe (max MTU)")
        atm = result.row("ATM alone, 9180 MTU")
        assert frag.goodput_mbps > atm.goodput_mbps > plain.goodput_mbps

    def test_multiflow_preserves_aggregate(self):
        from repro.experiments.multiflow import run_multiflow

        result = run_multiflow(n_flows=3, duration_s=2.0, warmup_s=1.0)
        assert result.aggregate_mbps > 0.85 * result.single_flow_mbps
        assert result.fairness_ratio > 0.3  # no starvation

    def test_scalability_linear(self):
        from repro.experiments.scalability import run_scalability

        result = run_scalability(
            channel_counts=(2, 6), duration_s=1.0,
            with_recovery_probe=False,
        )
        assert result.scaling_efficiency() > 0.9
        assert all(row.out_of_order == 0 for row in result.rows)

    def test_sprinklers_marker_free_on_stable_transports(self):
        from repro.experiments.sprinklers import run_sprinklers

        result = run_sprinklers(
            duration_s=0.4, chaos_total_s=1.2, chaos_seeds=(3,),
            scale_flows=64,
        )
        # Marker-free acceptance on one stable transport + TCP contrast.
        socket_row = result.row("socket", "sprinklers")
        assert socket_row.out_of_order == 0
        assert socket_row.receiver_hwm == 0
        assert socket_row.markers_sent == 0
        assert result.row("socket", "srr").markers_sent > 0
        for row in result.scale:
            assert row.delivered == row.total
        assert "sprinklers" in result.render()

    def test_chaos_recovers_and_counts_faults(self):
        from repro.experiments.chaos import run_chaos

        result = run_chaos(seeds=3, total_s=1.8)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row.faults_injected >= 0
            assert row.delivered > 100
            # back above 80% of the pre-fault baseline once faults cease
            assert row.goodput_after > 0.8 * row.goodput_before
            if "duplicate" not in row.kinds:
                assert row.duplicates == 0
        # at least one schedule actually perturbed traffic
        assert any(row.faults_injected > 0 for row in result.rows)
        assert "recovered" in result.render()

    def test_json_export(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out = tmp_path / "results.json"
        assert main(["fig5_6", "--json", str(out)]) == 0
        import json

        data = json.loads(out.read_text())
        assert "fig5_6" in data
        assert data["fig5_6"]["matches_paper"] is True

    def test_to_jsonable_variants(self):
        from repro.experiments.runner import to_jsonable

        assert to_jsonable("hello") == {"text": "hello"}
        assert "repr" in to_jsonable(object())

    def test_cell_striping_epd_wins(self):
        from repro.experiments.cell_striping import run_cell_striping

        result = run_cell_striping(duration_s=1.0)
        epd = result.row("packet striping + EPD")
        cells = result.row("cell striping")
        # comparable raw cell loss, wildly different goodput
        assert abs(epd.cells_dropped - cells.cells_dropped) < (
            0.3 * max(epd.cells_dropped, cells.cells_dropped)
        )
        assert epd.goodput_mbps > 10 * max(cells.goodput_mbps, 0.01)
        assert cells.damaged_fraction > 0.9
        assert epd.damaged_fraction < 0.05
