"""Tests that the worked-example reproductions match the paper exactly."""

from repro.experiments.worked_examples import (
    PAPER_FIG8_13_DELIVERY,
    PAPER_FQ_ORDER,
    run_fig2_3,
    run_fig5_6,
    run_fig8_13,
)


class TestFig2_3:
    def test_duality_holds(self):
        result = run_fig2_3()
        assert result.duality_holds

    def test_fq_order_matches_paper(self):
        result = run_fig2_3()
        assert result.fq_order == PAPER_FQ_ORDER

    def test_channels_recreate_queues(self):
        result = run_fig2_3()
        assert result.ls_channel_contents == [["a", "b", "c"], ["d", "e", "f"]]

    def test_render(self):
        assert "duality" in run_fig2_3().render()


class TestFig5_6:
    def test_dc_trace_matches_paper(self):
        result = run_fig5_6()
        assert result.matches_paper
        # Spot-check the figure's DC values.
        trace = {label: dc for label, _, dc in result.dc_trace}
        assert trace["a"] == -50.0
        assert trace["e"] == -100.0
        assert trace["c"] == 0.0

    def test_render(self):
        assert "matches paper: True" in run_fig5_6().render()


class TestFig8_13:
    def test_delivery_sequence_matches_paper(self):
        result = run_fig8_13()
        assert result.matches_paper
        assert result.delivered == PAPER_FIG8_13_DELIVERY

    def test_exactly_one_skip(self):
        assert run_fig8_13().skips == 1

    def test_marker_on_both_channels(self):
        result = run_fig8_13()
        assert "M" in result.channel_streams[0]
        assert "M" in result.channel_streams[1]
