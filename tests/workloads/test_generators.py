"""Unit tests for traffic generators."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.workloads.generators import (
    AlternatingSizes,
    ClosedLoopSource,
    ConstantSizes,
    PacedSource,
    RandomMixSizes,
    UniformSizes,
    alternating_packets,
    backlogged_packets,
    cbr_intervals,
    poisson_intervals,
    random_mix_packets,
)


class TestSizeGenerators:
    def test_alternating(self):
        gen = AlternatingSizes(1000, 200)
        assert [gen() for _ in range(4)] == [1000, 200, 1000, 200]

    def test_random_mix_draws_from_set(self):
        gen = RandomMixSizes((200, 1000), rng=random.Random(1))
        values = {gen() for _ in range(100)}
        assert values == {200, 1000}

    def test_random_mix_weights(self):
        gen = RandomMixSizes((200, 1000), weights=(9, 1), rng=random.Random(2))
        values = [gen() for _ in range(2000)]
        assert values.count(200) > values.count(1000) * 4

    def test_uniform_bounds(self):
        gen = UniformSizes(100, 200, rng=random.Random(3))
        assert all(100 <= gen() <= 200 for _ in range(200))

    def test_constant(self):
        gen = ConstantSizes(512)
        assert gen() == 512 == gen()

    def test_validation(self):
        with pytest.raises(ValueError):
            AlternatingSizes(0, 100)
        with pytest.raises(ValueError):
            UniformSizes(10, 5)
        with pytest.raises(ValueError):
            ConstantSizes(0)
        with pytest.raises(ValueError):
            RandomMixSizes(())


class TestPacketFactories:
    def test_backlogged_packets_sequenced(self):
        packets = backlogged_packets(10, ConstantSizes(100))
        assert [p.seq for p in packets] == list(range(10))

    def test_random_mix_packets_reproducible(self):
        a = random_mix_packets(50, seed=7)
        b = random_mix_packets(50, seed=7)
        assert [p.size for p in a] == [p.size for p in b]

    def test_alternating_packets(self):
        packets = alternating_packets(4)
        assert [p.size for p in packets] == [1000, 200, 1000, 200]


class TestPacedSource:
    def test_cbr_pacing(self):
        sim = Simulator()
        got = []
        source = PacedSource(
            sim, got.append, ConstantSizes(100), cbr_intervals(100.0), count=10
        )
        source.start()
        sim.run(until=1.0)
        assert len(got) == 10
        assert [p.seq for p in got] == list(range(10))

    def test_poisson_intervals_mean(self):
        rng = random.Random(5)
        gen = poisson_intervals(200.0, rng)
        mean = sum(gen() for _ in range(5000)) / 5000
        assert mean == pytest.approx(1 / 200.0, rel=0.1)

    def test_stop(self):
        sim = Simulator()
        got = []
        source = PacedSource(
            sim, got.append, ConstantSizes(100), cbr_intervals(1000.0)
        )
        source.start()
        sim.schedule(0.01, source.stop)
        sim.run(until=1.0)
        assert 5 <= len(got) <= 15

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            cbr_intervals(0)
        with pytest.raises(ValueError):
            poisson_intervals(-1, random.Random())


class TestClosedLoopSource:
    def test_maintains_backlog_target(self):
        sim = Simulator()
        backlog = [0]
        submitted = []

        def submit(packet):
            submitted.append(packet)
            backlog[0] += 1

        source = ClosedLoopSource(
            sim, submit, lambda: backlog[0], ConstantSizes(100), target=5
        )
        source.start()
        sim.run(until=0.01)
        assert backlog[0] == 5
        # drain two, poke, refills to target
        backlog[0] -= 2
        source.poke()
        assert backlog[0] == 5

    def test_count_limit(self):
        sim = Simulator()
        submitted = []
        source = ClosedLoopSource(
            sim, submitted.append, lambda: 0, ConstantSizes(100),
            target=100, count=7,
        )
        source.start()
        sim.run(until=0.1)
        assert len(submitted) == 7
