"""Unit tests for the NV-style video workload and playback model."""

import pytest

from repro.workloads.video import (
    PlaybackModel,
    VideoChunk,
    perceptibly_different,
    synthesize_nv_trace,
)


class TestTraceSynthesis:
    def test_frame_count_matches_duration(self):
        trace = synthesize_nv_trace(duration_s=5.0, fps=10.0)
        assert len(trace.frames) == 50
        assert trace.duration == pytest.approx(5.0)

    def test_packetization_respects_chunk_size(self):
        trace = synthesize_nv_trace(duration_s=2.0, packet_bytes=1000)
        for frame in trace.frames:
            assert all(size <= 1000 for size in frame.packet_sizes)
            assert sum(frame.packet_sizes) == frame.total_bytes

    def test_refresh_frames_larger(self):
        trace = synthesize_nv_trace(
            duration_s=10.0, refresh_every=25, refresh_scale=3.0, seed=1
        )
        refresh = [f.total_bytes for i, f in enumerate(trace.frames)
                   if i % 25 == 0]
        delta = [f.total_bytes for i, f in enumerate(trace.frames)
                 if i % 25 != 0]
        assert sum(refresh) / len(refresh) > 1.8 * sum(delta) / len(delta)

    def test_packets_flattened_in_capture_order(self):
        trace = synthesize_nv_trace(duration_s=1.0)
        packets = trace.packets()
        assert [p.seq for p in packets] == list(range(len(packets)))
        times = [p.payload.capture_time for p in packets]
        assert times == sorted(times)

    def test_reproducible(self):
        a = synthesize_nv_trace(duration_s=3.0, seed=9)
        b = synthesize_nv_trace(duration_s=3.0, seed=9)
        assert [f.packet_sizes for f in a.frames] == [
            f.packet_sizes for f in b.frames
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_nv_trace(duration_s=0)


class TestPlayback:
    def test_all_on_time_is_perfect(self):
        trace = synthesize_nv_trace(duration_s=2.0)
        playback = PlaybackModel(trace, latency_budget=0.5)
        for packet in trace.packets():
            playback.feed(packet, packet.payload.capture_time + 0.01)
        report = playback.report()
        assert report.quality == 1.0
        assert report.frames_missing == 0

    def test_lost_packets_damage_frames(self):
        trace = synthesize_nv_trace(duration_s=2.0)
        playback = PlaybackModel(trace)
        packets = trace.packets()
        for packet in packets[::2]:  # half the packets lost
            playback.feed(packet, packet.payload.capture_time + 0.01)
        report = playback.report()
        assert report.quality < 1.0
        assert report.frames_partial + report.frames_missing > 0

    def test_late_packet_counts_as_unusable(self):
        trace = synthesize_nv_trace(duration_s=1.0)
        playback = PlaybackModel(trace, latency_budget=0.2)
        for packet in trace.packets():
            playback.feed(packet, packet.payload.capture_time + 1.0)
        report = playback.report()
        assert report.packets_late == len(trace.packets())
        assert report.quality == 0.0

    def test_reordered_but_on_time_costs_nothing(self):
        """The crux of the paper's video argument: reordering within the
        playout budget is invisible."""
        trace = synthesize_nv_trace(duration_s=2.0)
        playback = PlaybackModel(trace, latency_budget=0.5)
        packets = list(reversed(trace.packets()[:20])) + trace.packets()[20:]
        for packet in packets:
            playback.feed(packet, packet.payload.capture_time + 0.1)
        assert playback.report().quality == 1.0

    def test_foreign_payload_ignored(self):
        from repro.core.packet import Packet

        trace = synthesize_nv_trace(duration_s=1.0)
        playback = PlaybackModel(trace)
        playback.feed(Packet(100), 0.0)
        assert playback.packets_received == 0


class TestPerceptibility:
    def test_equal_reports_not_different(self):
        trace = synthesize_nv_trace(duration_s=1.0)
        playback = PlaybackModel(trace)
        for packet in trace.packets():
            playback.feed(packet, packet.payload.capture_time)
        report = playback.report()
        assert not perceptibly_different(report, report)
