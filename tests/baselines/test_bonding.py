"""Unit tests for the BONDING-style inverse multiplexer baseline."""

import pytest

from repro.baselines.bonding import BondingDemux, BondingFrame, BondingMux
from repro.core.packet import Packet


class TestMux:
    def test_packet_carved_into_frames(self):
        mux = BondingMux(n_channels=2, frame_bytes=512)
        frames = mux.submit(Packet(1024))
        assert len(frames) == 2
        assert all(f.payload_bytes == 512 for f in frames)

    def test_partial_frame_held_until_flush(self):
        mux = BondingMux(n_channels=2, frame_bytes=512)
        frames = mux.submit(Packet(700))
        assert len(frames) == 1
        tail = mux.flush()
        assert tail is not None
        assert mux.padding_bytes == 512 - (700 - 512)

    def test_round_robin_channel_assignment(self):
        mux = BondingMux(n_channels=3, frame_bytes=100)
        frames = mux.submit(Packet(600))
        assert [f.channel for f in frames] == [0, 1, 2, 0, 1, 2]

    def test_packet_boundaries_recorded(self):
        mux = BondingMux(n_channels=2, frame_bytes=512)
        a = Packet(300)
        b = Packet(300)
        frames = mux.submit(a)
        frames += mux.submit(b)
        # first frame holds all of a plus part of b
        content = frames[0].content
        assert content[0] == (a.uid, 300)
        assert content[1][0] == b.uid

    def test_validation(self):
        with pytest.raises(ValueError):
            BondingMux(0)
        with pytest.raises(ValueError):
            BondingMux(2, frame_bytes=4)


class TestDemux:
    def test_in_order_release(self):
        mux = BondingMux(2, frame_bytes=100)
        demux = BondingDemux(2)
        frames = mux.submit(Packet(400))
        released = []
        for frame in frames:
            released.extend(demux.push(frame))
        assert [f.sequence for f in released] == [0, 1, 2, 3]

    def test_skew_within_bound_absorbed(self):
        mux = BondingMux(2, frame_bytes=100)
        demux = BondingDemux(2, max_skew_frames=8)
        frames = mux.submit(Packet(800))
        # channel 0's frames arrive first (skew of a few frames)
        ch0 = [f for f in frames if f.channel == 0]
        ch1 = [f for f in frames if f.channel == 1]
        released = []
        for frame in ch0:
            released.extend(demux.push(frame))
        for frame in ch1:
            released.extend(demux.push(frame))
        assert [f.sequence for f in released] == list(range(8))
        assert demux.sync_losses == 0

    def test_skew_beyond_bound_loses_data(self):
        """The BONDING failure mode the paper's design avoids."""
        mux = BondingMux(2, frame_bytes=100)
        demux = BondingDemux(2, max_skew_frames=3)
        frames = mux.submit(Packet(2000))  # 20 frames
        ch0 = [f for f in frames if f.channel == 0]
        for frame in ch0:  # 10 frames of one channel arrive way early
            demux.push(frame)
        assert demux.sync_losses >= 1
        assert demux.frames_lost > 0

    def test_stale_frame_counted_lost(self):
        demux = BondingDemux(2)
        demux.push(BondingFrame(0, 0, 100, []))
        out = demux.push(BondingFrame(0, 0, 100, []))
        assert out == []
        assert demux.frames_lost == 1

    def test_reassembly_tracking(self):
        mux = BondingMux(2, frame_bytes=100)
        demux = BondingDemux(2)
        packet = Packet(250)
        frames = mux.submit(packet)
        tail = mux.flush()
        for frame in frames + [tail]:
            demux.push(frame)
        assert demux.assembled_bytes(packet.uid) == 250

    def test_perfect_load_sharing_by_construction(self):
        """Fixed-size frames: byte split is exactly even regardless of the
        packet size mix — BONDING's strength (bought by reformatting)."""
        mux = BondingMux(2, frame_bytes=64)
        per_channel = [0, 0]
        for size in [1000, 200] * 50:
            for frame in mux.submit(Packet(size)):
                per_channel[frame.channel] += frame.payload_bytes
        assert abs(per_channel[0] - per_channel[1]) <= 64
