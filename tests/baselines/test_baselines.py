"""Unit tests for the comparison striping schemes (section 2.1)."""

import random

import pytest

from repro.baselines.address_hash import AddressHashing, stable_hash
from repro.baselines.random_selection import RandomSelection
from repro.baselines.sqf import ShortestQueueFirst
from repro.core.packet import Packet
from repro.core.transform import bytes_per_channel, stripe_sequence
from tests.conftest import make_packets


class TestShortestQueueFirst:
    def test_picks_shortest(self):
        sqf = ShortestQueueFirst(3)
        assert sqf.choose(Packet(100), [5, 2, 9]) == 1

    def test_tie_goes_to_lowest_index(self):
        sqf = ShortestQueueFirst(3)
        assert sqf.choose(Packet(100), [4, 4, 4]) == 0

    def test_adapts_to_channel_speed(self):
        """Draining one queue faster attracts more packets to it."""
        sqf = ShortestQueueFirst(2)
        depths = [0, 0]
        assigned = [0, 0]
        for i in range(300):
            channel = sqf.choose(Packet(100), depths)
            assigned[channel] += 1
            depths[channel] += 1
            sqf.notify_sent(channel, None)
            # channel 0 drains 3x faster
            if i % 1 == 0 and depths[0] > 0:
                depths[0] = max(0, depths[0] - 3)
            if i % 3 == 0 and depths[1] > 0:
                depths[1] -= 1
        assert assigned[0] > assigned[1]

    def test_fallback_without_depths(self):
        sqf = ShortestQueueFirst(2)
        choice = sqf.choose(Packet(100), None)
        sqf.notify_sent(choice, None)
        assert sqf.choose(Packet(100), None) == (choice + 1) % 2

    def test_not_simulatable(self):
        assert ShortestQueueFirst(2).simulatable is False

    def test_validation(self):
        with pytest.raises(ValueError):
            ShortestQueueFirst(0)


class TestRandomSelection:
    def test_roughly_uniform(self):
        policy = RandomSelection(3, rng=random.Random(1))
        counts = [0, 0, 0]
        for _ in range(3000):
            channel = policy.choose(Packet(100))
            counts[channel] += 1
            policy.notify_sent(channel, None)
        assert min(counts) > 800

    def test_choice_latched_until_notify(self):
        policy = RandomSelection(5, rng=random.Random(2))
        first = policy.choose(Packet(100))
        assert policy.choose(Packet(100)) == first
        policy.notify_sent(first, None)

    def test_reset_clears_latch(self):
        policy = RandomSelection(5, rng=random.Random(3))
        policy.choose(Packet(100))
        policy.reset()  # no stale latch crash afterwards
        policy.choose(Packet(100))

    def test_expected_byte_fairness(self):
        policy = RandomSelection(2, rng=random.Random(4))
        packets = make_packets([100] * 5000)
        channels = stripe_sequence(policy, packets)
        totals = bytes_per_channel(channels)
        assert abs(totals[0] - totals[1]) / sum(totals) < 0.05


class TestAddressHashing:
    def test_same_flow_same_channel(self):
        policy = AddressHashing(4)
        a = [policy.choose(Packet(100, flow="10.0.0.1")) for _ in range(20)]
        assert len(set(a)) == 1

    def test_flows_spread_across_channels(self):
        policy = AddressHashing(4)
        channels = {
            policy.choose(Packet(100, flow=f"10.0.0.{i}")) for i in range(64)
        }
        assert len(channels) == 4

    def test_per_flow_fifo_but_poor_sharing(self):
        """All traffic to one destination lands on one channel: zero load
        sharing for a single flow — the paper's criticism."""
        policy = AddressHashing(4)
        packets = make_packets([1000] * 100)
        for p in packets:
            p.flow = "the-one-destination"
        channels = stripe_sequence(policy, packets)
        nonempty = [c for c in channels if c]
        assert len(nonempty) == 1
        assert len(nonempty[0]) == 100

    def test_stable_hash_is_process_independent(self):
        assert stable_hash("x", 16) == stable_hash("x", 16)
        assert stable_hash("x", 16) != stable_hash("y", 16) or True  # may collide

    def test_capabilities(self):
        assert AddressHashing(2).capabilities.fifo_delivery == "per_flow_fifo"
