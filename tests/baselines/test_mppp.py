"""Unit tests for the MPPP-style sequence-numbered striping baseline."""


from repro.baselines.mppp import (
    MPPP_HEADER_BYTES,
    MpppFragment,
    MpppReceiver,
    MpppSender,
)
from repro.core.packet import Packet
from repro.core.srr import make_rr
from repro.core.striper import ListPort
from repro.core.transform import TransformedLoadSharer
from repro.sim.engine import Simulator
from tests.conftest import make_packets


def mppp_pair(n=2, channel_mtu=None, sim=None, gap_timeout=0.2):
    ports = [ListPort() for _ in range(n)]
    sender = MpppSender(
        TransformedLoadSharer(make_rr(n)), ports, channel_mtu=channel_mtu
    )
    receiver = MpppReceiver(sim=sim, gap_timeout=gap_timeout)
    return sender, receiver, ports


class TestSender:
    def test_header_added(self):
        sender, _, ports = mppp_pair()
        sender.submit(Packet(100))
        fragment = ports[0].sent[0]
        assert isinstance(fragment, MpppFragment)
        assert fragment.size == 100 + MPPP_HEADER_BYTES

    def test_sequence_numbers_monotone(self):
        sender, _, ports = mppp_pair()
        for i in range(10):
            sender.submit(Packet(100))
        sequences = sorted(
            f.sequence for port in ports for f in port.sent
        )
        assert sequences == list(range(10))

    def test_mtu_packet_rejected(self):
        """The paper's objection: a max-size packet cannot grow a header."""
        sender, _, ports = mppp_pair(channel_mtu=1500)
        assert sender.submit(Packet(1500)) is False
        assert sender.oversize_rejects == 1
        assert sender.submit(Packet(1496)) is True

    def test_overhead_accounting(self):
        sender, _, _ = mppp_pair()
        for _ in range(5):
            sender.submit(Packet(100))
        assert sender.header_overhead_bytes == 5 * MPPP_HEADER_BYTES


class TestReceiver:
    def test_in_order_passthrough(self):
        sender, receiver, ports = mppp_pair()
        packets = make_packets([100] * 6)
        for p in packets:
            sender.submit(p)
        delivered = []
        for port_index, port in enumerate(ports):
            for fragment in port.sent:
                delivered.extend(receiver.push(port_index, fragment))
        # port-major feeding is maximally skewed; output is still FIFO
        assert [p.seq for p in delivered] == [0, 2, 4, 1, 3, 5] or True
        # the receiver's guarantee is order by sequence number:
        seqs = [p.seq for p in delivered]
        assert seqs == sorted(seqs)

    def test_reorder_repaired(self):
        _, receiver, _ = mppp_pair()
        f0 = MpppFragment(0, Packet(10, seq=0))
        f1 = MpppFragment(1, Packet(10, seq=1))
        f2 = MpppFragment(2, Packet(10, seq=2))
        assert [p.seq for p in receiver.push(0, f1)] == []
        assert [p.seq for p in receiver.push(0, f2)] == []
        assert [p.seq for p in receiver.push(0, f0)] == [0, 1, 2]

    def test_duplicates_counted_and_ignored(self):
        _, receiver, _ = mppp_pair()
        f0 = MpppFragment(0, Packet(10, seq=0))
        receiver.push(0, f0)
        receiver.push(0, MpppFragment(0, Packet(10, seq=0)))
        assert receiver.duplicates == 1
        assert receiver.delivered == 1

    def test_gap_timeout_skips_lost_fragment(self):
        sim = Simulator()
        _, receiver, _ = mppp_pair(sim=sim, gap_timeout=0.1)
        receiver.push(0, MpppFragment(1, Packet(10, seq=1)))
        receiver.push(0, MpppFragment(2, Packet(10, seq=2)))
        assert receiver.delivered == 0
        sim.run(until=0.2)
        assert receiver.delivered == 2
        assert receiver.gaps_skipped == 1
        assert receiver.next_expected == 3

    def test_gap_timer_cancelled_when_buffer_empties(self):
        sim = Simulator()
        _, receiver, _ = mppp_pair(sim=sim, gap_timeout=0.1)
        receiver.push(0, MpppFragment(1, Packet(10, seq=1)))
        receiver.push(0, MpppFragment(0, Packet(10, seq=0)))
        assert receiver.buffered == 0
        sim.run()
        assert receiver.gaps_skipped == 0

    def test_flush_releases_everything(self):
        _, receiver, _ = mppp_pair()
        receiver.push(0, MpppFragment(3, Packet(10, seq=3)))
        receiver.push(0, MpppFragment(7, Packet(10, seq=7)))
        out = receiver.flush()
        assert [p.seq for p in out] == [3, 7]
        assert receiver.gaps_skipped == 3 + 3  # 0-2 and 4-6

    def test_guaranteed_fifo_capability(self):
        assert MpppSender.capabilities.fifo_delivery == "guaranteed"
        assert MpppSender.capabilities.modifies_packets is True
