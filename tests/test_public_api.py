"""The public API surface documented in API.md imports and is stable."""

import importlib

import pytest

SURFACE = {
    "repro.core": [
        "Packet", "MarkerPacket", "is_marker", "Codepoint",
        "CausalFQ", "NonCausalFQ", "SRR", "SRRState", "DRR", "DKS",
        "make_rr", "make_grr", "grr_weights_for_bandwidths",
        "SeededRandomFQ", "WeightedRandomFQ",
        "LoadSharer", "TransformedLoadSharer", "stripe_sequence",
        "bytes_per_channel", "verify_reverse_correspondence",
        "Striper", "MarkerPolicy", "ListPort",
        "Resequencer", "NullResequencer", "SRRReceiver",
        "make_resequencer", "RESEQ_MODES",
        "encode_marker", "decode_marker", "piggybacked_credit",
        "MARKER_WIRE_BYTES",
        "SchedulerKernel", "SRRKernel", "SharerKernel", "kernel_for",
        "fq_service_order", "fq_service_order_noncausal",
        "srr_fairness_report", "jain_fairness_index",
        "SprinklersDiscipline", "FlowRateEstimator", "stripe_size_for",
        "StripeConfig", "StripeSenderSession", "StripeReceiverSession",
        "LocalChecker", "ResetPacket", "ResetAckPacket",
        "ResetRequestPacket",
    ],
    "repro.sim": [
        "Simulator", "Event", "Channel", "ChannelStats",
        "NoLoss", "BernoulliLoss", "GilbertElliottLoss",
        "DeterministicLoss", "CorruptionModel",
        "HostCPU", "NicQueue", "RandomStreams", "Tracer",
    ],
    "repro.net": [
        "IPAddress", "MACAddress", "IPPacket", "RoutingTable",
        "EthernetInterface", "AtmInterface", "StripeInterface",
        "Stack", "Link", "FrameType",
        "RESEQ_MARKER", "RESEQ_PLAIN", "RESEQ_NONE",
        "Fragment", "FragmentingStriper", "Reassembler",
        "aal5_wire_size", "ethernet_wire_size",
    ],
    "repro.transport": [
        "UdpLayer", "UdpSocket", "TcpLayer", "BulkSender", "BulkReceiver",
        "CreditSender", "CreditReceiver", "CreditPacket",
        "ChannelPort", "StripeSenderPipeline", "StripeReceiverPipeline",
        "FastStriper", "DISCIPLINES", "make_discipline",
        "resolve_discipline", "receiver_mode_for",
        "SYNC_MODELS", "sync_model_for", "make_sync_model",
        "SynchronizationModel", "MarkerSyncModel", "HashSyncModel",
        "HeaderSyncModel",
        "StripedSocketSender", "StripedSocketReceiver", "UdpChannelPort",
        "SessionSocketSender", "SessionSocketReceiver",
        "ChannelFailureDetector", "connect_duplex",
        "StripedTcpSender", "StripedTcpReceiver",
        "FastStripedSender", "FastStripedReceiver", "FastChannelPort",
        "wire_size",
    ],
    "repro.baselines": [
        "ShortestQueueFirst", "RandomSelection", "AddressHashing",
        "MpppSender", "MpppReceiver", "MpppDiscipline",
        "BondingMux", "BondingDemux", "BondingDiscipline",
        "BondingResequencer",
    ],
    "repro.workloads": [
        "RandomMixSizes", "AlternatingSizes", "ConstantSizes",
        "PacedSource", "ClosedLoopSource",
        "synthesize_nv_trace", "PlaybackModel",
    ],
    "repro.analysis": [
        "mbps", "ThroughputWindow", "analyze_order", "ReorderReport",
        "paper_table1_rows", "extended_rows", "render_table",
    ],
    "repro.experiments": ["EXPERIMENTS", "run_experiment"],
}


@pytest.mark.parametrize("module_name", sorted(SURFACE))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    missing = [
        name for name in SURFACE[module_name] if not hasattr(module, name)
    ]
    assert missing == [], f"{module_name} missing: {missing}"


def test_version():
    import repro

    assert repro.__version__
