"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]

    def test_zero_delay_event_runs_after_current(self, sim):
        order = []

        def first():
            sim.schedule(0.0, lambda: order.append("second"))
            order.append("first")

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]


class TestRunControl:
    def test_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(5.0, seen.append, 5)
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0  # clock advanced to the horizon
        assert sim.pending == 1

    def test_run_resumes_after_until(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(5.0, seen.append, 5)
        sim.run(until=2.0)
        sim.run()
        assert seen == [1, 5]

    def test_max_events_limits_processing(self, sim):
        seen = []
        for i in range(10):
            sim.schedule(float(i + 1), seen.append, i)
        processed = sim.run(max_events=3)
        assert processed == 3
        assert seen == [0, 1, 2]

    def test_run_returns_count(self, sim):
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 4
        assert sim.events_processed == 4

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_processes_single_event(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        assert sim.step() is True
        assert seen == ["a"]
        assert sim.step() is True
        assert sim.step() is False


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_one_of_many(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        target = sim.schedule(2.0, seen.append, "b")
        sim.schedule(3.0, seen.append, "c")
        target.cancel()
        sim.run()
        assert seen == ["a", "c"]

    def test_peek_time_skips_cancelled(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self, sim):
        assert sim.peek_time() is None

    def test_cancel_during_run(self, sim):
        seen = []
        later = sim.schedule(2.0, seen.append, "late")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert seen == []


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []

            def tick(n):
                trace.append((sim.now, n))
                if n < 20:
                    sim.schedule(0.1 * (n % 3 + 1), tick, n + 1)

            sim.schedule(0.0, tick, 0)
            sim.run()
            return trace

        assert run_once() == run_once()
