"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]

    def test_zero_delay_event_runs_after_current(self, sim):
        order = []

        def first():
            sim.schedule(0.0, lambda: order.append("second"))
            order.append("first")

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]


class TestRunControl:
    def test_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(5.0, seen.append, 5)
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0  # clock advanced to the horizon
        assert sim.pending == 1

    def test_run_resumes_after_until(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(5.0, seen.append, 5)
        sim.run(until=2.0)
        sim.run()
        assert seen == [1, 5]

    def test_max_events_limits_processing(self, sim):
        seen = []
        for i in range(10):
            sim.schedule(float(i + 1), seen.append, i)
        processed = sim.run(max_events=3)
        assert processed == 3
        assert seen == [0, 1, 2]

    def test_run_returns_count(self, sim):
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 4
        assert sim.events_processed == 4

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_processes_single_event(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        assert sim.step() is True
        assert seen == ["a"]
        assert sim.step() is True
        assert sim.step() is False


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_one_of_many(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        target = sim.schedule(2.0, seen.append, "b")
        sim.schedule(3.0, seen.append, "c")
        target.cancel()
        sim.run()
        assert seen == ["a", "c"]

    def test_peek_time_skips_cancelled(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self, sim):
        assert sim.peek_time() is None

    def test_cancel_during_run(self, sim):
        seen = []
        later = sim.schedule(2.0, seen.append, "late")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert seen == []


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []

            def tick(n):
                trace.append((sim.now, n))
                if n < 20:
                    sim.schedule(0.1 * (n % 3 + 1), tick, n + 1)

            sim.schedule(0.0, tick, 0)
            sim.run()
            return trace

        assert run_once() == run_once()


class TestSlotFreeScheduling:
    def test_schedule_call_runs_at_time(self, sim):
        seen = []
        sim.schedule_call(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_schedule_call_orders_with_handles(self, sim):
        order = []
        sim.schedule(1.0, order.append, "handle")
        sim.schedule_call(1.0, lambda: order.append("call"))
        sim.run()
        assert order == ["handle", "call"]  # insertion order breaks the tie

    def test_schedule_call_rejects_past(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_call(1.0, lambda: None)

    def test_schedule_many_preserves_insertion_order(self, sim):
        order = []
        count = sim.schedule_many(
            (1.0, lambda tag=tag: order.append(tag)) for tag in "abc"
        )
        sim.schedule(1.0, order.append, "d")
        sim.run()
        assert count == 3
        assert order == ["a", "b", "c", "d"]

    def test_schedule_many_accepts_unsorted_times(self, sim):
        order = []
        sim.schedule_many(
            [
                (3.0, lambda: order.append("c")),
                (1.0, lambda: order.append("a")),
                (2.0, lambda: order.append("b")),
            ]
        )
        sim.run()
        assert order == ["a", "b", "c"]

    def test_schedule_many_rejects_past(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_many([(6.0, lambda: None), (1.0, lambda: None)])


class TestCompaction:
    def test_cancelled_events_are_reclaimed(self, sim):
        """Regression: cancelled timers must not occupy heap slots forever."""
        live = [sim.schedule(10.0 + i, lambda: None) for i in range(10)]
        dead = [sim.schedule(20.0 + i, lambda: None) for i in range(190)]
        assert sim.pending == 200
        for event in dead:
            event.cancel()
        # Compaction fires whenever >50% of a >64-entry heap is dead, so
        # the heap must have shrunk to a small residue: the 10 live events
        # plus at most a minority of dead entries under the threshold.
        assert sim.pending < 70
        assert sim.cancelled_pending * 2 <= sim.pending or sim.pending <= 64
        assert all(not event.cancelled for event in live)

    def test_heap_does_not_grow_under_cancel_churn(self, sim):
        """The retransmit-timer pattern: schedule, cancel, reschedule."""
        peak = 0
        for i in range(5000):
            event = sim.schedule(1000.0 + i, lambda: None)
            event.cancel()
            peak = max(peak, sim.pending)
        assert peak < 200

    def test_events_fire_correctly_after_compaction(self, sim):
        seen = []
        keep = []
        for i in range(50):
            keep.append(sim.schedule(1.0 + i, seen.append, i))
        doomed = [sim.schedule(100.0 + i, seen.append, -1) for i in range(150)]
        for event in doomed:
            event.cancel()
        assert sim.pending < 200  # compacted at least once
        sim.run()
        assert seen == list(range(50))

    def test_compaction_during_run_keeps_heap_identity(self, sim):
        """A callback-triggered compaction must not strand the run loop."""
        seen = []
        doomed = [sim.schedule(50.0 + i, seen.append, -1) for i in range(150)]

        def cancel_all_then_schedule():
            for event in doomed:
                event.cancel()
            sim.schedule(1.0, seen.append, "after")

        sim.schedule(1.0, cancel_all_then_schedule)
        sim.schedule(40.0, seen.append, "mid")
        sim.run()
        assert seen == ["after", "mid"]


class TestBatchPop:
    def test_batch_matches_unbatched_order(self):
        def run_once(batch):
            sim = Simulator()
            trace = []

            def tick(n):
                trace.append((sim.now, n))
                if n < 30:
                    sim.schedule(0.1 * (n % 3), tick, n + 1)

            for i in range(5):
                sim.schedule(0.0, tick, 0)
            processed = sim.run(batch=batch)
            return trace, processed

        assert run_once(False) == run_once(True)

    def test_batch_honors_cancellation_at_execution(self, sim):
        seen = []
        holder = {}
        # The canceller has the earlier seq, so it runs first within the
        # batch and must suppress the already-popped later member.
        sim.schedule(1.0, lambda: holder["late"].cancel())
        holder["late"] = sim.schedule(1.0, seen.append, "late")
        sim.run(batch=True)
        assert seen == []

    def test_batch_respects_until(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        sim.run(until=1.5, batch=True)
        assert seen == ["a"]
        assert sim.now == 1.5


class TestStepSemantics:
    def test_step_rejects_reentrancy(self, sim):
        errors = []

        def reenter():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.step()
        assert len(errors) == 1

    def test_step_respects_until_and_advances_clock(self, sim):
        seen = []
        sim.schedule(2.0, seen.append, "late")
        assert sim.step(until=1.0) is False
        assert sim.now == 1.0  # clock advanced to the horizon, like run()
        assert seen == []
        assert sim.step(until=3.0) is True
        assert seen == ["late"]

    def test_step_counts_events_processed(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        sim.step()
        assert sim.events_processed == 2

    def test_step_skips_cancelled(self, sim):
        seen = []
        doomed = sim.schedule(1.0, seen.append, "dead")
        sim.schedule(2.0, seen.append, "live")
        doomed.cancel()
        assert sim.step() is True
        assert seen == ["live"]


class TestEntryFreeList:
    """Slot-free heap entries are recycled through the engine free-list."""

    def test_schedule_call_reuses_retired_entries(self, sim):
        seen = []
        for i in range(5):
            sim.schedule_call(float(i + 1), lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]
        assert sim.entries_reused == 0  # nothing retired before first batch
        for i in range(5):
            sim.schedule_call(sim.now + i + 1, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4] * 2
        assert sim.entries_reused == 5

    def test_schedule_many_draws_from_pool(self, sim):
        sim.schedule_call(1.0, lambda: None)
        sim.run()
        seen = []
        count = sim.schedule_many(
            [(sim.now + 1.0, lambda: seen.append("a")),
             (sim.now + 2.0, lambda: seen.append("b"))]
        )
        assert count == 2
        sim.run()
        assert seen == ["a", "b"]
        assert sim.entries_reused >= 1

    def test_handle_scheduled_events_are_not_pooled(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule_call(2.0, lambda: None)
        sim.run()
        assert sim.entries_reused == 0
