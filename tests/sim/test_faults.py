"""Unit tests for the composable fault-injection layer."""

import random

import pytest

from repro.core.packet import MarkerPacket, Packet
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import (
    CHANNEL_FAULT_KINDS,
    CONTROL_SIZE_MAX,
    EXACTLY_ONCE_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
    burst_loss_schedule,
)
from repro.sim.loss import BernoulliLoss


def make_channel(sim, **kwargs):
    defaults = dict(
        bandwidth_bps=8e6, prop_delay=0.5e-3, queue_limit=64, name="ch"
    )
    defaults.update(kwargs)
    return Channel(sim, **defaults)


def drive(sim, channel, count, size=500, interval=0.001, start=0.0):
    """Offer ``count`` packets to the channel on a fixed cadence."""
    for i in range(count):
        sim.schedule_at(
            start + i * interval,
            lambda seq=i: channel.send(Packet(size=size, seq=seq), force=True),
        )


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time=0.0, channel=0, kind="meteor")

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, channel=0, kind="crash")
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, channel=0, kind="crash", duration=-0.1)
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, channel=-1, kind="crash")

    def test_end_time(self):
        event = FaultEvent(time=0.5, channel=0, kind="pause", duration=0.2)
        assert event.end == pytest.approx(0.7)


class TestCrash:
    def test_crash_window_drops_then_heals(self, sim):
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        schedule = FaultSchedule(
            [FaultEvent(time=0.01, channel=0, kind="crash", duration=0.02)]
        )
        installed = schedule.install(sim, [channel])
        drive(sim, channel, 40, interval=0.001)
        sim.run()
        assert installed.crash_drops > 0
        # Channel stats count the injected losses (the wrapper rides the
        # loss-model hook, not a side channel).
        assert channel.stats.lost_packets == installed.crash_drops
        assert len(arrived) == 40 - installed.crash_drops
        # Packets after the window all survive, in order.
        post = [p.seq for p in arrived if p.seq >= 31]
        assert post == sorted(post) and len(post) == 9

    def test_crash_composes_with_inner_loss(self, sim):
        channel = make_channel(
            sim, loss_model=BernoulliLoss(0.5, rng=random.Random(7))
        )
        arrived = []
        channel.on_deliver = arrived.append
        schedule = FaultSchedule(
            [FaultEvent(time=0.0, channel=0, kind="crash", duration=0.01)]
        )
        installed = schedule.install(sim, [channel])
        drive(sim, channel, 60, interval=0.001)
        sim.run()
        # During the crash everything drops; afterwards the inner Bernoulli
        # model keeps drawing, so total losses exceed the crash drops.
        assert installed.crash_drops == 10
        assert channel.stats.lost_packets > installed.crash_drops
        assert 0 < len(arrived) < 50


class TestPause:
    def test_pause_is_lossless_backpressure(self, sim):
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        schedule = FaultSchedule(
            [FaultEvent(time=0.005, channel=0, kind="pause", duration=0.05)]
        )
        schedule.install(sim, [channel])
        drive(sim, channel, 30, interval=0.001)
        sim.run()
        assert channel.stats.lost_packets == 0
        assert [p.seq for p in arrived] == list(range(30))
        # Nothing (beyond the in-flight packet) is delivered mid-pause.
        assert not channel.paused

    def test_overlapping_pauses_resume_once(self, sim):
        channel = make_channel(sim)
        got = []
        channel.on_deliver = got.append
        schedule = FaultSchedule(
            [
                FaultEvent(time=0.00, channel=0, kind="pause", duration=0.04),
                FaultEvent(time=0.02, channel=0, kind="pause", duration=0.04),
            ]
        )
        schedule.install(sim, [channel])
        drive(sim, channel, 5, interval=0.001)
        sim.run(until=0.05)
        assert channel.paused  # second pause still holds at t=0.05
        sim.run()
        assert not channel.paused
        assert len(got) == 5


class TestReceiveSideFaults:
    def test_corrupt_discards_arrivals(self, sim):
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=0.0, channel=0, kind="corrupt",
                    duration=0.02, magnitude=1.0,
                )
            ]
        )
        installed = schedule.install(sim, [channel])
        drive(sim, channel, 30, interval=0.001)
        sim.run()
        assert installed.corrupt_drops > 0
        assert len(arrived) == 30 - installed.corrupt_drops

    def test_marker_loss_spares_data(self, sim):
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=0.0, channel=0, kind="marker_loss",
                    duration=1.0, magnitude=1.0,
                )
            ]
        )
        installed = schedule.install(sim, [channel])
        for i in range(10):
            sim.schedule_at(
                i * 0.001,
                lambda seq=i: channel.send(
                    Packet(size=500, seq=seq), force=True
                ),
            )
            sim.schedule_at(
                i * 0.001 + 0.0005,
                lambda: channel.send(
                    MarkerPacket(channel=0, round_number=1, deficit=0.0),
                    force=True,
                ),
            )
        sim.run()
        assert installed.marker_drops == 10
        assert [p.seq for p in arrived] == list(range(10))
        assert all(p.size > CONTROL_SIZE_MAX for p in arrived)

    def test_duplicate_injects_copies(self, sim):
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=0.0, channel=0, kind="duplicate",
                    duration=0.02, magnitude=1.0,
                )
            ]
        )
        installed = schedule.install(sim, [channel])
        drive(sim, channel, 30, interval=0.001)
        sim.run()
        assert installed.duplicates_injected > 0
        assert len(arrived) == 30 + installed.duplicates_injected
        # Duplicated or not, per-channel order is preserved.
        seqs = [p.seq for p in arrived]
        assert seqs == sorted(seqs)

    def test_reorder_burst_scrambles_then_ceases(self, sim):
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=0.0, channel=0, kind="reorder",
                    duration=0.0105, magnitude=4.0,
                )
            ]
        )
        installed = schedule.install(sim, [channel])
        drive(sim, channel, 30, interval=0.001)
        sim.run()
        seqs = [p.seq for p in arrived]
        assert sorted(seqs) == list(range(30))  # nothing lost
        assert installed.reordered > 0
        assert seqs != sorted(seqs)
        # After the window the stream is in order again.
        tail = seqs[-15:]
        assert tail == sorted(tail)

    def test_delay_spike_preserves_fifo(self, sim):
        channel = make_channel(sim)
        arrivals = []
        channel.on_deliver = lambda p: arrivals.append((sim.now, p.seq))
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=0.004, channel=0, kind="delay_spike",
                    duration=0.01, magnitude=0.02,
                )
            ]
        )
        installed = schedule.install(sim, [channel])
        drive(sim, channel, 25, interval=0.001)
        sim.run()
        assert installed.injectors[0].delayed > 0
        seqs = [seq for _, seq in arrivals]
        assert seqs == list(range(25))  # FIFO survives the spike
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        # The spike actually delayed something beyond the base latency.
        base = 500 * 8 / 8e6 + 0.5e-3
        spiked = [t - (0.001 * seq + base) for t, seq in arrivals]
        assert max(spiked) > 0.015


class TestBurstLoss:
    def test_pinned_burst_drops_everything_in_window(self, sim):
        """magnitude >= 1 pins the channel in the bad state: the window is
        a deterministic wipe, and recovery afterwards is immediate."""
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        schedule = FaultSchedule(
            [FaultEvent(time=0.0, channel=0, kind="burst_loss",
                        duration=0.0105, magnitude=1.0)]
        )
        installed = schedule.install(sim, [channel])
        drive(sim, channel, 40, interval=0.001)
        sim.run()
        # Loss draws happen at transmission completion (send + 0.5 ms of
        # wire time), so exactly the sends completing inside the window
        # are wiped.
        assert installed.burst_drops == 10
        assert channel.stats.lost_packets == 10
        assert [p.seq for p in arrived] == list(range(10, 40))

    def test_fractional_magnitude_is_bursty_at_the_target_rate(self, sim):
        """magnitude 0.25 long-run: the empirical rate lands near the
        target, and drops arrive in multi-packet runs (mean burst length
        ~4 with the fixed p_b2g), unlike i.i.d. loss at the same rate."""
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        schedule = burst_loss_schedule(1, 0.25, until=4.0)
        installed = schedule.install(sim, [channel], seed=3)
        drive(sim, channel, 3000, interval=0.001)
        sim.run()
        rate = installed.burst_drops / 3000
        assert 0.12 < rate < 0.40
        # Run-length structure: consecutive missing seqs form bursts.
        got = {p.seq for p in arrived}
        runs, current = [], 0
        for seq in range(3000):
            if seq in got:
                if current:
                    runs.append(current)
                current = 0
            else:
                current += 1
        if current:
            runs.append(current)
        assert sum(runs) / len(runs) > 2.0, "drops were not bursty"
        assert max(runs) >= 4

    def test_burst_erases_whole_fec_group(self, sim):
        """Regression (FEC tentpole): one pinned burst claims every member
        of a k+m stripe group — data and parity — so the group can never
        decode; the pure-fec receiver gap-skips it and delivery resumes
        with the next group intact."""
        from repro.transport.fec import FecReceiver, FecSender

        channel = make_channel(sim)
        delivered = []
        receiver = FecReceiver(
            delivered.append, k=3, m=1, sim=sim, group_timeout_s=0.05
        )
        channel.on_deliver = receiver.on_packet
        sender = FecSender(
            lambda p: channel.send(p, force=True),
            lambda ps: [channel.send(p, force=True) for p in ps],
            k=3, m=1, sim=sim,
        )
        # Group 0 (fseq 0-2 + parity, all sent by t=0.002) transmits
        # inside the burst window; group 1 starts at t=0.003, outside it.
        schedule = burst_loss_schedule(1, 1.0, until=0.0025)
        installed = schedule.install(sim, [channel])
        for i in range(9):
            sim.schedule_at(
                i * 0.001,
                lambda seq=i: sender.submit(
                    Packet(size=200, seq=seq, payload=bytes([seq]) * 8)
                ),
            )
        sim.run()
        assert installed.burst_drops == 4, "burst missed part of the group"
        assert [p.seq for p in delivered] == list(range(3, 9))
        assert receiver.stats.skipped == 3
        assert receiver.stats.reconstructed == 0

    def test_burst_loss_schedule_validation(self):
        with pytest.raises(ValueError, match="loss rate"):
            burst_loss_schedule(2, 0.0)
        with pytest.raises(ValueError, match="positive duration"):
            burst_loss_schedule(2, 0.1, start=1.0, until=0.5)
        schedule = burst_loss_schedule(3, 0.2, until=2.0)
        assert len(schedule) == 3
        assert schedule.kinds_used() == ("burst_loss",)

    def test_burst_magnitude_rejected_at_zero(self, sim):
        channel = make_channel(sim)
        schedule = FaultSchedule(
            [FaultEvent(time=0.0, channel=0, kind="burst_loss",
                        magnitude=0.0)]
        )
        with pytest.raises(ValueError, match="magnitude must be > 0"):
            schedule.install(sim, [channel])
            sim.run()


class TestSchedule:
    def test_install_rejects_out_of_range_channel(self, sim):
        channel = make_channel(sim)
        schedule = FaultSchedule(
            [FaultEvent(time=0.0, channel=3, kind="crash")]
        )
        with pytest.raises(ValueError, match="targets channel 3"):
            schedule.install(sim, [channel])

    def test_last_fault_end_and_kinds(self):
        schedule = FaultSchedule(
            [
                FaultEvent(time=0.1, channel=0, kind="crash", duration=0.5),
                FaultEvent(time=0.3, channel=1, kind="pause", duration=0.1),
            ]
        )
        assert schedule.last_fault_end == pytest.approx(0.6)
        assert schedule.kinds_used() == ("crash", "pause")
        assert len(schedule.for_channel(1)) == 1

    def test_same_seed_replays_identically(self):
        plan = FaultPlan(n_channels=3, cease_by=1.0)
        a = plan.schedule(42)
        b = plan.schedule(42)
        assert a.events == b.events
        assert plan.schedule(43).events != a.events

    def test_plan_respects_cease_by(self):
        plan = FaultPlan(n_channels=4, cease_by=0.7, start_after=0.1)
        for seed in range(50):
            schedule = plan.schedule(seed)
            assert len(schedule) >= 1
            for event in schedule:
                assert event.time >= 0.1
                assert event.end <= 0.7 + 1e-9
                assert event.channel < 4

    def test_plan_kind_subsets(self):
        plan = FaultPlan(
            n_channels=2, cease_by=1.0, kinds=EXACTLY_ONCE_KINDS
        )
        used = set()
        for seed in range(40):
            used.update(plan.schedule(seed).kinds_used())
        assert "duplicate" not in used
        assert used <= set(EXACTLY_ONCE_KINDS)
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan(n_channels=2, cease_by=1.0, kinds=("quake",))

    def test_exactly_once_kinds_is_all_channel_kinds_but_duplicate(self):
        # endpoint_crash is not a channel fault (it needs a crash
        # controller, and exactly-once across it is the recovery
        # subsystem's property suite), so both derived sets exclude it.
        assert set(CHANNEL_FAULT_KINDS) == set(FAULT_KINDS) - {
            "endpoint_crash"
        }
        assert set(EXACTLY_ONCE_KINDS) == set(CHANNEL_FAULT_KINDS) - {
            "duplicate"
        }


class TestChannelPauseResume:
    def test_native_pause_resume(self, sim):
        channel = make_channel(sim)
        got = []
        channel.on_deliver = got.append
        channel.send(Packet(size=500, seq=0))
        channel.pause()
        channel.send(Packet(size=500, seq=1))
        sim.run(until=0.05)
        # Only the packet already in service at pause time got through.
        assert [p.seq for p in got] == [0]
        channel.resume()
        sim.run()
        assert [p.seq for p in got] == [0, 1]

    def test_resume_without_pause_is_noop(self, sim):
        channel = make_channel(sim)
        channel.resume()
        assert not channel.paused


class TestCorruptDeliver:
    """``corrupt_deliver``: damaged packets that still *arrive*.

    Unlike ``corrupt`` (which models a checksum drop at the NIC), this
    fault delivers the damaged packet so the protocol's own validation
    must count and discard it.
    """

    def _schedule(self, magnitude=1.0, duration=1.0):
        return FaultSchedule(
            [
                FaultEvent(
                    time=0.0, channel=0, kind="corrupt_deliver",
                    duration=duration, magnitude=magnitude,
                )
            ]
        )

    def test_payload_byte_flipped_on_a_copy(self, sim):
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        installed = self._schedule().install(sim, [channel], seed=5)
        original = Packet(size=500, seq=0, payload=b"\x00" * 100)
        channel.send(original, force=True)
        sim.run()
        assert installed.corrupt_delivered == 1
        (got,) = arrived
        assert got is not original, "must corrupt a copy, never the original"
        assert original.payload == b"\x00" * 100
        assert got.payload != original.payload
        assert len(got.payload) == 100
        # Exactly one byte differs (single bit-burst model).
        assert sum(a != b for a, b in zip(got.payload, original.payload)) == 1

    def test_marker_corrupted_on_the_wire_fails_decode(self, sim):
        from repro.core.markers import MarkerDecodeError, decode_marker

        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        installed = self._schedule().install(sim, [channel], seed=5)
        channel.send(
            MarkerPacket(channel=0, round_number=3, deficit=1.5), force=True
        )
        sim.run()
        assert installed.corrupt_delivered == 1
        (got,) = arrived
        assert isinstance(got, bytes), "marker delivered as damaged wire bytes"
        with pytest.raises(MarkerDecodeError):
            decode_marker(got)

    def test_wire_bytes_flipped(self, sim):
        from repro.core.markers import encode_marker

        # Wire-encoded markers (the fast path's marker form) need a
        # bytes-aware size hook, exactly like FastChannelPort installs.
        channel = make_channel(
            sim,
            size_of=lambda p: len(p) if isinstance(p, bytes) else int(p.size),
        )
        arrived = []
        channel.on_deliver = arrived.append
        installed = self._schedule().install(sim, [channel], seed=5)
        wire = encode_marker(
            MarkerPacket(channel=0, round_number=3, deficit=1.5)
        )
        channel.send(wire, force=True)
        sim.run()
        assert installed.corrupt_delivered == 1
        (got,) = arrived
        assert got != wire and len(got) == len(wire)

    def test_payload_less_packet_passes_unchanged(self, sim):
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        installed = self._schedule().install(sim, [channel], seed=5)
        packet = Packet(size=500, seq=0)
        channel.send(packet, force=True)
        sim.run()
        assert arrived == [packet]
        assert installed.corrupt_delivered == 0

    def test_window_bounds_respected(self, sim):
        channel = make_channel(sim)
        arrived = []
        channel.on_deliver = arrived.append
        installed = self._schedule(duration=0.005).install(
            sim, [channel], seed=5
        )
        for i in range(20):
            sim.schedule_at(
                i * 0.001,
                lambda seq=i: channel.send(
                    Packet(size=500, seq=seq, payload=b"x" * 50), force=True
                ),
            )
        sim.run()
        late = [p for p in arrived if p.seq >= 10]
        assert all(p.payload == b"x" * 50 for p in late)
        assert 0 < installed.corrupt_delivered <= 10

    def test_receiver_pipeline_counts_and_drops_corrupt_markers(self, sim):
        """End to end: a corrupted marker stream is counted, not fatal."""
        from repro.core.srr import SRR
        from repro.core.striper import MarkerPolicy
        from repro.transport.endpoint import (
            StripeReceiverPipeline,
            StripeSenderPipeline,
        )
        from repro.transport.fast_path import FastChannelPort

        channels = [
            Channel(
                sim, bandwidth_bps=8e6, prop_delay=5e-4, queue_limit=64,
                name=f"ch{i}",
            )
            for i in range(3)
        ]
        delivered = []
        sender = StripeSenderPipeline(
            [FastChannelPort(ch) for ch in channels],
            SRR([500.0] * 3),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=sim,
        )
        receiver = StripeReceiverPipeline(
            3, SRR([500.0] * 3), mode="marker",
            on_message=delivered.append, sim=sim,
        )
        for i, ch in enumerate(channels):
            ch.on_deliver = receiver.channel_handler(i)
            ch.on_space = sender._pump
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=0.0, channel=c, kind="corrupt_deliver",
                    duration=0.05, magnitude=0.5,
                )
                for c in range(3)
            ]
        )
        installed = schedule.install(sim, channels, seed=9)

        def tick(seq=[0]):
            if sim.now >= 0.1:
                return
            if sender.can_submit():
                sender.submit_packet(Packet(size=500, seq=seq[0]))
                seq[0] += 1
            sim.schedule(0.5e-3, tick)

        sim.schedule_at(0.0, tick)
        sim.run(until=0.3)
        assert installed.corrupt_delivered > 0
        assert receiver.marker_decode_errors > 0
        assert delivered, "corruption must not wedge delivery"


class TestEndpointCrashFaults:
    def test_target_required(self):
        with pytest.raises(ValueError, match="endpoint_crash needs target"):
            FaultEvent(time=0.1, channel=0, kind="endpoint_crash")
        with pytest.raises(ValueError, match="endpoint_crash needs target"):
            FaultEvent(
                time=0.1, channel=0, kind="endpoint_crash", target="router"
            )

    def test_target_rejected_on_channel_kinds(self):
        with pytest.raises(ValueError, match="only meaningful"):
            FaultEvent(time=0.1, channel=0, kind="crash", target="sender")

    def test_install_without_controller_raises(self, sim):
        channel = make_channel(sim)
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=0.1, channel=0, kind="endpoint_crash",
                    duration=0.05, target="sender",
                )
            ]
        )
        with pytest.raises(ValueError, match="endpoints"):
            schedule.install(sim, [channel])

    def test_schedule_helper_and_controller_wiring(self, sim):
        from repro.sim.faults import endpoint_crash_schedule
        from repro.sim.host import EndpointCrashController

        calls = []
        controller = EndpointCrashController(
            sim,
            kill_sender=lambda: calls.append("kill_s"),
            build_sender=lambda: calls.append("build_s"),
            kill_receiver=lambda: calls.append("kill_r"),
            build_receiver=lambda: calls.append("build_r"),
        )
        channel = make_channel(sim)
        schedule = endpoint_crash_schedule(
            [(0.01, "sender"), (0.05, "receiver")], outage=0.02
        )
        schedule.install(sim, [channel], endpoints=controller)
        sim.run()
        assert calls == ["kill_s", "build_s", "kill_r", "build_r"]
        assert controller.total_crashes == 2
        assert [
            (o.target, o.down_at, o.up_at) for o in controller.outages
        ] == [("sender", 0.01, 0.03), ("receiver", 0.05, 0.07)]

    def test_crash_restart_idempotent(self, sim):
        from repro.sim.host import EndpointCrashController

        calls = []
        controller = EndpointCrashController(
            sim,
            kill_sender=lambda: calls.append("kill"),
            build_sender=lambda: calls.append("build"),
            kill_receiver=lambda: None,
            build_receiver=lambda: None,
        )
        controller.crash("sender")
        controller.crash("sender")  # already down: no-op
        controller.restart("sender")
        controller.restart("sender")  # already up: no-op
        assert calls == ["kill", "build"]
        assert controller.crashes["sender"] == 1
        with pytest.raises(ValueError):
            controller.crash("router")

    def test_randomized_plans_exclude_endpoint_crash_by_default(self):
        plan = FaultPlan(n_channels=3, cease_by=1.0)
        used = set()
        for seed in range(60):
            used.update(plan.schedule(seed).kinds_used())
        assert "endpoint_crash" not in used


class TestPacketPoolDoubleRelease:
    def test_double_release_refused(self):
        from repro.core.packet import PacketPool

        pool = PacketPool()
        packet = pool.acquire(500, seq=0)
        pool.release(packet)
        pool.release(packet)  # a duplicate fault delivers the object twice
        assert pool.double_releases == 1
        assert pool.stats()["free"] == 1
        # The single pooled copy comes back once, with a fresh uid.
        again = pool.acquire(500, seq=1)
        assert again is packet
        assert pool.acquire(500, seq=2) is not packet

    def test_reacquired_packet_releases_normally(self):
        from repro.core.packet import PacketPool

        pool = PacketPool()
        packet = pool.acquire(500, seq=0)
        pool.release(packet)
        same = pool.acquire(500, seq=1)  # fresh uid, same storage
        pool.release(same)
        assert pool.double_releases == 0
        assert pool.released == 2

    def test_duplicate_heavy_schedule_cannot_alias_the_pool(self, sim):
        """Regression: duplicate faults + release-at-delivery must never
        hand one packet object to two acquirers."""
        from repro.core.packet import PacketPool

        pool = PacketPool()
        channel = make_channel(sim)
        live = []

        def on_deliver(packet):
            live.append(packet.uid)
            pool.release(packet)

        channel.on_deliver = on_deliver
        schedule = FaultSchedule(
            [
                FaultEvent(
                    time=0.0, channel=0, kind="duplicate",
                    duration=1.0, magnitude=1.0,
                )
            ]
        )
        installed = schedule.install(sim, [channel], seed=3)
        for i in range(50):
            sim.schedule_at(
                i * 0.001,
                lambda seq=i: channel.send(
                    pool.acquire(500, seq=seq), force=True
                ),
            )
        sim.run()
        assert installed.duplicates_injected > 0
        assert pool.double_releases == installed.duplicates_injected
        # Every pooled entry is unique: no aliased acquisitions possible.
        uids = [p.uid for p in pool._free]
        assert len(uids) == len(set(uids))
