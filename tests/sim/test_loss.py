"""Unit tests for loss and corruption models."""

import random

import pytest

from repro.sim.loss import (
    BernoulliLoss,
    CorruptionModel,
    DeterministicLoss,
    GilbertElliottLoss,
    NoLoss,
    SizeGatedLoss,
)


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        assert not any(model.should_drop(i, 100) for i in range(1000))


class TestBernoulli:
    def test_rate_zero_never_drops(self):
        model = BernoulliLoss(0.0)
        assert not any(model.should_drop(i, 100) for i in range(100))

    def test_rate_one_always_drops(self):
        model = BernoulliLoss(1.0)
        assert all(model.should_drop(i, 100) for i in range(100))

    def test_empirical_rate(self):
        model = BernoulliLoss(0.25, rng=random.Random(3))
        drops = sum(model.should_drop(i, 100) for i in range(10000))
        assert 0.22 < drops / 10000 < 0.28

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)

    def test_rate_mutable_mid_run(self):
        """Experiments flip p to 0 to model 'losses stop'."""
        model = BernoulliLoss(1.0)
        assert model.should_drop(0, 100)
        model.p = 0.0
        assert not model.should_drop(1, 100)


class TestGilbertElliott:
    def test_burstiness(self):
        model = GilbertElliottLoss(
            p_g2b=0.01, p_b2g=0.2, rng=random.Random(5)
        )
        outcomes = [model.should_drop(i, 100) for i in range(20000)]
        # Count runs of consecutive drops; bursts should exceed length 1
        # far more often than an i.i.d. model at the same rate would.
        runs = []
        current = 0
        for dropped in outcomes:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected some loss bursts"
        assert max(runs) >= 3

    def test_steady_state_rate(self):
        model = GilbertElliottLoss(
            p_g2b=0.02, p_b2g=0.18, rng=random.Random(9)
        )
        expected = model.steady_state_loss_rate()
        drops = sum(model.should_drop(i, 100) for i in range(50000))
        assert abs(drops / 50000 - expected) < 0.02

    def test_reset_returns_to_good(self):
        model = GilbertElliottLoss(p_g2b=1.0, p_b2g=0.0)
        model.should_drop(0, 100)
        assert model.in_bad_state
        model.reset()
        assert not model.in_bad_state

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_g2b=2.0, p_b2g=0.5)


class TestDeterministic:
    def test_exact_indices(self):
        model = DeterministicLoss([0, 5, 7])
        dropped = [i for i in range(10) if model.should_drop(i, 100)]
        assert dropped == [0, 5, 7]


class TestSizeGated:
    def test_small_packets_immune(self):
        model = SizeGatedLoss(BernoulliLoss(1.0), min_size=500)
        assert not model.should_drop(0, 100)
        assert model.should_drop(1, 1000)

    def test_gated_index_counts_only_large(self):
        """The inner model sees a contiguous index for gated packets, so
        interleaving small packets does not perturb the loss pattern."""
        inner_a = DeterministicLoss([1])
        gated_a = SizeGatedLoss(inner_a, min_size=500)
        pattern_a = [gated_a.should_drop(i, size)
                     for i, size in enumerate([1000, 1000, 1000])]

        inner_b = DeterministicLoss([1])
        gated_b = SizeGatedLoss(inner_b, min_size=500)
        pattern_b = [gated_b.should_drop(i, size)
                     for i, size in enumerate([1000, 64, 64, 1000, 64, 1000])]
        assert [p for p in pattern_a] == [False, True, False]
        large_only = [pattern_b[0], pattern_b[3], pattern_b[5]]
        assert large_only == [False, True, False]

    def test_reset_propagates(self):
        inner = GilbertElliottLoss(p_g2b=1.0, p_b2g=0.0)
        gated = SizeGatedLoss(inner, min_size=10)
        gated.should_drop(0, 100)
        gated.reset()
        assert not inner.in_bad_state


class TestCorruption:
    def test_zero_ber_never_corrupts(self):
        model = CorruptionModel(0.0)
        assert not any(model.is_corrupted(1500) for _ in range(100))

    def test_bigger_packets_corrupt_more(self):
        rng_small = CorruptionModel(1e-4, rng=random.Random(1))
        rng_big = CorruptionModel(1e-4, rng=random.Random(1))
        small = sum(rng_small.is_corrupted(64) for _ in range(5000))
        big = sum(rng_big.is_corrupted(1500) for _ in range(5000))
        assert big > small * 2

    def test_invalid_ber(self):
        with pytest.raises(ValueError):
            CorruptionModel(2.0)


class TestSeededReset:
    def test_bernoulli_reset_replays_drop_sequence(self):
        model = BernoulliLoss(0.3, rng=random.Random(11))
        first = [model.should_drop(i, 100) for i in range(200)]
        model.reset()
        replay = [model.should_drop(i, 100) for i in range(200)]
        assert replay == first

    def test_gilbert_elliott_reset_replays_state_walk(self):
        model = GilbertElliottLoss(
            p_g2b=0.1, p_b2g=0.3, rng=random.Random(7)
        )
        first = [model.should_drop(i, 100) for i in range(500)]
        assert model.in_bad_state or True  # whatever state it landed in
        model.reset()
        assert not model.in_bad_state
        replay = [model.should_drop(i, 100) for i in range(500)]
        assert replay == first

    def test_gilbert_elliott_reset_mid_burst_restores_seeded_walk(self):
        """Interrupting the walk mid-burst and resetting must rewind both
        the Markov state *and* the RNG — an FEC sweep that reuses one
        channel model across arms depends on identical burst placement."""
        model = GilbertElliottLoss(
            p_g2b=0.3, p_b2g=0.2, rng=random.Random(99)
        )
        full = [model.should_drop(i, 100) for i in range(300)]
        assert any(full), "walk never entered a loss burst"
        model.reset()
        for i in range(137):  # stop partway, wherever the state landed
            model.should_drop(i, 100)
        model.reset()
        assert not model.in_bad_state
        assert [model.should_drop(i, 100) for i in range(300)] == full

    def test_gilbert_elliott_same_seed_same_walk_across_instances(self):
        def walk():
            model = GilbertElliottLoss(
                p_g2b=0.2, p_b2g=0.4, rng=random.Random(5)
            )
            return [model.should_drop(i, 100) for i in range(400)]

        assert walk() == walk()

    def test_reset_makes_repeated_runs_comparable(self):
        """Two experiment arms sharing one model see identical loss."""
        model = BernoulliLoss(0.5, rng=random.Random(3))
        arm_a = sum(model.should_drop(i, 100) for i in range(1000))
        model.reset()
        arm_b = sum(model.should_drop(i, 100) for i in range(1000))
        assert arm_a == arm_b
