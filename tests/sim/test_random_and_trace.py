"""Unit tests for seeded random streams and the tracer."""

from repro.sim.random import RandomStreams
from repro.sim.trace import Tracer, NULL_TRACER


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("loss")
        b = RandomStreams(7).stream("loss")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("loss")
        b = streams.stream("skew")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(2).stream("x")
        assert a.random() != b.random()

    def test_same_name_returns_same_object(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_fork_independent(self):
        parent = RandomStreams(3)
        child = parent.fork("worker")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_fork_deterministic(self):
        a = RandomStreams(3).fork("w").stream("x").random()
        b = RandomStreams(3).fork("w").stream("x").random()
        assert a == b


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tracer.emit(1.0, "rx", "deliver", channel=0)
        tracer.emit(2.0, "rx", "skip", channel=1)
        tracer.emit(3.0, "tx", "deliver", channel=0)
        assert tracer.count(kind="deliver") == 2
        assert tracer.count(source="rx") == 2
        assert tracer.count(kind="deliver", source="rx") == 1

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "x", "y")
        assert tracer.events == []

    def test_null_tracer_is_disabled(self):
        NULL_TRACER.emit(0.0, "a", "b")
        assert NULL_TRACER.events == []

    def test_max_events_cap(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.emit(float(i), "s", "k")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(0.0, "s", "k")
        tracer.clear()
        assert tracer.events == [] and tracer.dropped == 0

    def test_str_rendering(self):
        tracer = Tracer()
        tracer.emit(1.5, "receiver", "skip", channel=2, G=4)
        text = str(tracer.events[0])
        assert "receiver" in text and "skip" in text and "channel=2" in text
