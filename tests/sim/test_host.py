"""Unit tests for the host CPU / interrupt model."""

import pytest

from repro.core.packet import Packet
from repro.sim.host import HostCPU


def make_cpu(sim, **kwargs):
    processed = []
    cpu = HostCPU(
        sim,
        on_packet=lambda p, nic: processed.append((nic, p.seq)),
        **kwargs,
    )
    return cpu, processed


class TestBasicProcessing:
    def test_packet_flows_through(self, sim):
        cpu, processed = make_cpu(sim, per_packet_cost=0.001)
        nic = cpu.new_nic("eth0")
        nic.enqueue(Packet(100, seq=0))
        sim.run()
        assert processed == [("eth0", 0)]
        assert cpu.total_interrupts == 1

    def test_processing_takes_time(self, sim):
        cpu, processed = make_cpu(
            sim, per_packet_cost=0.001, per_interrupt_cost=0.002
        )
        nic = cpu.new_nic("eth0")
        done = []
        cpu.on_packet = lambda p, n: done.append(sim.now)
        nic.enqueue(Packet(100, seq=0))
        sim.run()
        assert done == [pytest.approx(0.003)]

    def test_order_preserved_within_nic(self, sim):
        cpu, processed = make_cpu(sim, per_packet_cost=0.001)
        nic = cpu.new_nic("eth0")
        for i in range(10):
            nic.enqueue(Packet(100, seq=i))
        sim.run()
        assert [seq for _, seq in processed] == list(range(10))


class TestCoalescing:
    def test_burst_coalesces_into_one_interrupt(self, sim):
        cpu, processed = make_cpu(
            sim, per_packet_cost=0.001, per_interrupt_cost=0.01
        )
        nic = cpu.new_nic("eth0")
        # 1 packet triggers the interrupt; 5 more arrive before service
        # completes and are drained in the next batch.
        nic.enqueue(Packet(100, seq=0))
        for i in range(1, 6):
            sim.schedule(0.001 * i, nic.enqueue, Packet(100, seq=i))
        sim.run()
        assert len(processed) == 6
        assert cpu.total_interrupts <= 3  # far fewer than 6

    def test_two_nics_interrupt_separately(self, sim):
        cpu, processed = make_cpu(
            sim, per_packet_cost=0.001, per_interrupt_cost=0.01
        )
        a = cpu.new_nic("a")
        b = cpu.new_nic("b")
        a.enqueue(Packet(100, seq=0))
        b.enqueue(Packet(100, seq=1))
        sim.run()
        assert cpu.total_interrupts == 2

    def test_max_batch_limits_drain(self, sim):
        cpu, processed = make_cpu(
            sim, per_packet_cost=0.001, per_interrupt_cost=0.01, max_batch=2
        )
        nic = cpu.new_nic("eth0")
        for i in range(5):
            nic.enqueue(Packet(100, seq=i))
        sim.run()
        assert len(processed) == 5
        assert cpu.total_interrupts >= 3  # ceil(5/2)

    def test_invalid_max_batch(self, sim):
        with pytest.raises(ValueError):
            HostCPU(sim, max_batch=0)


class TestRingLimits:
    def test_ring_overflow_drops(self, sim):
        cpu, processed = make_cpu(
            sim, per_packet_cost=1.0  # very slow CPU
        )
        nic = cpu.new_nic("eth0", queue_limit=3)
        accepted = [nic.enqueue(Packet(100, seq=i)) for i in range(10)]
        # First enqueue posts the interrupt and is drained immediately at
        # service start; subsequent ones queue up to the limit.
        assert nic.drops > 0
        assert accepted.count(False) == nic.drops

    def test_utilization(self, sim):
        cpu, processed = make_cpu(
            sim, per_packet_cost=0.25, per_interrupt_cost=0.25
        )
        nic = cpu.new_nic("eth0")
        nic.enqueue(Packet(100, seq=0))
        sim.run()
        assert cpu.utilization(1.0) == pytest.approx(0.5)
        assert cpu.utilization(0.0) == 0.0

    def test_negative_costs_rejected(self, sim):
        with pytest.raises(ValueError):
            HostCPU(sim, per_packet_cost=-1)


class TestEnqueueMany:
    def test_single_interrupt_for_burst(self, sim):
        cpu, processed = make_cpu(
            sim, per_packet_cost=0.001, per_interrupt_cost=0.01
        )
        nic = cpu.new_nic("eth0")
        accepted = nic.enqueue_many([Packet(100, seq=i) for i in range(6)])
        sim.run()
        assert accepted == 6
        assert [seq for _, seq in processed] == list(range(6))
        assert cpu.total_interrupts == 1

    def test_ring_limit_drops_overflow(self, sim):
        cpu, processed = make_cpu(sim, per_packet_cost=0.001)
        nic = cpu.new_nic("eth0", queue_limit=3)
        accepted = nic.enqueue_many([Packet(100, seq=i) for i in range(8)])
        assert accepted == 3
        assert nic.drops == 5
        sim.run()
        assert [seq for _, seq in processed] == [0, 1, 2]

    def test_empty_batch_posts_no_interrupt(self, sim):
        cpu, processed = make_cpu(sim, per_packet_cost=0.001)
        nic = cpu.new_nic("eth0")
        assert nic.enqueue_many([]) == 0
        sim.run()
        assert cpu.total_interrupts == 0
