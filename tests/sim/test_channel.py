"""Unit tests for the FIFO channel model."""

import pytest

from repro.core.packet import Packet
from repro.sim.channel import Channel
from repro.sim.loss import BernoulliLoss, DeterministicLoss, CorruptionModel
import random


def collect(channel):
    out = []
    channel.on_deliver = out.append
    return out


class TestTiming:
    def test_transmission_time_from_bandwidth(self, sim):
        channel = Channel(sim, bandwidth_bps=8000.0, prop_delay=0.0)
        arrivals = []
        channel.on_deliver = lambda p: arrivals.append(sim.now)
        channel.send(Packet(1000))  # 8000 bits at 8000 bps = 1 s
        sim.run()
        assert arrivals == [pytest.approx(1.0)]

    def test_propagation_delay_added(self, sim):
        channel = Channel(sim, bandwidth_bps=8000.0, prop_delay=0.5)
        arrivals = []
        channel.on_deliver = lambda p: arrivals.append(sim.now)
        channel.send(Packet(1000))
        sim.run()
        assert arrivals == [pytest.approx(1.5)]

    def test_back_to_back_packets_serialize(self, sim):
        channel = Channel(sim, bandwidth_bps=8000.0, prop_delay=0.0)
        arrivals = []
        channel.on_deliver = lambda p: arrivals.append((p.seq, sim.now))
        channel.send(Packet(1000, seq=0))
        channel.send(Packet(1000, seq=1))
        sim.run()
        assert arrivals == [(0, pytest.approx(1.0)), (1, pytest.approx(2.0))]

    def test_bandwidth_change_applies_to_next_packet(self, sim):
        channel = Channel(sim, bandwidth_bps=8000.0, prop_delay=0.0)
        arrivals = []
        channel.on_deliver = lambda p: arrivals.append(sim.now)
        channel.send(Packet(1000))
        sim.run()
        channel.bandwidth_bps = 16000.0
        channel.send(Packet(1000))
        sim.run()
        assert arrivals[1] - arrivals[0] == pytest.approx(0.5)


class TestFifo:
    def test_delivery_order_matches_send_order(self, sim):
        channel = Channel(sim, bandwidth_bps=1e6, prop_delay=0.001)
        out = collect(channel)
        packets = [Packet(100 + i, seq=i) for i in range(50)]
        for p in packets:
            channel.send(p)
        sim.run()
        assert [p.seq for p in out] == list(range(50))

    def test_skew_preserves_fifo(self, sim):
        rng = random.Random(1)
        channel = Channel(
            sim, bandwidth_bps=1e6, prop_delay=0.001,
            skew=lambda: rng.uniform(0, 0.01),
        )
        times = []
        channel.on_deliver = lambda p: times.append((p.seq, sim.now))
        for i in range(100):
            channel.send(Packet(500, seq=i))
        sim.run()
        seqs = [s for s, _ in times]
        stamps = [t for _, t in times]
        assert seqs == list(range(100))
        assert stamps == sorted(stamps)

    def test_negative_skew_clamped(self, sim):
        channel = Channel(
            sim, bandwidth_bps=1e6, prop_delay=0.001, skew=lambda: -5.0
        )
        out = collect(channel)
        channel.send(Packet(500, seq=0))
        sim.run()
        assert len(out) == 1
        assert sim.now >= 0.001


class TestQueueing:
    def test_queue_limit_drops_excess(self, sim):
        channel = Channel(sim, bandwidth_bps=1e6, prop_delay=0.0, queue_limit=2)
        drops = []
        channel.on_drop = lambda p, reason: drops.append(reason)
        # First send starts transmitting immediately (not queued), then two
        # queue, then overflow.
        assert channel.send(Packet(1000, seq=0)) is True
        assert channel.send(Packet(1000, seq=1)) is True
        assert channel.send(Packet(1000, seq=2)) is True
        assert channel.send(Packet(1000, seq=3)) is False
        assert drops == ["queue_full"]
        assert channel.stats.queue_drops == 1

    def test_force_bypasses_queue_limit(self, sim):
        channel = Channel(sim, bandwidth_bps=1e6, prop_delay=0.0, queue_limit=1)
        channel.send(Packet(1000))
        channel.send(Packet(1000))
        assert channel.can_accept() is False
        assert channel.send(Packet(100), force=True) is True
        out = collect(channel)
        sim.run()
        assert len(out) == 3

    def test_on_space_fires_as_queue_drains(self, sim):
        channel = Channel(sim, bandwidth_bps=1e6, prop_delay=0.0, queue_limit=1)
        spaces = []
        channel.on_space = lambda: spaces.append(sim.now)
        channel.send(Packet(1000))
        channel.send(Packet(1000))
        sim.run()
        assert len(spaces) >= 1

    def test_queued_bytes(self, sim):
        channel = Channel(sim, bandwidth_bps=1e6, prop_delay=0.0)
        channel.send(Packet(1000))  # transmitting
        channel.send(Packet(200))
        channel.send(Packet(300))
        assert channel.queue_length == 2
        assert channel.queued_bytes == 500


class TestLossAndCorruption:
    def test_deterministic_loss_drops_exact_index(self, sim):
        channel = Channel(
            sim, bandwidth_bps=1e6, prop_delay=0.0,
            loss_model=DeterministicLoss([1, 3]),
        )
        out = collect(channel)
        for i in range(5):
            channel.send(Packet(100, seq=i))
        sim.run()
        assert [p.seq for p in out] == [0, 2, 4]
        assert channel.stats.lost_packets == 2

    def test_bernoulli_loss_rate_approximate(self, sim):
        channel = Channel(
            sim, bandwidth_bps=1e9, prop_delay=0.0,
            loss_model=BernoulliLoss(0.3, rng=random.Random(42)),
        )
        out = collect(channel)
        n = 2000
        for i in range(n):
            channel.send(Packet(100, seq=i))
        sim.run()
        rate = 1 - len(out) / n
        assert 0.25 < rate < 0.35

    def test_corruption_drops_and_counts(self, sim):
        channel = Channel(
            sim, bandwidth_bps=1e9, prop_delay=0.0,
            corruption=CorruptionModel(1e-3, rng=random.Random(7)),
        )
        out = collect(channel)
        for i in range(200):
            channel.send(Packet(1000, seq=i))
        sim.run()
        assert channel.stats.corrupted_packets > 0
        assert len(out) + channel.stats.corrupted_packets == 200

    def test_losses_occupy_bandwidth(self, sim):
        """A lost packet still consumed transmission time (it was sent)."""
        channel = Channel(
            sim, bandwidth_bps=8000.0, prop_delay=0.0,
            loss_model=DeterministicLoss([0]),
        )
        arrivals = []
        channel.on_deliver = lambda p: arrivals.append(sim.now)
        channel.send(Packet(1000, seq=0))  # lost, but takes 1 s on the wire
        channel.send(Packet(1000, seq=1))
        sim.run()
        assert arrivals == [pytest.approx(2.0)]


class TestStatsAndValidation:
    def test_stats_accumulate(self, sim):
        channel = Channel(sim, bandwidth_bps=1e6, prop_delay=0.0)
        collect(channel)
        for i in range(10):
            channel.send(Packet(100, seq=i))
        sim.run()
        assert channel.stats.offered_packets == 10
        assert channel.stats.delivered_packets == 10
        assert channel.stats.delivered_bytes == 1000
        assert channel.stats.busy_time == pytest.approx(10 * 100 * 8 / 1e6)

    def test_utilization(self, sim):
        channel = Channel(sim, bandwidth_bps=8000.0, prop_delay=0.0)
        channel.send(Packet(1000))
        sim.run()
        assert channel.stats.utilization(2.0) == pytest.approx(0.5)

    def test_invalid_bandwidth_rejected(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, bandwidth_bps=0, prop_delay=0.0)

    def test_invalid_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, bandwidth_bps=1e6, prop_delay=-0.1)

    def test_packet_without_size_rejected(self, sim):
        channel = Channel(sim, bandwidth_bps=1e6, prop_delay=0.0)
        with pytest.raises(TypeError):
            channel.send(object())

    def test_custom_size_of(self, sim):
        channel = Channel(
            sim, bandwidth_bps=8000.0, prop_delay=0.0,
            size_of=lambda p: p.size + 100,  # framing overhead
        )
        arrivals = []
        channel.on_deliver = lambda p: arrivals.append(sim.now)
        channel.send(Packet(900))
        sim.run()
        assert arrivals == [pytest.approx(1.0)]


class TestFastBurstMode:
    def _timed(self, sim, fast, packets, **kwargs):
        channel = Channel(sim, fast=fast, **kwargs)
        arrivals = []
        channel.on_deliver = lambda p: arrivals.append((p.seq, sim.now))
        for packet in packets:
            channel.send(packet)
        sim.run()
        return channel, arrivals

    def test_burst_timing_identical_to_classic(self):
        """A burst-mode channel delivers at the exact classic timestamps."""
        import copy
        from repro.sim.engine import Simulator

        packets = [Packet(100 * (i % 7 + 1), seq=i) for i in range(50)]
        results = []
        for fast in (False, True):
            sim = Simulator()
            _, arrivals = self._timed(
                sim, fast, copy.deepcopy(packets),
                bandwidth_bps=1e6, prop_delay=0.01,
            )
            results.append(arrivals)
        assert results[0] == results[1]  # bit-identical, not approx

    def test_lossy_channel_stays_classic(self, sim):
        channel = Channel(
            sim, bandwidth_bps=1e6, prop_delay=0.0, fast=True,
            loss_model=BernoulliLoss(0.5, rng=random.Random(1)),
        )
        assert not channel._burst_capable()
        out = collect(channel)
        for i in range(100):
            channel.send(Packet(100, seq=i))
        sim.run()
        assert 0 < len(out) < 100  # losses actually happened

    def test_zero_rate_loss_model_is_burst_capable(self, sim):
        channel = Channel(
            sim, bandwidth_bps=1e6, prop_delay=0.0, fast=True,
            loss_model=BernoulliLoss(0.0, rng=random.Random(1)),
        )
        assert channel._burst_capable()

    def test_upgrades_to_burst_after_losses_stop(self, sim):
        """stop_losses_at zeroes p; later sends must take the burst path."""
        channel = Channel(
            sim, bandwidth_bps=8000.0, prop_delay=0.0, fast=True,
            loss_model=BernoulliLoss(0.8, rng=random.Random(3)),
        )
        sim.schedule_at(5.0, lambda: setattr(channel.loss_model, "p", 0.0))
        out = collect(channel)
        for i in range(5):
            channel.send(Packet(1000, seq=i))  # classic, lossy
        sim.run(until=10.0)
        lossy_deliveries = len(out)
        assert lossy_deliveries < 5
        for i in range(5, 15):
            channel.send(Packet(1000, seq=i))
        assert channel._burst_capable()  # p was zeroed at t=5
        assert channel.in_flight >= 1  # first burst train already armed
        sim.run()
        assert [p.seq for p in out[lossy_deliveries:]] == list(range(5, 15))

    def test_send_burst_and_in_flight(self, sim):
        channel = Channel(sim, bandwidth_bps=8000.0, prop_delay=0.0, fast=True)
        out = collect(channel)
        channel.send_burst([Packet(1000, seq=i) for i in range(4)])
        sim.run(until=0.5)  # mid-first-transmission
        assert channel.in_flight + len(channel._queue) + len(out) == 4
        sim.run()
        assert [p.seq for p in out] == [0, 1, 2, 3]
        assert channel.stats.offered_packets == 4
        assert channel.stats.delivered_packets == 4
        assert channel.stats.busy_time == pytest.approx(4.0)

    def test_on_space_fires_after_burst_drains_queue(self, sim):
        channel = Channel(
            sim, bandwidth_bps=8000.0, prop_delay=0.0, fast=True,
            queue_limit=2,
        )
        collect(channel)
        spaces = []
        channel.on_space = lambda: spaces.append(sim.now)
        channel.send(Packet(1000, seq=0))
        channel.send(Packet(1000, seq=1))
        channel.send(Packet(1000, seq=2))
        sim.run()
        assert spaces  # backpressure callback still functions in burst mode
