"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import Series, render_chart


class TestRenderChart:
    def test_basic_structure(self):
        text = render_chart(
            [0, 1, 2],
            [Series("a", "A", [0, 5, 10])],
            height=8, width=20,
            y_label="Mbps", x_label="x",
        )
        lines = text.splitlines()
        assert "A=a" in lines[0]
        assert any("+" in line for line in lines)  # x axis
        assert "Mbps" in lines[0]

    def test_rising_series_slopes_up(self):
        text = render_chart(
            [0, 10],
            [Series("up", "#", [0, 100])],
            height=10, width=30,
        )
        lines = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        first_col = min(i for i, line in enumerate(lines) if "#" in line)
        last_col = max(i for i, line in enumerate(lines) if "#" in line)
        # the marker spans from bottom rows to top rows
        assert first_col < last_col

    def test_later_series_overdraws(self):
        text = render_chart(
            [0, 1],
            [
                Series("under", "U", [5, 5]),
                Series("over", "O", [5, 5]),
            ],
            height=6, width=10,
        )
        body = "\n".join(text.splitlines()[1:])
        assert "O" in body
        assert "U" not in body

    def test_flat_series_single_row(self):
        text = render_chart(
            [0, 1, 2],
            [Series("flat", "F", [5, 5, 5])],
            height=9, width=20, y_max=10.0,
        )
        rows_with_marker = [
            line for line in text.splitlines() if "F" in line and "|" in line
        ]
        assert len(rows_with_marker) == 1

    def test_nonuniform_x_positions(self):
        # x = 0, 1, 10: the middle point lands near the left edge
        text = render_chart(
            [0, 1, 10],
            [Series("s", "#", [0, 10, 10])],
            height=6, width=44,
        )
        assert "#" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_chart([], [])
        with pytest.raises(ValueError):
            render_chart([0, 1], [Series("bad", "B", [1])])

    def test_y_range_clamping(self):
        # values above y_max clamp to the top row without crashing
        text = render_chart(
            [0, 1],
            [Series("s", "#", [0, 100])],
            height=5, width=10, y_max=10.0,
        )
        assert "#" in text
