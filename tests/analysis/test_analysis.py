"""Unit tests for metrics, reordering analysis, and Table 1 generation."""

import pytest

from repro.analysis.metrics import (
    DeliveryLog,
    LatencyStats,
    ThroughputWindow,
    mbps,
    percentile,
)
from repro.analysis.reorder import analyze_order, fifo_after_index
from repro.analysis.tables import (
    extended_rows,
    paper_table1_rows,
    render_table,
)


class TestMbps:
    def test_conversion(self):
        assert mbps(1_250_000, 1.0) == pytest.approx(10.0)

    def test_zero_interval(self):
        assert mbps(100, 0) == 0.0


class TestThroughputWindow:
    def test_window_excludes_warmup(self):
        counter = [0]
        window = ThroughputWindow(lambda: counter[0])
        counter[0] = 500  # warmup traffic
        window.open(1.0)
        counter[0] = 500 + 1_250_000
        window.close(2.0)
        assert window.mbps == pytest.approx(10.0)
        assert window.bytes == 1_250_000

    def test_unopened_window_raises(self):
        window = ThroughputWindow(lambda: 0)
        with pytest.raises(RuntimeError):
            window.close(1.0)


class TestLatencyStats:
    def test_streaming_moments(self):
        stats = LatencyStats()
        for value in [1.0, 2.0, 3.0, 4.0]:
            stats.add(value)
        assert stats.mean == pytest.approx(2.5)
        assert stats.variance == pytest.approx(5 / 3)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_single_sample(self):
        stats = LatencyStats()
        stats.add(5.0)
        assert stats.variance == 0.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)

    def test_extremes(self):
        assert percentile([3, 1, 2], 0) == 1
        assert percentile([3, 1, 2], 100) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 200)


class TestAnalyzeOrder:
    def test_fifo_stream(self):
        report = analyze_order([0, 1, 2, 3])
        assert report.is_fifo
        assert report.out_of_order == 0
        assert report.missing == 0

    def test_single_swap(self):
        report = analyze_order([0, 2, 1, 3])
        assert report.out_of_order == 1
        assert report.max_extent == 1
        assert report.max_displacement == 1

    def test_pure_loss_is_not_reordering(self):
        report = analyze_order([0, 2, 4, 6], sent_count=7)
        assert report.is_fifo
        assert report.missing == 3
        assert report.mean_displacement == 0.0

    def test_duplicates_counted(self):
        report = analyze_order([0, 1, 1, 2])
        assert report.duplicates == 1
        assert report.delivered == 3

    def test_extent_measures_depth(self):
        # 5 delivered before 0: extent 5
        report = analyze_order([1, 2, 3, 4, 5, 0])
        assert report.max_extent == 5

    def test_out_of_order_fraction(self):
        report = analyze_order([1, 0, 3, 2])
        assert report.out_of_order_fraction == pytest.approx(0.5)

    def test_empty(self):
        report = analyze_order([])
        assert report.is_fifo
        assert report.delivered == 0

    def test_fifo_after_index(self):
        assert fifo_after_index([0, 1, 2, 3]) == 0
        assert fifo_after_index([0, 2, 1, 3, 4]) == 2
        assert fifo_after_index([5, 0, 1, 2]) == 3


class TestDeliveryLog:
    def test_goodput_window(self):
        log = DeliveryLog()
        log.record(0.5, 0, 1000)
        log.record(1.5, 1, 1_250_000)
        log.record(3.0, 2, 99)
        assert log.goodput_mbps(1.0, 2.0) == pytest.approx(10.0)
        assert log.count == 3


class TestTable1:
    def test_paper_rows_match_claims(self):
        rows = paper_table1_rows()
        by_name = {row.scheme: row for row in rows}
        assert len(rows) == 5
        assert by_name["Round-Robin, no header"].fifo_delivery == "May be non-FIFO"
        assert by_name["Round-Robin, no header"].load_sharing == "Poor"
        assert by_name["BONDING"].fifo_delivery == "Guaranteed FIFO"
        assert by_name["BONDING"].load_sharing == "Good"
        assert (
            by_name["Fair Queuing algorithm, no header"].fifo_delivery
            == "Quasi-FIFO"
        )
        assert (
            by_name["Fair Queuing algorithm, no header"].load_sharing == "Good"
        )
        assert (
            by_name["Fair Queuing algorithm with header"].fifo_delivery
            == "Guaranteed FIFO"
        )

    def test_extended_rows_superset(self):
        rows = extended_rows()
        assert len(rows) == 9
        names = [row.scheme for row in rows]
        assert "MPPP (RFC 1717)" in names

    def test_render_aligned(self):
        text = render_table(paper_table1_rows())
        lines = text.splitlines()
        assert len(lines) == 7  # header + rule + 5 rows
        assert len({len(line) for line in lines}) <= 2  # aligned widths
