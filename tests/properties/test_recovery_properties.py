"""Kill/restart chaos properties: exactly-once delivery across crashes.

The paper handles endpoint crashes "by doing a reset"; the recovery
subsystem upgrades that to warm restarts from durable state.  These
properties are the contract, run over randomized crash schedules layered
on 10% persistent loss (so ARQ is live while endpoints die):

* **reliable** (30+ seeds): every submitted message is delivered exactly
  once, in order, no matter how many times the sender and receiver are
  killed and restarted from checkpoint mid-run;
* **hybrid** (FEC above ARQ): same exactly-once contract — parity and
  group state must not confuse the replay;
* **fabric-attached**: conservation holds globally and FIFO holds per
  flow (the fabric interleaves flows by design);
* **cold resync** (quasi-FIFO): a receiver restarted with *no* checkpoint
  converges to strictly-increasing delivery within one marker round plus
  a one-way delay after its restart (Theorem 5.1's fault-cessation bound
  applied to a reset receiver).
"""

import random

import pytest

from repro.experiments.recovery import (
    BANDWIDTH_BPS,
    KEEPALIVE_S,
    MESSAGE_BYTES,
    PROP_DELAY,
    QUEUE_LIMIT,
    RecoveryRig,
)
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultSchedule,
    endpoint_crash_schedule,
    persistent_loss_schedule,
)

LOSS_P = 0.10
SOURCE_STOP = 0.8
RUN_UNTIL = 2.5
SOURCE_INTERVAL = 0.4e-3


def _random_crashes(seed):
    """2-3 kills at spaced times, random targets (repeats allowed)."""
    rng = random.Random(seed)
    n = rng.randint(2, 3)
    times, t = [], 0.1
    for _ in range(n):
        t += rng.uniform(0.12, 0.2)
        times.append(t)
    crashes = [(t, rng.choice(("sender", "receiver"))) for t in times]
    return crashes, rng.uniform(0.03, 0.06)


def _run(seed, **rig_kwargs):
    sim = Simulator()
    rig = RecoveryRig(sim, checkpoint_interval_s=0.05, **rig_kwargs)
    crashes, outage = _random_crashes(seed)
    loss = persistent_loss_schedule(
        rig.n_channels, LOSS_P, start=0.0, until=SOURCE_STOP
    )
    schedule = FaultSchedule(
        tuple(loss.events)
        + tuple(endpoint_crash_schedule(crashes, outage=outage).events)
    )
    rig.start_source(interval=SOURCE_INTERVAL, stop_at=SOURCE_STOP)
    schedule.install(sim, rig.channels, seed=seed, endpoints=rig.controller)
    sim.run(until=RUN_UNTIL)
    assert rig.controller.total_crashes == len(crashes)
    assert sum(rig.controller.restarts.values()) == len(crashes)
    assert rig.next_seq > 500  # the source actually ran
    return rig


@pytest.mark.parametrize("seed", range(30))
def test_reliable_exactly_once_in_order_across_kills(seed):
    rig = _run(seed, reliability="reliable")
    delivered = rig.delivered_seqs()
    assert delivered == sorted(set(delivered)), "duplicate or misordered"
    assert set(delivered) == set(range(rig.next_seq)), "messages lost"


@pytest.mark.parametrize("seed", range(100, 106))
def test_hybrid_exactly_once_in_order_across_kills(seed):
    rig = _run(seed, reliability="hybrid")
    delivered = rig.delivered_seqs()
    assert delivered == sorted(set(delivered)), "duplicate or misordered"
    assert set(delivered) == set(range(rig.next_seq)), "messages lost"


@pytest.mark.parametrize("seed", range(200, 206))
def test_fabric_conservation_and_per_flow_fifo_across_kills(seed):
    rig = _run(seed, reliability="reliable", with_fabric=True)
    delivered = rig.delivered_seqs()
    assert len(delivered) == len(set(delivered)), "duplicate delivery"
    assert set(delivered) == set(range(rig.next_seq)), "messages lost"
    n_flows = len(rig.flows)
    for k in range(n_flows):
        flow_seqs = [s for s in delivered if s % n_flows == k]
        assert flow_seqs == sorted(flow_seqs), f"flow {k} out of order"


@pytest.mark.parametrize("seed", range(300, 306))
def test_cold_receiver_resyncs_via_markers(seed):
    """A checkpoint-less receiver restart converges cold (Theorem 5.1).

    Loss ceases before the kill so the post-restart world is fault-free;
    the delivered tail after restart + one marker keepalive + a worst-case
    one-way delay must be strictly increasing.
    """
    rng = random.Random(seed)
    down_at = rng.uniform(0.4, 0.5)
    outage = rng.uniform(0.03, 0.06)
    sim = Simulator()
    rig = RecoveryRig(
        sim,
        reliability="quasi_fifo",
        checkpoint_interval_s=0.05,
        cold_receiver=True,
    )
    loss = persistent_loss_schedule(
        rig.n_channels, LOSS_P, start=0.0, until=0.35
    )
    crashes = endpoint_crash_schedule(
        [(down_at, "receiver")], outage=outage
    )
    schedule = FaultSchedule(tuple(loss.events) + tuple(crashes.events))
    rig.start_source(interval=SOURCE_INTERVAL, stop_at=SOURCE_STOP)
    schedule.install(sim, rig.channels, seed=seed, endpoints=rig.controller)
    sim.run(until=RUN_UNTIL)

    assert rig.receiver_recovery.cold is True
    transmission = MESSAGE_BYTES * 8 / BANDWIDTH_BPS
    settle = (
        down_at + outage + KEEPALIVE_S
        + (QUEUE_LIMIT + 1) * transmission + PROP_DELAY
    )
    tail = [s for t, s in rig.deliveries if t >= settle]
    assert len(tail) > 100, "cold receiver never resynced"
    assert all(a < b for a, b in zip(tail, tail[1:])), (
        "cold resync did not restore strictly-increasing delivery"
    )


def test_repeated_same_target_kills_still_converge():
    """Kill the sender three times in one run; the contract must hold."""
    sim = Simulator()
    rig = RecoveryRig(sim, reliability="reliable", checkpoint_interval_s=0.05)
    loss = persistent_loss_schedule(
        rig.n_channels, LOSS_P, start=0.0, until=SOURCE_STOP
    )
    crashes = endpoint_crash_schedule(
        [(0.15, "sender"), (0.35, "sender"), (0.55, "sender")], outage=0.04
    )
    schedule = FaultSchedule(tuple(loss.events) + tuple(crashes.events))
    rig.start_source(interval=SOURCE_INTERVAL, stop_at=SOURCE_STOP)
    schedule.install(sim, rig.channels, seed=17, endpoints=rig.controller)
    sim.run(until=RUN_UNTIL)
    assert rig.controller.crashes["sender"] == 3
    delivered = rig.delivered_seqs()
    assert delivered == sorted(set(delivered))
    assert set(delivered) == set(range(rig.next_seq))


def test_recovery_latency_metric_reports_completed_outages():
    sim = Simulator()
    rig = RecoveryRig(sim, reliability="reliable", checkpoint_interval_s=0.05)
    loss = persistent_loss_schedule(
        rig.n_channels, LOSS_P, start=0.0, until=SOURCE_STOP
    )
    crashes = endpoint_crash_schedule(
        [(0.2, "sender"), (0.45, "receiver")], outage=0.05
    )
    schedule = FaultSchedule(tuple(loss.events) + tuple(crashes.events))
    rig.start_source(interval=SOURCE_INTERVAL, stop_at=SOURCE_STOP)
    schedule.install(sim, rig.channels, seed=7, endpoints=rig.controller)
    sim.run(until=RUN_UNTIL)
    latencies = rig.recovery_latencies()
    assert len(latencies) == 2
    assert all(lat is not None and lat >= 0.0 for lat in latencies)
