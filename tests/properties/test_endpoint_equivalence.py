"""Property tests: every transport adapter is the same striping endpoint.

After the endpoint-layer refactor, the plain striped-socket, session,
TCP-channel, and fast-path stacks are thin adapters over one
``StripeSenderPipeline``/``StripeReceiverPipeline`` pair.  These tests
push the same SRR workload through all four and assert the observable
protocol behaviour is identical:

* delivery order matches across every transport (FIFO over the common
  delivered prefix — quasi-FIFO effects need loss, and these runs are
  loss-free);
* the socket reference path and the fast path agree *exactly* — same
  ``(time, seq)`` records and same per-run marker arrival count;
* a named baseline discipline plugged into the shared testbed behaves
  the same as driving the raw discipline through in-memory ports.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packet import Packet, is_marker
from repro.core.striper import ListPort
from repro.experiments.fault_tolerance import build_session_testbed
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.experiments.tcp_channels import build_tcp_striped
from repro.sim.engine import Simulator
from repro.transport.endpoint import (
    DISCIPLINES,
    StripeSenderPipeline,
    make_discipline,
)

DURATION_S = 0.4


def _socket_order(n, seed, fast):
    config = SocketTestbedConfig(
        n_channels=n,
        link_mbps=(10.0,),
        prop_delay_s=(0.5e-3,) * n,
        loss_rates=(0.0,),
        message_bytes=1000,
        seed=seed,
        fast=fast,
    )
    sim = Simulator()
    testbed = build_socket_testbed(sim, config)
    sim.run(until=DURATION_S)
    records = [(d.time, d.seq) for d in testbed.deliveries]
    markers = testbed.receiver.resequencer.stats.markers_received
    return records, markers


def _session_order(n, seed):
    sim = Simulator()
    testbed = build_session_testbed(
        sim, n_channels=n, link_mbps=(10.0,), loss_rates=(0.0,), seed=seed
    )
    sim.run(until=DURATION_S)
    return [seq for _, seq in testbed.deliveries]


def _tcp_order(n, seed):
    sim = Simulator()
    _, receiver, _ = build_tcp_striped(
        sim, n_channels=n, message_sizes=(1000,), seed=seed
    )
    sim.run(until=DURATION_S)
    return [p.seq for p in receiver.delivered]


class TestCrossTransportEquivalence:
    @given(
        n=st.sampled_from([2, 3, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=6, deadline=None)
    def test_all_adapters_deliver_the_same_order(self, n, seed):
        socket_records, _ = _socket_order(n, seed, fast=False)
        socket_seqs = [seq for _, seq in socket_records]
        session_seqs = _session_order(n, seed)
        tcp_seqs = _tcp_order(n, seed)
        fast_records, _ = _socket_order(n, seed, fast=True)
        fast_seqs = [seq for _, seq in fast_records]
        orders = [socket_seqs, session_seqs, tcp_seqs, fast_seqs]
        assert all(len(order) > 50 for order in orders)
        common = min(len(order) for order in orders)
        reference = socket_seqs[:common]
        for order in orders:
            assert order[:common] == reference

    @given(
        n=st.sampled_from([2, 3, 4, 8]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_fast_adapter_is_exact(self, n, seed):
        """Socket reference vs fast path: identical (time, seq) records
        AND identical marker arrival counts — the adapters share one
        pipeline, so only wall-clock may differ."""
        ref_records, ref_markers = _socket_order(n, seed, fast=False)
        fast_records, fast_markers = _socket_order(n, seed, fast=True)
        assert ref_records
        assert fast_records == ref_records
        assert fast_markers == ref_markers


class TestDisciplinePortability:
    @given(
        name=st.sampled_from(
            ["sqf", "random_selection", "address_hash", "srr"]
        ),
        n=st.sampled_from([2, 3, 4]),
        seed=st.integers(min_value=0, max_value=2**12),
    )
    @settings(max_examples=10, deadline=None)
    def test_pipeline_matches_raw_discipline(self, name, n, seed):
        """The pipeline adds nothing to a discipline's channel choices:
        striping a workload through StripeSenderPipeline lands every
        packet where driving the raw (s0, f, g) sharer by hand would."""
        sizes = [200 + (i * 997) % 1300 for i in range(60)]

        pipeline_ports = [ListPort() for _ in range(n)]
        pipeline = StripeSenderPipeline(
            pipeline_ports, name,
            discipline_options={"quantum": 1000.0, "seed": seed},
        )
        for i, size in enumerate(sizes):
            pipeline.submit_packet(Packet(size=size, seq=i))
        pipeline.flush()

        sharer = make_discipline(name, n, quantum=1000.0, seed=seed)
        wrap = getattr(sharer, "wrap_packet", None)
        manual_ports = [ListPort() for _ in range(n)]
        for i, size in enumerate(sizes):
            packet = Packet(size=size, seq=i)
            units = wrap(packet) if wrap is not None else [packet]
            for unit in units:
                channel = sharer.choose(unit, None)
                manual_ports[channel].sent.append(unit)
                sharer.notify_sent(channel, unit)
        flush = getattr(sharer, "flush", None)
        if flush is not None:
            for unit in flush():
                channel = sharer.choose(unit, None)
                manual_ports[channel].sent.append(unit)
                sharer.notify_sent(channel, unit)

        for pipe_port, manual_port in zip(pipeline_ports, manual_ports):
            pipe_data = [
                p for p in pipe_port.sent if not is_marker(p)
            ]
            assert [p.size for p in pipe_data] == [
                p.size for p in manual_port.sent
            ]


class TestRegistryRoundTrip:
    """Every registry discipline round-trips through the shared testbed.

    The registry's contract is that *any* named discipline — whatever its
    synchronization model — plugs into the transports and conserves
    packets **exactly once**: nothing delivered twice, nothing delivered
    that was never submitted.  Clean runs must also actually move traffic;
    lossy runs may drop (quasi-FIFO permits gaps) but never duplicate or
    invent.
    """

    #: disciplines whose receiver half delivers *frames* in their own
    #: sequence space (BONDING) rather than the submitted packets.
    FRAME_DELIVERY = {"bonding"}
    #: fragmenting disciplines the session transport rejects by contract
    #: (its epoch striper moves whole packets, not fragments).
    FRAGMENTING = {"mppp", "bonding"}

    @staticmethod
    def _options_for(name):
        # Sprinklers: provision the full stripe for the harness's single
        # flowless aggregate (resize transients are studied elsewhere).
        if name == "sprinklers":
            return {"initial_share": 1.0}
        return None

    @pytest.mark.parametrize("name", sorted(set(DISCIPLINES)))
    @pytest.mark.parametrize("loss", [0.0, 0.1])
    def test_socket_conservation(self, name, loss):
        sim = Simulator()
        config = SocketTestbedConfig(
            n_channels=2,
            link_mbps=(10.0,),
            prop_delay_s=(0.5e-3,) * 2,
            loss_rates=(loss,),
            message_bytes=1000,
            discipline=name,
            discipline_options=self._options_for(name),
            seed=7,
        )
        testbed = build_socket_testbed(sim, config)
        sim.run(until=0.3)
        seqs = testbed.delivered_seqs()
        submitted = testbed.source.generated
        assert len(seqs) == len(set(seqs)), f"{name}: duplicate delivery"
        if name not in self.FRAME_DELIVERY:
            assert set(seqs) <= set(range(submitted)), (
                f"{name}: delivered a packet that was never submitted"
            )
        if loss == 0.0:
            assert len(seqs) > 50, f"{name}: clean run barely delivered"

    @pytest.mark.parametrize("name", sorted(set(DISCIPLINES)))
    def test_session_builds_and_conserves(self, name):
        sim = Simulator()
        if name in self.FRAGMENTING:
            with pytest.raises(ValueError, match="whole packets"):
                build_session_testbed(
                    sim, n_channels=2, link_mbps=(10.0,),
                    loss_rates=(0.0,), seed=7, discipline=name,
                )
            return
        testbed = build_session_testbed(
            sim, n_channels=2, link_mbps=(10.0,), loss_rates=(0.0,),
            seed=7, discipline=name,
            discipline_options=self._options_for(name),
        )
        sim.run(until=0.3)
        seqs = [seq for _, seq in testbed.deliveries]
        assert len(seqs) > 50
        assert len(seqs) == len(set(seqs))

    @pytest.mark.parametrize("name", sorted(set(DISCIPLINES)))
    def test_tcp_builds_and_conserves(self, name):
        sim = Simulator()
        _, receiver, _ = build_tcp_striped(
            sim, n_channels=2, message_sizes=(1000,), seed=7,
            discipline=name,
            discipline_options=self._options_for(name),
        )
        sim.run(until=0.3)
        # BONDING delivers frames (sequence); everything else packets (seq).
        seqs = [
            p.sequence if name in self.FRAME_DELIVERY else p.seq
            for p in receiver.delivered
        ]
        assert len(seqs) > 50
        assert len(seqs) == len(set(seqs))


class TestMultiFlowCrossTransportEquivalence:
    """Every adapter drains an attached fabric into the same wire order.

    Two weighted flows are prefilled into a detached
    :class:`~repro.transport.fabric.FabricScheduler` (so the weighted-DRR
    merge order is fixed before any transport sees a packet), the fabric
    is mounted on each adapter — socket, session, TCP, fast path, and
    duplex — and the delivered sequence must equal the reference DRR
    merge on all five.  None of the adapters contains any flow logic;
    multi-flow submission is purely the shared pipeline's ``attach_fabric``
    surface, so any divergence here is a pipeline bug, not a transport
    feature.
    """

    MESSAGE_BYTES = 1000
    #: (flow_id, weight, packets): counts proportional to weight so the
    #: flows stay mutually backlogged until they drain together.
    FLOWS = (("gold", 2.0, 80), ("bronze", 1.0, 40))

    def _prefilled_fabric(self):
        from repro.transport.fabric import FabricScheduler, FlowTable

        table = FlowTable(quantum_bytes=float(self.MESSAGE_BYTES))
        fabric = FabricScheduler(
            table, flow_buffer_packets=None, auto_register=False
        )
        for flow_id, weight, _ in self.FLOWS:
            table.register(flow_id, weight=weight)
        seq = 0
        for flow_id, _, count in self.FLOWS:
            for _ in range(count):
                assert fabric.submit(
                    flow_id, Packet(size=self.MESSAGE_BYTES, seq=seq)
                )
                seq += 1
        return fabric

    @property
    def _total(self):
        return sum(count for _, _, count in self.FLOWS)

    def _reference_order(self):
        """The pure weighted-DRR merge, no transport underneath."""
        out = []
        fabric = self._prefilled_fabric()
        fabric.bind(out.append)
        fabric.pump()
        return [p.seq for p in out]

    def _socket_seqs(self, fast):
        config = SocketTestbedConfig(
            n_channels=2,
            link_mbps=(10.0,),
            prop_delay_s=(0.5e-3, 0.5e-3),
            loss_rates=(0.0,),
            message_bytes=self.MESSAGE_BYTES,
            seed=0,
            fast=fast,
            closed_loop=False,
        )
        sim = Simulator()
        testbed = build_socket_testbed(sim, config)
        testbed.sender.attach_fabric(self._prefilled_fabric())
        testbed.sender.pump()
        sim.run(until=0.6)
        return testbed.delivered_seqs()

    def _session_seqs(self):
        sim = Simulator()
        testbed = build_session_testbed(
            sim, n_channels=2, link_mbps=(10.0,), loss_rates=(0.0,),
            message_bytes=self.MESSAGE_BYTES, seed=0, closed_loop=False,
        )
        testbed.sender.attach_fabric(self._prefilled_fabric())
        testbed.sender.pump()
        sim.run(until=0.6)
        return [seq for _, seq in testbed.deliveries]

    def _tcp_seqs(self):
        sim = Simulator()
        sender, receiver, _ = build_tcp_striped(
            sim, n_channels=2, message_sizes=(self.MESSAGE_BYTES,),
            seed=0, closed_loop=False,
        )
        sender.attach_fabric(self._prefilled_fabric())
        sender.pump()
        sim.run(until=0.6)
        return [p.seq for p in receiver.delivered]

    def _duplex_seqs(self):
        from repro.core.srr import SRR
        from repro.net.ethernet import EthernetInterface
        from repro.net.stack import Link, Stack
        from repro.transport.duplex import connect_duplex

        sim = Simulator()
        a, b = Stack(sim, "A"), Stack(sim, "B")
        a_targets, b_targets, links = [], [], []
        for index in range(2):
            ia = EthernetInterface(sim, f"mf{index}a", f"10.{90+index}.0.1")
            ib = EthernetInterface(sim, f"mf{index}b", f"10.{90+index}.0.2")
            a.add_interface(ia)
            b.add_interface(ib)
            links.append(Link(
                sim, ia, ib, bandwidth_bps=10e6, prop_delay=0.5e-3,
                queue_limit=40, name=f"mfduplex{index}",
            ))
            a.routing.add(f"10.{90+index}.0.2", 24, ia)
            b.routing.add(f"10.{90+index}.0.1", 24, ib)
            ia.arp_cache.install(ib.ip_address, ib.mac)
            ib.arp_cache.install(ia.ip_address, ia.mac)
            a_targets.append((f"10.{90+index}.0.2", 7100 + index))
            b_targets.append((f"10.{90+index}.0.1", 7000 + index))
        end_a, end_b = connect_duplex(
            sim, a, b, a_targets, b_targets,
            algorithm_factory=lambda: SRR([float(self.MESSAGE_BYTES)] * 2),
            buffer_packets=16,
        )
        end_a.attach_fabric(self._prefilled_fabric())
        end_a.sender.pump()
        for link in links:
            link.ab.on_space = end_a.sender.pump
            link.ba.on_space = end_b.sender.pump
        sim.run(until=0.6)
        return [p.seq for p in end_b.delivered]

    def test_all_adapters_drain_the_fabric_in_reference_drr_order(self):
        reference = self._reference_order()
        assert len(reference) == self._total
        # The weighted merge is NOT the submission order — the transports
        # below must reproduce the *scheduler's* interleave, not FIFO.
        assert reference != sorted(reference)

        orders = {
            "socket": self._socket_seqs(fast=False),
            "fast": self._socket_seqs(fast=True),
            "session": self._session_seqs(),
            "tcp": self._tcp_seqs(),
            "duplex": self._duplex_seqs(),
        }
        for name, seqs in orders.items():
            assert seqs == reference, (
                f"{name} transport diverged from the reference DRR merge "
                f"(delivered {len(seqs)}/{len(reference)})"
            )

    def test_per_flow_fifo_on_every_transport(self):
        """Each flow's packets arrive in its own submission order."""
        bounds, start = {}, 0
        for flow_id, _, count in self.FLOWS:
            bounds[flow_id] = range(start, start + count)
            start += count
        for seqs in (self._session_seqs(), self._tcp_seqs()):
            for flow_id, flow_range in bounds.items():
                flow_seqs = [s for s in seqs if s in flow_range]
                assert flow_seqs == list(flow_range), (
                    f"flow {flow_id} delivered out of submission order"
                )
