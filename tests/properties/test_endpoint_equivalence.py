"""Property tests: every transport adapter is the same striping endpoint.

After the endpoint-layer refactor, the plain striped-socket, session,
TCP-channel, and fast-path stacks are thin adapters over one
``StripeSenderPipeline``/``StripeReceiverPipeline`` pair.  These tests
push the same SRR workload through all four and assert the observable
protocol behaviour is identical:

* delivery order matches across every transport (FIFO over the common
  delivered prefix — quasi-FIFO effects need loss, and these runs are
  loss-free);
* the socket reference path and the fast path agree *exactly* — same
  ``(time, seq)`` records and same per-run marker arrival count;
* a named baseline discipline plugged into the shared testbed behaves
  the same as driving the raw discipline through in-memory ports.
"""

from hypothesis import given, settings, strategies as st

from repro.core.packet import Packet, is_marker
from repro.core.striper import ListPort
from repro.experiments.fault_tolerance import build_session_testbed
from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.experiments.tcp_channels import build_tcp_striped
from repro.sim.engine import Simulator
from repro.transport.endpoint import (
    StripeSenderPipeline,
    make_discipline,
)

DURATION_S = 0.4


def _socket_order(n, seed, fast):
    config = SocketTestbedConfig(
        n_channels=n,
        link_mbps=(10.0,),
        prop_delay_s=(0.5e-3,) * n,
        loss_rates=(0.0,),
        message_bytes=1000,
        seed=seed,
        fast=fast,
    )
    sim = Simulator()
    testbed = build_socket_testbed(sim, config)
    sim.run(until=DURATION_S)
    records = [(d.time, d.seq) for d in testbed.deliveries]
    markers = testbed.receiver.resequencer.stats.markers_received
    return records, markers


def _session_order(n, seed):
    sim = Simulator()
    testbed = build_session_testbed(
        sim, n_channels=n, link_mbps=(10.0,), loss_rates=(0.0,), seed=seed
    )
    sim.run(until=DURATION_S)
    return [seq for _, seq in testbed.deliveries]


def _tcp_order(n, seed):
    sim = Simulator()
    _, receiver, _ = build_tcp_striped(
        sim, n_channels=n, message_sizes=(1000,), seed=seed
    )
    sim.run(until=DURATION_S)
    return [p.seq for p in receiver.delivered]


class TestCrossTransportEquivalence:
    @given(
        n=st.sampled_from([2, 3, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=6, deadline=None)
    def test_all_adapters_deliver_the_same_order(self, n, seed):
        socket_records, _ = _socket_order(n, seed, fast=False)
        socket_seqs = [seq for _, seq in socket_records]
        session_seqs = _session_order(n, seed)
        tcp_seqs = _tcp_order(n, seed)
        fast_records, _ = _socket_order(n, seed, fast=True)
        fast_seqs = [seq for _, seq in fast_records]
        orders = [socket_seqs, session_seqs, tcp_seqs, fast_seqs]
        assert all(len(order) > 50 for order in orders)
        common = min(len(order) for order in orders)
        reference = socket_seqs[:common]
        for order in orders:
            assert order[:common] == reference

    @given(
        n=st.sampled_from([2, 3, 4, 8]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_fast_adapter_is_exact(self, n, seed):
        """Socket reference vs fast path: identical (time, seq) records
        AND identical marker arrival counts — the adapters share one
        pipeline, so only wall-clock may differ."""
        ref_records, ref_markers = _socket_order(n, seed, fast=False)
        fast_records, fast_markers = _socket_order(n, seed, fast=True)
        assert ref_records
        assert fast_records == ref_records
        assert fast_markers == ref_markers


class TestDisciplinePortability:
    @given(
        name=st.sampled_from(
            ["sqf", "random_selection", "address_hash", "srr"]
        ),
        n=st.sampled_from([2, 3, 4]),
        seed=st.integers(min_value=0, max_value=2**12),
    )
    @settings(max_examples=10, deadline=None)
    def test_pipeline_matches_raw_discipline(self, name, n, seed):
        """The pipeline adds nothing to a discipline's channel choices:
        striping a workload through StripeSenderPipeline lands every
        packet where driving the raw (s0, f, g) sharer by hand would."""
        sizes = [200 + (i * 997) % 1300 for i in range(60)]

        pipeline_ports = [ListPort() for _ in range(n)]
        pipeline = StripeSenderPipeline(
            pipeline_ports, name,
            discipline_options={"quantum": 1000.0, "seed": seed},
        )
        for i, size in enumerate(sizes):
            pipeline.submit_packet(Packet(size=size, seq=i))
        pipeline.flush()

        sharer = make_discipline(name, n, quantum=1000.0, seed=seed)
        wrap = getattr(sharer, "wrap_packet", None)
        manual_ports = [ListPort() for _ in range(n)]
        for i, size in enumerate(sizes):
            packet = Packet(size=size, seq=i)
            units = wrap(packet) if wrap is not None else [packet]
            for unit in units:
                channel = sharer.choose(unit, None)
                manual_ports[channel].sent.append(unit)
                sharer.notify_sent(channel, unit)
        flush = getattr(sharer, "flush", None)
        if flush is not None:
            for unit in flush():
                channel = sharer.choose(unit, None)
                manual_ports[channel].sent.append(unit)
                sharer.notify_sent(channel, unit)

        for pipe_port, manual_port in zip(pipeline_ports, manual_ports):
            pipe_data = [
                p for p in pipe_port.sent if not is_marker(p)
            ]
            assert [p.size for p in pipe_data] == [
                p.size for p in manual_port.sent
            ]
