"""Randomized equivalence: native kernels vs the immutable CausalFQ path.

The scheduler kernel is only allowed to be *faster*, never *different*:
for any quanta and any packet-size sequence, the native SRR / RR / GRR
kernels must produce byte-identical channel assignments and identical
``(R, D)`` marker state to stepping the frozen ``(s0, f, g)`` dataclass
path.  Any divergence would silently break logical reception (the
receiver's simulation would drift from the sender).
"""

from hypothesis import given, settings, strategies as st

from repro.core.cfq import fq_service_order
from repro.core.kernel import (
    CFQKernelAdapter,
    SRRKernel,
    kernel_for,
    make_grr_kernel,
    make_rr_kernel,
)
from repro.core.packet import Packet
from repro.core.schemes import SeededRandomFQ
from repro.core.srr import SRR, make_grr, make_rr

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=2000), min_size=1, max_size=300
)
quanta_strategy = st.lists(
    st.integers(min_value=1, max_value=3000), min_size=2, max_size=5
)
weights_strategy = st.lists(
    st.integers(min_value=1, max_value=7), min_size=2, max_size=5
)


def frozen_assignments(algorithm, sizes):
    """Reference: step the immutable path, collecting channel + states."""
    state = algorithm.initial_state()
    channels = []
    states = []
    for size in sizes:
        channels.append(algorithm.select(state))
        state = algorithm.update(state, size)
        states.append(state)
    return channels, states


class TestKernelEquivalence:
    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=150, deadline=None)
    def test_srr_kernel_stepwise_identical(self, sizes, quanta):
        """step() matches select/update packet by packet, including the
        full (ptr, R, dc) state after every packet."""
        algorithm = SRR(quanta)
        kernel = SRRKernel(algorithm)
        expected_channels, expected_states = frozen_assignments(
            algorithm, sizes
        )
        for size, channel, state in zip(
            sizes, expected_channels, expected_states
        ):
            assert kernel.peek() == channel
            assert kernel.step(size) == channel
            assert kernel.snapshot() == state

    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=150, deadline=None)
    def test_srr_kernel_batched_identical(self, sizes, quanta):
        algorithm = SRR(quanta)
        expected_channels, expected_states = frozen_assignments(
            algorithm, sizes
        )
        kernel = SRRKernel(algorithm)
        assert kernel.assign_many(sizes) == expected_channels
        assert kernel.snapshot() == expected_states[-1]

    @given(sizes=sizes_strategy, n=st.integers(min_value=2, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_rr_kernel_identical(self, sizes, n):
        algorithm = make_rr(n)
        expected_channels, expected_states = frozen_assignments(
            algorithm, sizes
        )
        kernel = make_rr_kernel(n)
        assert kernel.assign_many(sizes) == expected_channels
        assert kernel.snapshot() == expected_states[-1]

    @given(sizes=sizes_strategy, weights=weights_strategy)
    @settings(max_examples=100, deadline=None)
    def test_grr_kernel_identical(self, sizes, weights):
        algorithm = make_grr(weights)
        expected_channels, expected_states = frozen_assignments(
            algorithm, sizes
        )
        kernel = make_grr_kernel(weights)
        assert kernel.assign_many(sizes) == expected_channels
        assert kernel.snapshot() == expected_states[-1]

    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=100, deadline=None)
    def test_marker_numbers_identical(self, sizes, quanta):
        """(R, D) marker state: next_number_for_channel agrees with the
        immutable path on every channel after every packet."""
        algorithm = SRR(quanta)
        kernel = SRRKernel(algorithm)
        state = algorithm.initial_state()
        for size in sizes:
            state = algorithm.update(state, size)
            kernel.step(size)
            assert kernel.implicit_number() == state.implicit_number()
            for channel in range(algorithm.n_channels):
                assert kernel.next_number_for_channel(
                    channel
                ) == algorithm.next_number_for_channel(state, channel)

    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=100, deadline=None)
    def test_adapter_matches_native_kernel(self, sizes, quanta):
        """CFQKernelAdapter over SRR == native SRRKernel (same algorithm,
        two kernel implementations)."""
        algorithm = SRR(quanta)
        native = SRRKernel(algorithm)
        adapted = CFQKernelAdapter(algorithm)
        assert native.assign_many(sizes) == adapted.assign_many(sizes)
        assert native.snapshot() == adapted.snapshot()

    @given(sizes=sizes_strategy, seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=50, deadline=None)
    def test_kernel_for_randomized_scheme(self, sizes, seed):
        """kernel_for falls back to the adapter for non-SRR algorithms and
        still matches the frozen path exactly."""
        algorithm = SeededRandomFQ(3, seed=seed)
        kernel = kernel_for(algorithm)
        assert isinstance(kernel, CFQKernelAdapter)
        expected_channels, _ = frozen_assignments(algorithm, sizes)
        assert kernel.assign_many(sizes) == expected_channels

    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=75, deadline=None)
    def test_fq_service_order_unchanged(self, sizes, quanta):
        """The kernelized FQ driver services queues in the same order the
        frozen-state driver did (replayed here as the reference)."""
        algorithm = SRR(quanta)
        n = algorithm.n_channels
        queues = [[] for _ in range(n)]
        # Pre-stripe with the reference path so every queue is consistent.
        state = algorithm.initial_state()
        packets = []
        for index, size in enumerate(sizes):
            packet = Packet(size, seq=index)
            packets.append(packet)
            queues[algorithm.select(state)].append(packet)
            state = algorithm.update(state, size)
        order = fq_service_order(algorithm, queues)
        assert [p.uid for p in order] == [p.uid for p in packets]
