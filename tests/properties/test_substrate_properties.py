"""Property-based tests for the substrates: channels, MPPP, reorder metrics."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.reorder import analyze_order
from repro.baselines.mppp import MpppFragment, MpppReceiver
from repro.core.packet import Packet
from repro.sim.channel import Channel
from repro.sim.engine import Simulator


class TestChannelFifoProperty:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=2000),
                       min_size=1, max_size=80),
        skew_seed=st.integers(min_value=0, max_value=2**16),
        skew_scale=st.floats(min_value=0.0, max_value=0.05),
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_under_any_skew(self, sizes, skew_seed, skew_scale):
        """The channel delivers in send order with non-decreasing
        timestamps, whatever the per-packet skew process does."""
        sim = Simulator()
        rng = random.Random(skew_seed)
        channel = Channel(
            sim, bandwidth_bps=1e6, prop_delay=0.001,
            skew=lambda: rng.uniform(0, skew_scale),
        )
        deliveries = []
        channel.on_deliver = lambda p: deliveries.append((p.seq, sim.now))
        for i, size in enumerate(sizes):
            channel.send(Packet(size, seq=i))
        sim.run()
        seqs = [s for s, _ in deliveries]
        stamps = [t for _, t in deliveries]
        assert seqs == list(range(len(sizes)))
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=2000),
                       min_size=1, max_size=60),
        loss_seed=st.integers(min_value=0, max_value=2**16),
        loss_p=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_survivors_stay_ordered_under_loss(self, sizes, loss_seed, loss_p):
        from repro.sim.loss import BernoulliLoss

        sim = Simulator()
        channel = Channel(
            sim, bandwidth_bps=1e6, prop_delay=0.001,
            loss_model=BernoulliLoss(loss_p, rng=random.Random(loss_seed)),
        )
        delivered = []
        channel.on_deliver = lambda p: delivered.append(p.seq)
        for i, size in enumerate(sizes):
            channel.send(Packet(size, seq=i))
        sim.run()
        assert delivered == sorted(delivered)
        assert (
            len(delivered)
            + channel.stats.lost_packets
            == len(sizes)
        )


class TestMpppProperty:
    @given(
        count=st.integers(min_value=1, max_value=120),
        shuffle_seed=st.integers(min_value=0, max_value=2**16),
        drop=st.sets(st.integers(min_value=0, max_value=119)),
    )
    @settings(max_examples=80, deadline=None)
    def test_output_always_sorted(self, count, shuffle_seed, drop):
        """Whatever arrives, in whatever order, with whatever losses, the
        MPPP receiver's output (plus flush) is strictly increasing."""
        receiver = MpppReceiver()
        fragments = [
            MpppFragment(i, Packet(100, seq=i))
            for i in range(count)
            if i not in drop
        ]
        random.Random(shuffle_seed).shuffle(fragments)
        out = []
        for fragment in fragments:
            out.extend(p.seq for p in receiver.push(0, fragment))
        out.extend(p.seq for p in receiver.flush())
        assert out == sorted(out)
        assert len(out) == len(fragments)


class TestAnalyzeOrderProperties:
    @given(perm_seed=st.integers(0, 2**16),
           n=st.integers(min_value=1, max_value=150))
    @settings(max_examples=60, deadline=None)
    def test_sorted_input_is_fifo(self, perm_seed, n):
        rng = random.Random(perm_seed)
        seqs = sorted(rng.sample(range(n * 3), n))
        report = analyze_order(seqs, sent_count=n * 3)
        assert report.is_fifo
        assert report.out_of_order == 0

    @given(perm_seed=st.integers(0, 2**16),
           n=st.integers(min_value=2, max_value=150))
    @settings(max_examples=60, deadline=None)
    def test_counts_are_consistent(self, perm_seed, n):
        rng = random.Random(perm_seed)
        seqs = list(range(n))
        rng.shuffle(seqs)
        report = analyze_order(seqs, sent_count=n)
        assert 0 <= report.out_of_order <= n - 1
        assert report.delivered == n
        assert report.missing == 0
        # a shuffled permutation is FIFO iff it is the identity
        assert report.is_fifo == (seqs == sorted(seqs))
