"""Composed fairness invariants: weighted DRR above x SRR below, at once.

The fabric claims two simultaneous guarantees for one bundle under load:

* **Theorem 3.2 envelope (below)** — per-channel transmitted data bytes
  (first transmissions *and* ARQ retransmissions, recorded at the ports)
  differ by at most ``Max + 2 * Quantum``;
* **weighted-DRR bound (above)** — while a flow stays backlogged, its
  serviced bytes differ from ``visits * quantum_i`` by at most one
  maximum packet plus one in-progress visit, and backlogged flows' visit
  counts differ by at most one ring lap.

These must hold *together*, under 10% persistent loss on every channel
plus a full mid-run crash of one channel, in reliable mode — the regime
where retransmission traffic could plausibly break either layer's
accounting.  Flows are prefilled far beyond what the run can drain, so
every flow is backlogged for the entire measurement window (fairness is
only defined over backlogged flows).
"""

from typing import Dict, List, Tuple

import pytest

from repro.core.fairness import normalized_shares
from repro.core.packet import Packet
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import FaultEvent, FaultSchedule, persistent_loss_schedule
from repro.transport.endpoint import (
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.fabric import FabricScheduler, FlowTable
from repro.transport.fast_path import FastChannelPort

N_CHANNELS = 3
PACKET_BYTES = 500
BANDWIDTH_BPS = 8e6
PROP_DELAY = 0.5e-3
QUEUE_LIMIT = 64
#: Theorem 3.2: per-channel byte counts differ by <= Max + 2 * Quantum
CHANNEL_ENVELOPE = PACKET_BYTES + 2 * PACKET_BYTES

#: (flow_id, weight): two flows per weight class, skewed 1:2:3
FLOW_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("a1", 1.0), ("a2", 1.0), ("b1", 2.0),
    ("b2", 2.0), ("c1", 3.0), ("c2", 3.0),
)
PREFILL_PACKETS = 2500  # per flow; far more than a run can drain


@pytest.fixture
def sim():
    return Simulator()


class FabricChaosRig:
    """A fabric-fronted reliable striped endpoint over faultable channels."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.channels = [
            Channel(
                sim,
                bandwidth_bps=BANDWIDTH_BPS,
                prop_delay=PROP_DELAY,
                queue_limit=QUEUE_LIMIT,
                name=f"ch{i}",
            )
            for i in range(N_CHANNELS)
        ]
        self.ports = [FastChannelPort(ch) for ch in self.channels]
        quanta = [float(PACKET_BYTES)] * N_CHANNELS
        self.table = FlowTable(quantum_bytes=float(PACKET_BYTES))
        self.fabric = FabricScheduler(self.table, flow_buffer_packets=None)
        self.sender = StripeSenderPipeline(
            self.ports,
            SRR(quanta),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=sim,
            marker_keepalive_s=0.02,
            reliability="reliable",
            fabric=self.fabric,
        )
        self.delivered: List[Tuple[str, int]] = []
        self.receiver = StripeReceiverPipeline(
            N_CHANNELS,
            SRR(quanta),
            mode="marker",
            on_message=lambda p: self.delivered.append(p.payload),
            sim=sim,
            reliability="reliable",
            send_ack=lambda sack: sim.schedule(
                PROP_DELAY, self.sender.on_ack, sack
            ),
        )
        for index, channel in enumerate(self.channels):
            channel.on_deliver = self.receiver.channel_handler(index)
            channel.on_space = self.sender._pump

    def prefill(self) -> None:
        for flow_id, weight in FLOW_WEIGHTS:
            self.table.register(flow_id, weight=weight)
        for flow_id, _ in FLOW_WEIGHTS:
            for k in range(PREFILL_PACKETS):
                self.sender.submit(
                    flow_id,
                    Packet(size=PACKET_BYTES, payload=(flow_id, k)),
                )


def run_composed_chaos(sim: Simulator, seed: int):
    """Returns the rig and a post-startup baseline of per-flow service.

    The fairness bounds are asserted over the *interval* from the
    baseline to the end of the run: the prefill transient (the first
    flow's packets drain alone while the later flows are still being
    registered) is real but is not the steady backlogged regime the DRR
    bound speaks about.
    """
    rig = FabricChaosRig(sim)
    rig.prefill()
    # 10% persistent loss everywhere + a full crash of one channel mid-run.
    events = list(
        persistent_loss_schedule(N_CHANNELS, 0.10, start=0.0, until=0.8)
    ) + [FaultEvent(time=0.3, channel=1, kind="crash", duration=0.15)]
    FaultSchedule(events).install(sim, rig.channels, seed=seed)
    sim.run(until=0.05)
    baseline = {
        f.flow_id: (f.serviced_bytes, f.visits) for f in rig.table
    }
    sim.run(until=1.0)
    return rig, baseline


@pytest.mark.parametrize("seed", range(3))
def test_channel_envelope_and_flow_drr_bound_simultaneously(sim, seed):
    """10% loss + channel crash: both fairness layers hold at once."""
    rig, baseline = run_composed_chaos(sim, seed)

    # The run actually exercised the claimed regime.
    assert len(rig.delivered) > 1000, "chaos run barely delivered anything"
    arq = rig.sender.reliable
    assert arq.stats.retransmissions > 0, "the loss regime never bit"
    flows = {f.flow_id: f for f in rig.table}
    assert all(f.backlog > 0 for f in flows.values()), (
        "a flow drained; the fairness bounds only apply while backlogged"
    )

    # Below: Theorem 3.2 over actual transmissions, repair included.
    per_channel = [port.data_bytes_sent for port in rig.sender.ports]
    assert max(per_channel) - min(per_channel) <= CHANNEL_ENVELOPE, (
        f"per-channel bytes broke the Theorem 3.2 envelope: {per_channel}"
    )

    # Above: the weighted-DRR service bound, per flow, over the interval.
    # Each interval endpoint contributes at most one in-progress visit
    # (< quantum + max packet) of slack.
    deltas = {}
    for flow_id, weight in FLOW_WEIGHTS:
        flow = flows[flow_id]
        base_bytes, base_visits = baseline[flow_id]
        d_bytes = flow.serviced_bytes - base_bytes
        d_visits = flow.visits - base_visits
        deltas[flow_id] = (d_bytes, d_visits)
        assert d_visits > 10, f"flow {flow_id} barely got scheduled"
        deviation = abs(d_bytes - d_visits * flow.quantum)
        assert deviation <= 2 * PACKET_BYTES + flow.quantum, (
            f"flow {flow_id}: {d_bytes}B over {d_visits} visits of "
            f"{flow.quantum}B breaks the DRR bound"
        )

    # Backlogged flows advance in lockstep around the active ring (<= 1
    # lap of skew at each interval endpoint)...
    visit_deltas = [deltas[fid][1] for fid, _ in FLOW_WEIGHTS]
    assert max(visit_deltas) - min(visit_deltas) <= 2, (
        f"backlogged flows diverged beyond ring-lap skew: {visit_deltas}"
    )
    # ...so per-unit-weight service is near-equal across all flows.
    shares = normalized_shares(
        [deltas[fid][0] for fid, _ in FLOW_WEIGHTS],
        [weight for _, weight in FLOW_WEIGHTS],
    )
    assert all(abs(s - 1.0) <= 0.05 for s in shares), (
        f"weighted shares drifted beyond 5%: {shares}"
    )


def test_lossy_channel_does_not_starve_any_flow(sim):
    """While one channel drops half its packets, every flow progresses.

    (A *fully* silent channel legitimately stalls the whole bundle until
    it heals or a lifecycle manager excludes it — that is the marker
    algorithm's head-of-line wait, shared fairly by all flows — so the
    per-flow liveness claim is tested against a degraded channel that
    still carries occasional markers.)
    """
    rig = FabricChaosRig(sim)
    rig.prefill()
    FaultSchedule(
        [
            FaultEvent(
                time=0.2, channel=0, kind="crash", duration=0.2,
                magnitude=0.5,
            )
        ]
    ).install(sim, rig.channels, seed=7)
    sim.run(until=0.2)
    before = {f.flow_id: f.serviced_packets for f in rig.table}
    sim.run(until=0.4)
    for flow in rig.table:
        assert flow.serviced_packets > before[flow.flow_id], (
            f"flow {flow.flow_id} starved while channel 0 was degraded"
        )
