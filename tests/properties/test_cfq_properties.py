"""Property-based tests (hypothesis) for the core theorems.

These drive the actual implementations over randomly generated algorithm
configurations, packet-size sequences, and arrival interleavings, checking
the paper's formal claims as executable invariants:

* Theorem 3.1 — the reverse-correspondence construction holds for every
  CFQ algorithm and input.
* Theorem 3.2 / Lemma 3.3 — the SRR byte-fairness bound.
* Theorem 4.1 — logical reception restores FIFO under any loss-free
  arrival interleaving.
* Arrival-order invariance — the logical delivery order depends only on
  the per-channel streams, never on cross-channel arrival timing.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.markers import SRRReceiver
from repro.core.packet import Packet
from repro.core.resequencer import Resequencer
from repro.core.schemes import SeededRandomFQ
from repro.core.srr import SRR, make_grr, make_rr
from repro.core.transform import (
    TransformedLoadSharer,
    bytes_per_channel,
    stripe_sequence,
    verify_reverse_correspondence,
)

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=2000), min_size=1, max_size=200
)
quanta_strategy = st.lists(
    st.integers(min_value=1, max_value=3000), min_size=2, max_size=5
)


def packets_from(sizes):
    return [Packet(size=s, seq=i) for i, s in enumerate(sizes)]


class TestTheorem31:
    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=120, deadline=None)
    def test_srr_reverse_correspondence(self, sizes, quanta):
        assert verify_reverse_correspondence(SRR(quanta), packets_from(sizes))

    @given(sizes=sizes_strategy, n=st.integers(min_value=2, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_rr_reverse_correspondence(self, sizes, n):
        assert verify_reverse_correspondence(make_rr(n), packets_from(sizes))

    @given(
        sizes=sizes_strategy,
        weights=st.lists(st.integers(min_value=1, max_value=5),
                         min_size=2, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_grr_reverse_correspondence(self, sizes, weights):
        assert verify_reverse_correspondence(
            make_grr(weights), packets_from(sizes)
        )

    @given(
        sizes=sizes_strategy,
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_randomized_cfq_reverse_correspondence(self, sizes, seed, n):
        assert verify_reverse_correspondence(
            SeededRandomFQ(n, seed=seed), packets_from(sizes)
        )


class TestTheorem32Fairness:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=1500),
                       min_size=20, max_size=400),
        quanta=st.lists(st.integers(min_value=1500, max_value=4000),
                        min_size=2, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_byte_deviation_bounded(self, sizes, quanta):
        """After K rounds, |sent_i - K*quantum_i| <= Max + 2*Quantum."""
        from repro.core.fairness import srr_fairness_report

        report = srr_fairness_report(SRR(quanta), packets_from(sizes))
        assert report.within_bound


class TestTheorem41LogicalReception:
    @given(
        sizes=sizes_strategy,
        quanta=quanta_strategy,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_fifo_under_random_interleaving(self, sizes, quanta, seed):
        packets = packets_from(sizes)
        algorithm = SRR(quanta)
        channels = stripe_sequence(TransformedLoadSharer(algorithm), packets)
        receiver = Resequencer(SRR(quanta))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)

        rng = random.Random(seed)
        positions = [0] * len(channels)
        remaining = sum(len(c) for c in channels)
        while remaining:
            candidates = [
                i for i in range(len(channels))
                if positions[i] < len(channels[i])
            ]
            channel = rng.choice(candidates)
            receiver.push(channel, channels[channel][positions[channel]])
            positions[channel] += 1
            remaining -= 1
        assert delivered == [p.seq for p in packets]

    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=50, deadline=None)
    def test_nothing_left_buffered(self, sizes, quanta):
        packets = packets_from(sizes)
        algorithm = SRR(quanta)
        channels = stripe_sequence(TransformedLoadSharer(algorithm), packets)
        receiver = Resequencer(SRR(quanta))
        for index, stream in enumerate(channels):
            for packet in stream:
                receiver.push(index, packet)
        assert receiver.buffered == 0
        assert receiver.delivered == len(packets)


class TestArrivalOrderInvariance:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=1000),
                       min_size=5, max_size=120),
        quanta=st.lists(st.integers(min_value=500, max_value=1500),
                        min_size=2, max_size=3),
        seeds=st.tuples(st.integers(0, 999), st.integers(0, 999)),
        drop_index=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_marker_receiver_delivery_independent_of_interleaving(
        self, sizes, quanta, seeds, drop_index
    ):
        """Even WITH a loss, the SRRReceiver's delivered sequence is a
        function of the per-channel streams only — physical arrival
        interleavings cannot change it."""
        from repro.core.packet import is_marker
        from repro.core.striper import ListPort, MarkerPolicy, Striper

        algorithm = SRR(quanta)
        ports = [ListPort() for _ in quanta]
        striper = Striper(
            TransformedLoadSharer(algorithm), ports,
            MarkerPolicy(interval_rounds=1, initial_markers=False),
        )
        for packet in packets_from(sizes):
            striper.submit(packet)
        streams = [list(p.sent) for p in ports]
        # drop one data packet from channel 0 (if it has that many)
        data0 = [p for p in streams[0] if not is_marker(p)]
        if data0 and drop_index < len(data0):
            victim = data0[drop_index]
            streams[0] = [p for p in streams[0] if p is not victim]

        def run(seed):
            receiver = SRRReceiver(SRR(quanta))
            delivered = []
            receiver.on_deliver = lambda p: delivered.append(p.seq)
            rng = random.Random(seed)
            positions = [0] * len(streams)
            remaining = sum(len(s) for s in streams)
            while remaining:
                candidates = [
                    i for i in range(len(streams))
                    if positions[i] < len(streams[i])
                ]
                channel = rng.choice(candidates)
                receiver.push(channel, streams[channel][positions[channel]])
                positions[channel] += 1
                remaining -= 1
            return delivered

        assert run(seeds[0]) == run(seeds[1])
