"""Property-based tests (hypothesis) for the core theorems.

These drive the actual implementations over randomly generated algorithm
configurations, packet-size sequences, and arrival interleavings, checking
the paper's formal claims as executable invariants:

* Theorem 3.1 — the reverse-correspondence construction holds for every
  CFQ algorithm and input.
* Theorem 3.2 / Lemma 3.3 — the SRR byte-fairness bound.
* Theorem 4.1 — logical reception restores FIFO under any loss-free
  arrival interleaving.
* Arrival-order invariance — the logical delivery order depends only on
  the per-channel streams, never on cross-channel arrival timing.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.markers import SRRReceiver
from repro.core.packet import Packet
from repro.core.resequencer import Resequencer
from repro.core.schemes import SeededRandomFQ
from repro.core.srr import SRR, make_grr, make_rr
from repro.core.transform import (
    TransformedLoadSharer,
    bytes_per_channel,
    stripe_sequence,
    verify_reverse_correspondence,
)

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=2000), min_size=1, max_size=200
)
quanta_strategy = st.lists(
    st.integers(min_value=1, max_value=3000), min_size=2, max_size=5
)


def packets_from(sizes):
    return [Packet(size=s, seq=i) for i, s in enumerate(sizes)]


class TestTheorem31:
    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=120, deadline=None)
    def test_srr_reverse_correspondence(self, sizes, quanta):
        assert verify_reverse_correspondence(SRR(quanta), packets_from(sizes))

    @given(sizes=sizes_strategy, n=st.integers(min_value=2, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_rr_reverse_correspondence(self, sizes, n):
        assert verify_reverse_correspondence(make_rr(n), packets_from(sizes))

    @given(
        sizes=sizes_strategy,
        weights=st.lists(st.integers(min_value=1, max_value=5),
                         min_size=2, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_grr_reverse_correspondence(self, sizes, weights):
        assert verify_reverse_correspondence(
            make_grr(weights), packets_from(sizes)
        )

    @given(
        sizes=sizes_strategy,
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_randomized_cfq_reverse_correspondence(self, sizes, seed, n):
        assert verify_reverse_correspondence(
            SeededRandomFQ(n, seed=seed), packets_from(sizes)
        )


class TestTheorem32Fairness:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=1500),
                       min_size=20, max_size=400),
        quanta=st.lists(st.integers(min_value=1500, max_value=4000),
                        min_size=2, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_byte_deviation_bounded(self, sizes, quanta):
        """After K rounds, |sent_i - K*quantum_i| <= Max + 2*Quantum."""
        from repro.core.fairness import srr_fairness_report

        report = srr_fairness_report(SRR(quanta), packets_from(sizes))
        assert report.within_bound


class TestTheorem41LogicalReception:
    @given(
        sizes=sizes_strategy,
        quanta=quanta_strategy,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_fifo_under_random_interleaving(self, sizes, quanta, seed):
        packets = packets_from(sizes)
        algorithm = SRR(quanta)
        channels = stripe_sequence(TransformedLoadSharer(algorithm), packets)
        receiver = Resequencer(SRR(quanta))
        delivered = []
        receiver.on_deliver = lambda p: delivered.append(p.seq)

        rng = random.Random(seed)
        positions = [0] * len(channels)
        remaining = sum(len(c) for c in channels)
        while remaining:
            candidates = [
                i for i in range(len(channels))
                if positions[i] < len(channels[i])
            ]
            channel = rng.choice(candidates)
            receiver.push(channel, channels[channel][positions[channel]])
            positions[channel] += 1
            remaining -= 1
        assert delivered == [p.seq for p in packets]

    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=50, deadline=None)
    def test_nothing_left_buffered(self, sizes, quanta):
        packets = packets_from(sizes)
        algorithm = SRR(quanta)
        channels = stripe_sequence(TransformedLoadSharer(algorithm), packets)
        receiver = Resequencer(SRR(quanta))
        for index, stream in enumerate(channels):
            for packet in stream:
                receiver.push(index, packet)
        assert receiver.buffered == 0
        assert receiver.delivered == len(packets)


class TestArrivalOrderInvariance:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=1000),
                       min_size=5, max_size=120),
        quanta=st.lists(st.integers(min_value=500, max_value=1500),
                        min_size=2, max_size=3),
        seeds=st.tuples(st.integers(0, 999), st.integers(0, 999)),
        drop_index=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_marker_receiver_delivery_independent_of_interleaving(
        self, sizes, quanta, seeds, drop_index
    ):
        """Even WITH a loss, the SRRReceiver's delivered sequence is a
        function of the per-channel streams only — physical arrival
        interleavings cannot change it."""
        from repro.core.packet import is_marker
        from repro.core.striper import ListPort, MarkerPolicy, Striper

        algorithm = SRR(quanta)
        ports = [ListPort() for _ in quanta]
        striper = Striper(
            TransformedLoadSharer(algorithm), ports,
            MarkerPolicy(interval_rounds=1, initial_markers=False),
        )
        for packet in packets_from(sizes):
            striper.submit(packet)
        streams = [list(p.sent) for p in ports]
        # drop one data packet from channel 0 (if it has that many)
        data0 = [p for p in streams[0] if not is_marker(p)]
        if data0 and drop_index < len(data0):
            victim = data0[drop_index]
            streams[0] = [p for p in streams[0] if p is not victim]

        def run(seed):
            receiver = SRRReceiver(SRR(quanta))
            delivered = []
            receiver.on_deliver = lambda p: delivered.append(p.seq)
            rng = random.Random(seed)
            positions = [0] * len(streams)
            remaining = sum(len(s) for s in streams)
            while remaining:
                candidates = [
                    i for i in range(len(streams))
                    if positions[i] < len(streams[i])
                ]
                channel = rng.choice(candidates)
                receiver.push(channel, streams[channel][positions[channel]])
                positions[channel] += 1
                remaining -= 1
            return delivered

        assert run(seeds[0]) == run(seeds[1])


@st.composite
def fabric_workloads(draw):
    """(flow quanta, per-flow prefilled packet queues) for the fabric."""
    quanta = draw(quanta_strategy)
    queues = []
    uid = 0
    for index in range(len(quanta)):
        sizes = draw(
            st.lists(st.integers(min_value=1, max_value=2000),
                     min_size=1, max_size=40)
        )
        queues.append(
            [Packet(size=s, seq=(uid + k), flow=f"q{index}")
             for k, s in enumerate(sizes)]
        )
        uid += len(sizes)
    return quanta, queues


class TestComposedFQxSRR:
    """Transform duality extended to the composed FQ x SRR pipeline.

    A :class:`~repro.transport.fabric.FabricScheduler` (weighted DRR
    across flows) feeding the SRR striping kernel is the two-level
    construction of Section 3 applied twice.  Three claims must survive
    the composition:

    * the fabric's service order is exactly the reference DRR driver's
      (:func:`~repro.core.cfq.fq_service_order_noncausal`) over the same
      prefilled queues;
    * the fabric-merged stream preserves every flow's submission order
      and still satisfies the Theorem 3.1 reverse correspondence when
      striped by a :class:`TransformedLoadSharer`;
    * snapshotting *both* layers mid-stream and restoring them into
      fresh instances replays the identical remaining sent order and
      per-channel streams.
    """

    @staticmethod
    def _prefilled(quanta, queues, downstream, ready):
        """A FabricScheduler with one flow per queue, all packets queued.

        Flows are registered (and first-submitted) in queue-index order,
        so the fabric's activation ring matches the reference driver's
        queue indexing; ``quantum_bytes=1.0`` makes each flow's quantum
        equal its weight, i.e. the reference algorithm's quantum.
        """
        from repro.transport.fabric import FabricScheduler, FlowTable

        table = FlowTable(quantum_bytes=1.0)
        fabric = FabricScheduler(
            table, flow_buffer_packets=None, auto_register=False
        )
        for index, quantum in enumerate(quanta):
            table.register(f"q{index}", weight=float(quantum))
        fabric.bind(downstream, ready=ready)
        for index, queue in enumerate(queues):
            for packet in queue:
                assert fabric.submit(f"q{index}", packet)
        return fabric, table

    def _drain(self, quanta, queues):
        out = []
        gate = [False]
        fabric, _ = self._prefilled(
            quanta, queues, out.append, lambda: gate[0]
        )
        gate[0] = True
        fabric.pump()
        return out

    @given(workload=fabric_workloads())
    @settings(max_examples=80, deadline=None)
    def test_fabric_service_order_matches_reference_drr(self, workload):
        """The event-driven fabric == the offline non-causal DRR driver."""
        from repro.core.cfq import fq_service_order_noncausal
        from repro.core.srr import DRR

        quanta, queues = workload
        merged = self._drain(quanta, queues)
        reference = fq_service_order_noncausal(
            DRR([float(q) for q in quanta]), queues
        )
        assert [p.uid for p in merged] == [p.uid for p in reference]

    @given(workload=fabric_workloads(), channel_quanta=quanta_strategy)
    @settings(max_examples=60, deadline=None)
    def test_theorem31_holds_on_fabric_merged_stream(
        self, workload, channel_quanta
    ):
        """Per-flow FIFO + reverse correspondence survive the composition."""
        quanta, queues = workload
        merged = self._drain(quanta, queues)
        assert len(merged) == sum(len(q) for q in queues)
        for index, queue in enumerate(queues):
            flow_uids = [p.uid for p in merged if p.flow == f"q{index}"]
            assert flow_uids == [p.uid for p in queue], (
                f"flow q{index} left the fabric out of submission order"
            )
        assert verify_reverse_correspondence(SRR(channel_quanta), merged)

    @given(
        workload=fabric_workloads(),
        channel_quanta=quanta_strategy,
        cut=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=40, deadline=None)
    def test_composed_snapshot_restore_replays_identically(
        self, workload, channel_quanta, cut
    ):
        """Fabric + SRR kernel snapshots taken mid-stream round-trip."""
        quanta, queues = workload
        total = sum(len(q) for q in queues)
        k = cut % total

        def run(sharer, budget, sent, channels):
            def downstream(packet):
                channel = sharer.choose(packet)
                sharer.notify_sent(channel, packet)
                channels[channel].append(packet)
                sent.append(packet)
                budget[0] -= 1

            return downstream

        # First execution: pause after exactly k packets, snapshot both
        # layers, then run to completion.
        sharer = TransformedLoadSharer(SRR(channel_quanta))
        sent, channels = [], [[] for _ in range(sharer.n_channels)]
        budget = [0]
        fabric, _ = self._prefilled(
            quanta, queues, run(sharer, budget, sent, channels),
            lambda: budget[0] > 0,
        )
        budget[0] = k
        fabric.pump()
        assert len(sent) == k
        fabric_snap = fabric.snapshot()
        kernel_snap = sharer.state
        prefix_lens = [len(c) for c in channels]
        budget[0] = total
        fabric.pump()
        assert len(sent) == total

        # Second execution: rebuild the same queues, fast-forward past the
        # k already-serviced packets, restore both snapshots, drain.
        sharer2 = TransformedLoadSharer(SRR(channel_quanta))
        sent2, channels2 = [], [[] for _ in range(sharer2.n_channels)]
        budget2 = [0]
        fabric2, table2 = self._prefilled(
            quanta, queues, run(sharer2, budget2, sent2, channels2),
            lambda: budget2[0] > 0,
        )
        for packet in sent[:k]:
            flow = table2[packet.flow]
            assert flow.queue.popleft() is packet
            if not flow.queue:
                flow.active = False
        fabric2.restore(fabric_snap)
        sharer2.state = kernel_snap
        budget2[0] = total
        fabric2.pump()

        assert [p.uid for p in sent2] == [p.uid for p in sent[k:]]
        for index, stream in enumerate(channels2):
            expected = channels[index][prefix_lens[index]:]
            assert [p.uid for p in stream] == [p.uid for p in expected], (
                f"channel {index} replayed a different stream after restore"
            )
