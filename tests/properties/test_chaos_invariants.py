"""Chaos property tests: randomized fault schedules vs the protocol's claims.

The executable form of Theorem 5.1 and section 5's reliability discussion.
For every randomized :class:`~repro.sim.faults.FaultPlan` schedule whose
faults cease (guaranteed by construction):

* **exactly-once** — no application message is delivered twice (the
  protocol adds no sequence numbers, so this is a machinery property);
* **conservation** — every data packet that physically survives to the
  receiver is eventually delivered (the striping machinery itself loses
  nothing; in particular nothing sent on a fault-free surviving channel
  is lost);
* **quasi-FIFO resumption** — once every fault has ceased and one
  worst-case one-way delay (propagation + a full transmit queue + the
  largest injected delay spike) has elapsed, deliveries are in strictly
  increasing sequence order again.

``duplicate`` faults inherently violate exactly-once (the paper's headline
constraint is *no extra headers*, hence no dedup), so they are exercised
separately with a bounded-duplication assertion.

The channel-revival acceptance test (failed channel rejoins via probe +
RESET and carries its quantum share again) lives at the session layer in
``tests/transport/test_lifecycle.py``.
"""

from typing import List, Tuple

import pytest

from repro.core.packet import is_marker
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import (
    EXACTLY_ONCE_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
    persistent_loss_schedule,
)
from repro.transport.endpoint import (
    ChannelLifecycleManager,
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.fast_path import FastChannelPort

N_CHANNELS = 3
MESSAGE_BYTES = 500
BANDWIDTH_BPS = 8e6
PROP_DELAY = 0.5e-3
QUEUE_LIMIT = 64
CEASE_BY = 0.8
#: upper bound of the delay_spike magnitude sampler in repro.sim.faults
MAX_DELAY_SPIKE = 0.03


def one_way_delay_bound() -> float:
    """Worst-case one-way delay of a chaos-rig channel.

    A packet admitted at fault-cease time can sit behind a full transmit
    queue, then propagate, then suffer the largest injected delay spike;
    everything in flight when the last fault ends has arrived this much
    later (the "one one-way delay" of Theorem 5.1).
    """
    transmission = MESSAGE_BYTES * 8 / BANDWIDTH_BPS
    return (QUEUE_LIMIT + 1) * transmission + PROP_DELAY + MAX_DELAY_SPIKE


class ChaosRig:
    """Striped endpoint pipelines over raw simulated channels."""

    def __init__(
        self,
        sim: Simulator,
        n_channels: int = N_CHANNELS,
        detector: ChannelLifecycleManager = None,
        reliability: str = "quasi_fifo",
    ) -> None:
        self.sim = sim
        self.channels = [
            Channel(
                sim,
                bandwidth_bps=BANDWIDTH_BPS,
                prop_delay=PROP_DELAY,
                queue_limit=QUEUE_LIMIT,
                name=f"ch{i}",
            )
            for i in range(n_channels)
        ]
        self.ports = [FastChannelPort(ch) for ch in self.channels]
        quanta = [float(MESSAGE_BYTES)] * n_channels
        self.sender = StripeSenderPipeline(
            self.ports,
            SRR(quanta),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=sim,
            marker_keepalive_s=0.02,
            reliability=reliability,
        )
        self.deliveries: List[Tuple[float, int]] = []
        self.receiver = StripeReceiverPipeline(
            n_channels,
            SRR(quanta),
            mode="marker",
            on_message=lambda p: self.deliveries.append((sim.now, p.seq)),
            failure_detector=detector,
            sim=sim,
            reliability=reliability,
            # The reverse ack path: one propagation delay back to the
            # sender (loss-free — forward-path loss is the hard part;
            # ack loss only delays recovery).
            send_ack=lambda sack: sim.schedule(
                PROP_DELAY, self.sender.on_ack, sack
            ),
        )
        #: data packets that physically survived to the receiver (recorded
        #: downstream of any installed fault injector)
        self.arrived: List[int] = []
        for index, channel in enumerate(self.channels):
            inner = self.receiver.channel_handler(index)

            def handler(packet, inner=inner):
                # Raw bytes are corrupted-marker wire images from the
                # corrupt_deliver fault; the pipeline counts-and-drops.
                if not is_marker(packet) and not isinstance(packet, bytes):
                    self.arrived.append(packet.seq)
                inner(packet)

            channel.on_deliver = handler
            channel.on_space = self.sender._pump

    def start_source(self, interval: float, stop_at: float) -> None:
        sim = self.sim

        def tick() -> None:
            if sim.now >= stop_at:
                return
            # Closed loop: honor the ARQ window's backpressure (a no-op
            # in the default modes, where can_submit is always True).
            if self.sender.can_submit():
                self.sender.send_message(MESSAGE_BYTES)
            sim.schedule(interval, tick)

        sim.schedule_at(0.0, tick)

    def delivered_seqs(self) -> List[int]:
        return [seq for _, seq in self.deliveries]


def run_chaos(sim: Simulator, schedule: FaultSchedule, seed: int) -> tuple:
    rig = ChaosRig(sim)
    settle_at = schedule.last_fault_end + one_way_delay_bound()
    source_stop = settle_at + 0.1
    # ~42% aggregate utilization: pauses and backlogs can always drain.
    rig.start_source(interval=0.4e-3, stop_at=source_stop)
    installed = schedule.install(sim, rig.channels, seed=seed)
    sim.run(until=source_stop + 0.3)
    return rig, installed, settle_at


@pytest.mark.parametrize("seed", range(30))
def test_chaos_exactly_once_invariants(sim, seed):
    """>= 25 randomized schedules: no dup, no machinery loss, FIFO resumes."""
    plan = FaultPlan(
        n_channels=N_CHANNELS,
        cease_by=CEASE_BY,
        kinds=EXACTLY_ONCE_KINDS,
        max_events=6,
    )
    schedule = plan.schedule(seed)
    rig, installed, settle_at = run_chaos(sim, schedule, seed)

    delivered = rig.delivered_seqs()
    assert len(delivered) > 500, "chaos run barely delivered anything"

    # Invariant 1: exactly-once — no duplicate delivery, ever.
    assert len(delivered) == len(set(delivered)), (
        f"duplicate deliveries under schedule {list(schedule)}"
    )

    # Invariant 2: conservation — everything that physically arrived was
    # delivered (so nothing sent on a fault-free surviving channel is
    # lost: those channels drop nothing by construction).
    assert set(delivered) == set(rig.arrived)
    assert rig.sender.backlog == 0

    # Invariant 3 (Theorem 5.1): quasi-FIFO resumed within one one-way
    # delay of the last fault ceasing.
    tail = [seq for t, seq in rig.deliveries if t > settle_at]
    assert len(tail) > 100, "no post-settle traffic to check FIFO against"
    assert tail == sorted(tail), (
        f"out-of-order delivery after faults ceased + one-way delay "
        f"(schedule {list(schedule)})"
    )
    assert all(a < b for a, b in zip(tail, tail[1:]))


@pytest.mark.parametrize("seed", range(5))
def test_chaos_bounded_duplication(sim, seed):
    """Duplication faults: extra deliveries never exceed injected copies."""
    plan = FaultPlan(
        n_channels=N_CHANNELS,
        cease_by=CEASE_BY,
        kinds=("duplicate",),
        max_events=4,
    )
    schedule = plan.schedule(seed)
    rig, installed, settle_at = run_chaos(sim, schedule, seed)

    delivered = rig.delivered_seqs()
    excess = len(delivered) - len(set(delivered))
    assert installed.duplicates_injected > 0
    assert 0 < excess <= installed.duplicates_injected
    # Conservation still holds as a set property.
    assert set(delivered) == set(rig.arrived)
    # And once the fault ceases, the tail is duplicate-free and ordered.
    tail = [seq for t, seq in rig.deliveries if t > settle_at]
    assert tail == sorted(set(tail))


def test_chaos_mixed_kinds_all_channels(sim):
    """A dense schedule hitting every channel with several kinds at once."""
    events = [
        FaultEvent(time=0.10, channel=0, kind="crash", duration=0.10),
        FaultEvent(time=0.12, channel=1, kind="pause", duration=0.15),
        FaultEvent(time=0.15, channel=2, kind="reorder", duration=0.10,
                   magnitude=5.0),
        FaultEvent(time=0.30, channel=0, kind="marker_loss", duration=0.20),
        FaultEvent(time=0.35, channel=1, kind="delay_spike", duration=0.10,
                   magnitude=0.02),
        FaultEvent(time=0.40, channel=2, kind="corrupt", duration=0.10,
                   magnitude=0.8),
    ]
    schedule = FaultSchedule(events)
    rig, installed, settle_at = run_chaos(sim, schedule, seed=99)
    assert installed.total_faulted > 0
    delivered = rig.delivered_seqs()
    assert len(delivered) == len(set(delivered))
    assert set(delivered) == set(rig.arrived)
    tail = [seq for t, seq in rig.deliveries if t > settle_at]
    assert tail == sorted(tail) and len(tail) > 100


# ---------------------------------------------------------------------- #
# persistent loss: the regime where retransmission is load-bearing

PERSISTENT_P = 0.10
#: Theorem 3.2 envelope for equal quanta: any two channels' transmitted
#: byte counts differ by at most Max + 2 * Quantum over any interval.
FAIRNESS_ENVELOPE = MESSAGE_BYTES + 2 * MESSAGE_BYTES


def run_persistent_loss(sim, *, reliability: str, seed: int, p=PERSISTENT_P):
    """10% loss on every channel for the whole send window (never ceases
    while data flows, unlike the FaultPlan schedules)."""
    rig = ChaosRig(sim, reliability=reliability)
    stop_at = 0.8
    rig.start_source(interval=0.4e-3, stop_at=stop_at)
    schedule = persistent_loss_schedule(
        N_CHANNELS, p, start=0.0, until=stop_at
    )
    installed = schedule.install(sim, rig.channels, seed=seed)
    # Long drain: retransmissions of late losses need several RTOs.
    sim.run(until=stop_at + 2.0)
    return rig, installed


@pytest.mark.parametrize("seed", range(5))
def test_persistent_loss_reliable_exactly_once_in_order(sim, seed):
    """Reliable mode: every submitted packet arrives exactly once, in FIFO
    order, despite 10% forward loss that never stops during the run —
    and retransmission load stays inside the SRR fairness envelope."""
    rig, installed = run_persistent_loss(sim, reliability="reliable",
                                         seed=seed)
    assert installed.crash_drops > 50, "the loss regime never materialized"

    submitted = rig.sender.messages_submitted
    delivered = rig.delivered_seqs()
    assert submitted > 1000
    assert delivered == sorted(set(delivered)), "not exactly-once in order"
    assert set(delivered) == set(range(submitted)), (
        f"lost {submitted - len(set(delivered))} of {submitted} messages"
    )
    arq = rig.sender.reliable
    assert arq.stats.retransmissions > 0
    assert not arq.unacked and not arq.backlog

    # Theorem 3.2, with recovery traffic included: total per-channel data
    # bytes (first transmissions + retransmissions, recorded at the
    # ports) stay within Max + 2*Quantum of each other, so ARQ repair
    # cannot silently unbalance the bundle.
    per_channel = [port.data_bytes_sent for port in rig.sender.ports]
    assert max(per_channel) - min(per_channel) <= FAIRNESS_ENVELOPE, (
        f"retransmissions broke striping fairness: {per_channel}"
    )


@pytest.mark.parametrize("seed", range(3))
def test_persistent_loss_best_effort_conservation(sim, seed):
    """Best-effort mode under the same schedule: losses are real (no
    recovery), but the machinery still never duplicates or invents
    packets, and everything that physically arrived is delivered."""
    rig, installed = run_persistent_loss(sim, reliability="best_effort",
                                         seed=seed)
    assert installed.crash_drops > 50

    submitted = rig.sender.messages_submitted
    delivered = rig.delivered_seqs()
    assert len(delivered) == len(set(delivered)), "duplicate delivery"
    assert set(delivered) == set(rig.arrived), "machinery lost an arrival"
    assert set(delivered) <= set(range(submitted))
    assert len(delivered) < submitted, "loss did not materialize"


def test_persistent_loss_reliable_rejoins_fifo_after_loss_ceases(sim):
    """Loss for the first half of the run only: the reliable stream is
    seamless across the transition (no gap, no reordering artifacts)."""
    rig = ChaosRig(sim, reliability="reliable")
    rig.start_source(interval=0.4e-3, stop_at=1.0)
    schedule = persistent_loss_schedule(N_CHANNELS, 0.15, until=0.5)
    schedule.install(sim, rig.channels, seed=1)
    sim.run(until=2.5)
    delivered = rig.delivered_seqs()
    assert delivered == list(range(rig.sender.messages_submitted))


# ---------------------------------------------------------------------- #
# duplicated markers (satellite of the reliability PR: idempotent
# marker adoption, driven through the fault injector)


def test_duplicated_markers_are_adopted_once(sim):
    """A duplication window covering all traffic: every re-delivered
    marker is dropped by the receiver's (round, deficit) memo, and the
    stream stays exactly-once / conservative / quasi-FIFO."""
    schedule = FaultSchedule(
        [
            FaultEvent(time=0.1, channel=c, kind="duplicate",
                       duration=0.3, magnitude=1.0)
            for c in range(N_CHANNELS)
        ]
    )
    rig, installed, settle_at = run_chaos(sim, schedule, seed=5)
    assert installed.duplicates_injected > 100

    stats = rig.receiver.resequencer.stats
    assert stats.duplicate_markers > 0, "no duplicated marker was dropped"
    # Markers were deduplicated; duplicated *data* is still delivered
    # twice (best-effort mode has no sequence numbers, by design).
    delivered = rig.delivered_seqs()
    excess = len(delivered) - len(set(delivered))
    assert excess <= installed.duplicates_injected
    assert set(delivered) == set(rig.arrived)
    tail = [seq for t, seq in rig.deliveries if t > settle_at]
    assert tail == sorted(set(tail))


def test_chaos_lifecycle_survives_permanent_death_then_revival(sim):
    """A channel dies outright; the lifecycle detector writes it off, and
    when it heals the revival path re-admits it without a session."""
    detector = ChannelLifecycleManager(
        sim, silence_threshold=0.1, check_interval=0.02,
        revival_arrivals=2, min_down_time=0.05,
    )
    rig = ChaosRig(sim, detector=detector)
    heal_at = 1.0
    schedule = FaultSchedule(
        [FaultEvent(time=0.3, channel=1, kind="crash", duration=heal_at - 0.3)]
    )
    rig.start_source(interval=0.4e-3, stop_at=1.6)
    schedule.install(sim, rig.channels, seed=0)
    sim.run(until=1.8)

    assert detector.failures_reported == [1]
    assert detector.revivals_reported == [1]
    assert detector.channel_state(1) == detector.REVIVED
    # Delivery kept flowing while channel 1 was dark...
    mid = [seq for t, seq in rig.deliveries if 0.6 < t < 1.0]
    assert len(mid) > 100
    # ...and after revival the tail is in order and conservation holds.
    tail = [seq for t, seq in rig.deliveries if t > heal_at + 0.2]
    assert len(tail) > 100 and tail == sorted(tail)
    delivered = rig.delivered_seqs()
    assert len(delivered) == len(set(delivered))
    assert set(delivered) == set(rig.arrived)
