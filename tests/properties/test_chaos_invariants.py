"""Chaos property tests: randomized fault schedules vs the protocol's claims.

The executable form of Theorem 5.1 and section 5's reliability discussion.
For every randomized :class:`~repro.sim.faults.FaultPlan` schedule whose
faults cease (guaranteed by construction):

* **exactly-once** — no application message is delivered twice (the
  protocol adds no sequence numbers, so this is a machinery property);
* **conservation** — every data packet that physically survives to the
  receiver is eventually delivered (the striping machinery itself loses
  nothing; in particular nothing sent on a fault-free surviving channel
  is lost);
* **quasi-FIFO resumption** — once every fault has ceased and one
  worst-case one-way delay (propagation + a full transmit queue + the
  largest injected delay spike) has elapsed, deliveries are in strictly
  increasing sequence order again.

``duplicate`` faults inherently violate exactly-once (the paper's headline
constraint is *no extra headers*, hence no dedup), so they are exercised
separately with a bounded-duplication assertion.

The channel-revival acceptance test (failed channel rejoins via probe +
RESET and carries its quantum share again) lives at the session layer in
``tests/transport/test_lifecycle.py``.
"""

from typing import List, Tuple

import pytest

from repro.core.packet import is_marker
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import (
    EXACTLY_ONCE_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
)
from repro.transport.endpoint import (
    ChannelLifecycleManager,
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.fast_path import FastChannelPort

N_CHANNELS = 3
MESSAGE_BYTES = 500
BANDWIDTH_BPS = 8e6
PROP_DELAY = 0.5e-3
QUEUE_LIMIT = 64
CEASE_BY = 0.8
#: upper bound of the delay_spike magnitude sampler in repro.sim.faults
MAX_DELAY_SPIKE = 0.03


def one_way_delay_bound() -> float:
    """Worst-case one-way delay of a chaos-rig channel.

    A packet admitted at fault-cease time can sit behind a full transmit
    queue, then propagate, then suffer the largest injected delay spike;
    everything in flight when the last fault ends has arrived this much
    later (the "one one-way delay" of Theorem 5.1).
    """
    transmission = MESSAGE_BYTES * 8 / BANDWIDTH_BPS
    return (QUEUE_LIMIT + 1) * transmission + PROP_DELAY + MAX_DELAY_SPIKE


class ChaosRig:
    """Striped endpoint pipelines over raw simulated channels."""

    def __init__(
        self,
        sim: Simulator,
        n_channels: int = N_CHANNELS,
        detector: ChannelLifecycleManager = None,
    ) -> None:
        self.sim = sim
        self.channels = [
            Channel(
                sim,
                bandwidth_bps=BANDWIDTH_BPS,
                prop_delay=PROP_DELAY,
                queue_limit=QUEUE_LIMIT,
                name=f"ch{i}",
            )
            for i in range(n_channels)
        ]
        self.ports = [FastChannelPort(ch) for ch in self.channels]
        quanta = [float(MESSAGE_BYTES)] * n_channels
        self.sender = StripeSenderPipeline(
            self.ports,
            SRR(quanta),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=sim,
            marker_keepalive_s=0.02,
        )
        self.deliveries: List[Tuple[float, int]] = []
        self.receiver = StripeReceiverPipeline(
            n_channels,
            SRR(quanta),
            mode="marker",
            on_message=lambda p: self.deliveries.append((sim.now, p.seq)),
            failure_detector=detector,
            sim=sim,
        )
        #: data packets that physically survived to the receiver (recorded
        #: downstream of any installed fault injector)
        self.arrived: List[int] = []
        for index, channel in enumerate(self.channels):
            inner = self.receiver.channel_handler(index)

            def handler(packet, inner=inner):
                if not is_marker(packet):
                    self.arrived.append(packet.seq)
                inner(packet)

            channel.on_deliver = handler
            channel.on_space = self.sender._pump

    def start_source(self, interval: float, stop_at: float) -> None:
        sim = self.sim

        def tick() -> None:
            if sim.now >= stop_at:
                return
            self.sender.send_message(MESSAGE_BYTES)
            sim.schedule(interval, tick)

        sim.schedule_at(0.0, tick)

    def delivered_seqs(self) -> List[int]:
        return [seq for _, seq in self.deliveries]


def run_chaos(sim: Simulator, schedule: FaultSchedule, seed: int) -> tuple:
    rig = ChaosRig(sim)
    settle_at = schedule.last_fault_end + one_way_delay_bound()
    source_stop = settle_at + 0.1
    # ~42% aggregate utilization: pauses and backlogs can always drain.
    rig.start_source(interval=0.4e-3, stop_at=source_stop)
    installed = schedule.install(sim, rig.channels, seed=seed)
    sim.run(until=source_stop + 0.3)
    return rig, installed, settle_at


@pytest.mark.parametrize("seed", range(30))
def test_chaos_exactly_once_invariants(sim, seed):
    """>= 25 randomized schedules: no dup, no machinery loss, FIFO resumes."""
    plan = FaultPlan(
        n_channels=N_CHANNELS,
        cease_by=CEASE_BY,
        kinds=EXACTLY_ONCE_KINDS,
        max_events=6,
    )
    schedule = plan.schedule(seed)
    rig, installed, settle_at = run_chaos(sim, schedule, seed)

    delivered = rig.delivered_seqs()
    assert len(delivered) > 500, "chaos run barely delivered anything"

    # Invariant 1: exactly-once — no duplicate delivery, ever.
    assert len(delivered) == len(set(delivered)), (
        f"duplicate deliveries under schedule {list(schedule)}"
    )

    # Invariant 2: conservation — everything that physically arrived was
    # delivered (so nothing sent on a fault-free surviving channel is
    # lost: those channels drop nothing by construction).
    assert set(delivered) == set(rig.arrived)
    assert rig.sender.backlog == 0

    # Invariant 3 (Theorem 5.1): quasi-FIFO resumed within one one-way
    # delay of the last fault ceasing.
    tail = [seq for t, seq in rig.deliveries if t > settle_at]
    assert len(tail) > 100, "no post-settle traffic to check FIFO against"
    assert tail == sorted(tail), (
        f"out-of-order delivery after faults ceased + one-way delay "
        f"(schedule {list(schedule)})"
    )
    assert all(a < b for a, b in zip(tail, tail[1:]))


@pytest.mark.parametrize("seed", range(5))
def test_chaos_bounded_duplication(sim, seed):
    """Duplication faults: extra deliveries never exceed injected copies."""
    plan = FaultPlan(
        n_channels=N_CHANNELS,
        cease_by=CEASE_BY,
        kinds=("duplicate",),
        max_events=4,
    )
    schedule = plan.schedule(seed)
    rig, installed, settle_at = run_chaos(sim, schedule, seed)

    delivered = rig.delivered_seqs()
    excess = len(delivered) - len(set(delivered))
    assert installed.duplicates_injected > 0
    assert 0 < excess <= installed.duplicates_injected
    # Conservation still holds as a set property.
    assert set(delivered) == set(rig.arrived)
    # And once the fault ceases, the tail is duplicate-free and ordered.
    tail = [seq for t, seq in rig.deliveries if t > settle_at]
    assert tail == sorted(set(tail))


def test_chaos_mixed_kinds_all_channels(sim):
    """A dense schedule hitting every channel with several kinds at once."""
    events = [
        FaultEvent(time=0.10, channel=0, kind="crash", duration=0.10),
        FaultEvent(time=0.12, channel=1, kind="pause", duration=0.15),
        FaultEvent(time=0.15, channel=2, kind="reorder", duration=0.10,
                   magnitude=5.0),
        FaultEvent(time=0.30, channel=0, kind="marker_loss", duration=0.20),
        FaultEvent(time=0.35, channel=1, kind="delay_spike", duration=0.10,
                   magnitude=0.02),
        FaultEvent(time=0.40, channel=2, kind="corrupt", duration=0.10,
                   magnitude=0.8),
    ]
    schedule = FaultSchedule(events)
    rig, installed, settle_at = run_chaos(sim, schedule, seed=99)
    assert installed.total_faulted > 0
    delivered = rig.delivered_seqs()
    assert len(delivered) == len(set(delivered))
    assert set(delivered) == set(rig.arrived)
    tail = [seq for t, seq in rig.deliveries if t > settle_at]
    assert tail == sorted(tail) and len(tail) > 100


def test_chaos_lifecycle_survives_permanent_death_then_revival(sim):
    """A channel dies outright; the lifecycle detector writes it off, and
    when it heals the revival path re-admits it without a session."""
    detector = ChannelLifecycleManager(
        sim, silence_threshold=0.1, check_interval=0.02,
        revival_arrivals=2, min_down_time=0.05,
    )
    rig = ChaosRig(sim, detector=detector)
    heal_at = 1.0
    schedule = FaultSchedule(
        [FaultEvent(time=0.3, channel=1, kind="crash", duration=heal_at - 0.3)]
    )
    rig.start_source(interval=0.4e-3, stop_at=1.6)
    schedule.install(sim, rig.channels, seed=0)
    sim.run(until=1.8)

    assert detector.failures_reported == [1]
    assert detector.revivals_reported == [1]
    assert detector.channel_state(1) == detector.REVIVED
    # Delivery kept flowing while channel 1 was dark...
    mid = [seq for t, seq in rig.deliveries if 0.6 < t < 1.0]
    assert len(mid) > 100
    # ...and after revival the tail is in order and conservation holds.
    tail = [seq for t, seq in rig.deliveries if t > heal_at + 0.2]
    assert len(tail) > 100 and tail == sorted(tail)
    delivered = rig.delivered_seqs()
    assert len(delivered) == len(set(delivered))
    assert set(delivered) == set(rig.arrived)
