"""Hypothesis invariants on the SRR state machine itself.

These pin down the algebra the proofs rest on:

* the serving channel's DC is always positive and at most one quantum
  above its carried surplus;
* any channel's DC never falls below ``-(Max - 1)`` beyond its own
  overdraw, and never exceeds its quantum while not being served —
  i.e. the state space is bounded (what makes implicit numbers finite);
* round numbers are non-decreasing and grow by at most one per
  channel visit;
* sender and receiver mirror states stay equal in lockstep (the exact
  statement behind logical reception).
"""

from hypothesis import given, settings, strategies as st

from repro.core.markers import SRRReceiver
from repro.core.packet import Packet
from repro.core.srr import SRR

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=2000), min_size=1, max_size=300
)
quanta_strategy = st.lists(
    st.integers(min_value=1, max_value=3000), min_size=2, max_size=5
)


class TestStateBounds:
    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=150, deadline=None)
    def test_serving_channel_dc_positive(self, sizes, quanta):
        srr = SRR(quanta)
        state = srr.initial_state()
        for size in sizes:
            assert state.dc[state.ptr] > 0  # the core invariant
            state = srr.update(state, size)

    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=150, deadline=None)
    def test_dc_bounded(self, sizes, quanta):
        """DCs stay in (-Max, Quantum_i + surplus]: bounded state space."""
        srr = SRR(quanta)
        state = srr.initial_state()
        max_size = max(sizes)
        for size in sizes:
            state = srr.update(state, size)
            for index, dc in enumerate(state.dc):
                # overdraw is bounded by the largest packet
                assert dc > -max_size
                # idle channels hold at most their quantum plus no more
                # than one pending quantum's worth of credit
                assert dc <= srr.quanta[index] + 0  # quantum ceiling

    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=100, deadline=None)
    def test_rounds_monotone(self, sizes, quanta):
        srr = SRR(quanta)
        state = srr.initial_state()
        previous = state.round_number
        for size in sizes:
            state = srr.update(state, size)
            assert state.round_number >= previous
            previous = state.round_number

    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=100, deadline=None)
    def test_pointer_in_range(self, sizes, quanta):
        srr = SRR(quanta)
        state = srr.initial_state()
        for size in sizes:
            state = srr.update(state, size)
            assert 0 <= state.ptr < len(quanta)


class TestSenderReceiverLockstep:
    @given(sizes=sizes_strategy, quanta=quanta_strategy)
    @settings(max_examples=100, deadline=None)
    def test_mirror_equals_sender_state(self, sizes, quanta):
        """Feed the receiver each packet on exactly the channel the sender
        state dictates; after every packet the receiver's mirror matches
        the sender's (ptr, G, dc)."""
        srr_s = SRR(quanta)
        srr_r = SRR(quanta)
        state = srr_s.initial_state()
        receiver = SRRReceiver(srr_r)
        for index, size in enumerate(sizes):
            channel = srr_s.select(state)
            receiver.push(channel, Packet(size, seq=index))
            state = srr_s.update(state, size)
            mirror = receiver.mirror_state()
            assert mirror["ptr"] == state.ptr
            assert mirror["G"] == state.round_number
            # dc comparison: the receiver keeps pending-quantum lazily, so
            # reconcile by adding the pending quantum where flagged
            for i in range(len(quanta)):
                dc = mirror["dc"][i]
                if mirror["pending"][i]:
                    dc += srr_r.quanta[i]
                # sender dc for non-current channels likewise carries the
                # next quantum only at visit time; align both views:
                sender_dc = state.dc[i]
                if i == state.ptr:
                    assert abs(dc - sender_dc) < 1e-9
