"""Property tests: the fast path is observably identical to the reference.

The burst-batched fast path (slot-free engine scheduling, channel transmit
bursts, batched striper pump) must be a pure wall-clock optimization.
These tests randomize the testbed configuration — channel count, link
rates, loss, marker cadence, resequencing mode — and assert that:

* the ``(time, seq)`` delivery record list is identical between the
  reference UDP/IP path and the fast path (clean *and* lossy runs);
* markers arrive at the receiver in identical numbers;
* results do not depend on how the engine pops events: ``run(batch=True)``
  and plain ``run()`` produce the same records, so nothing downstream
  keys off ``events_processed`` or event-granularity side effects.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator

DURATION_S = 0.4


def _run(config: SocketTestbedConfig, fast: bool, batch: bool):
    """Build and run one testbed; return its observable outcome."""
    config = dataclasses.replace(config, fast=fast)
    sim = Simulator()
    testbed = build_socket_testbed(sim, config)
    if any(rate > 0 for rate in config.loss_rates):
        testbed.stop_losses_at(DURATION_S / 2)
    sim.run(until=DURATION_S, batch=batch)
    records = [(d.time, d.seq) for d in testbed.deliveries]
    stats = getattr(testbed.receiver.resequencer, "stats", None)
    markers = stats.markers_received if stats is not None else 0
    return records, markers


def _config(n, link_mbps, loss_rate, interval, position, mode, backlog, seed):
    return SocketTestbedConfig(
        n_channels=n,
        link_mbps=(link_mbps,),
        prop_delay_s=tuple(0.5e-3 + 0.1e-3 * i for i in range(n)),
        loss_rates=(loss_rate,),
        message_bytes=1000,
        marker_interval_rounds=interval,
        marker_position=position,
        mode=mode,
        source_backlog=backlog,
        seed=seed,
    )


class TestFastPathEquivalence:
    @given(
        n=st.sampled_from([2, 3, 4, 8]),
        link_mbps=st.sampled_from([5.0, 10.0, 45.0]),
        interval=st.sampled_from([1, 2, 4]),
        position=st.integers(min_value=0, max_value=7),
        backlog=st.sampled_from([2, 8, 32]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_clean_runs_identical(
        self, n, link_mbps, interval, position, backlog, seed
    ):
        """Loss-free: bit-identical (time, seq) records and marker counts."""
        config = _config(
            n, link_mbps, 0.0, interval, position, "marker", backlog, seed
        )
        ref_records, ref_markers = _run(config, fast=False, batch=False)
        fast_records, fast_markers = _run(config, fast=True, batch=True)
        assert ref_records  # the run actually delivered something
        assert fast_records == ref_records
        assert fast_markers == ref_markers

    @given(
        n=st.sampled_from([2, 4]),
        loss_rate=st.sampled_from([0.1, 0.4, 0.8]),
        interval=st.sampled_from([1, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_lossy_runs_identical(self, n, loss_rate, interval, seed):
        """Under loss (stopping mid-run) the records still match exactly:
        lossy channels run the classic per-packet path, and the RNG draw
        order is preserved, so every loss hits the same packet."""
        config = _config(n, 10.0, loss_rate, interval, 0, "marker", 16, seed)
        ref_records, ref_markers = _run(config, fast=False, batch=False)
        fast_records, fast_markers = _run(config, fast=True, batch=True)
        assert fast_records == ref_records
        assert fast_markers == ref_markers

    @given(
        mode=st.sampled_from(["plain", "none"]),
        n=st.sampled_from([2, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_other_resequencing_modes_identical(self, mode, n, seed):
        config = _config(n, 10.0, 0.0, 1, 0, mode, 16, seed)
        ref_records, _ = _run(config, fast=False, batch=False)
        fast_records, _ = _run(config, fast=True, batch=True)
        assert fast_records == ref_records

    @given(
        n=st.sampled_from([2, 4]),
        loss_rate=st.sampled_from([0.0, 0.4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_results_independent_of_event_batching(self, n, loss_rate, seed):
        """run(batch=True) vs run(): same records on BOTH paths, even
        though events_processed differs — no observable state may depend
        on event pop granularity."""
        config = _config(n, 10.0, loss_rate, 1, 0, "marker", 16, seed)
        for fast in (False, True):
            plain, _ = _run(config, fast=fast, batch=False)
            batched, _ = _run(config, fast=fast, batch=True)
            assert batched == plain
