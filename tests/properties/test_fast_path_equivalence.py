"""Property tests: the fast path is observably identical to the reference.

The burst-batched fast path (slot-free engine scheduling, channel transmit
bursts, batched striper pump) must be a pure wall-clock optimization.
These tests randomize the testbed configuration — channel count, link
rates, loss, marker cadence, resequencing mode — and assert that:

* the ``(time, seq)`` delivery record list is identical between the
  reference UDP/IP path and the fast path (clean *and* lossy runs);
* markers arrive at the receiver in identical numbers;
* results do not depend on how the engine pops events: ``run(batch=True)``
  and plain ``run()`` produce the same records, so nothing downstream
  keys off ``events_processed`` or event-granularity side effects.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.socket_harness import (
    SocketTestbedConfig,
    build_socket_testbed,
)
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultEvent,
    FaultSchedule,
    persistent_loss_schedule,
)

DURATION_S = 0.4

#: ARQ options the reliable-mode runs use on BOTH paths — the same
#: BDP-sized window / coarse ack cadence the benchmark's reliable row
#: runs with (see ``RELIABLE_BENCH_OPTIONS`` in
#: ``repro.experiments.sim_bench``), so the equivalence property is
#: exercised in the configuration whose speedup the gate asserts.
RELIABLE_OPTIONS = {
    "sender": {"window_packets": 512},
    "receiver": {"ack_every": 16},
}


def _run(config: SocketTestbedConfig, fast: bool, batch: bool):
    """Build and run one testbed; return its observable outcome."""
    config = dataclasses.replace(config, fast=fast)
    sim = Simulator()
    testbed = build_socket_testbed(sim, config)
    if any(rate > 0 for rate in config.loss_rates):
        testbed.stop_losses_at(DURATION_S / 2)
    sim.run(until=DURATION_S, batch=batch)
    records = [(d.time, d.seq) for d in testbed.deliveries]
    stats = getattr(testbed.receiver.resequencer, "stats", None)
    markers = stats.markers_received if stats is not None else 0
    return records, markers


def _config(n, link_mbps, loss_rate, interval, position, mode, backlog, seed):
    return SocketTestbedConfig(
        n_channels=n,
        link_mbps=(link_mbps,),
        prop_delay_s=tuple(0.5e-3 + 0.1e-3 * i for i in range(n)),
        loss_rates=(loss_rate,),
        message_bytes=1000,
        marker_interval_rounds=interval,
        marker_position=position,
        mode=mode,
        source_backlog=backlog,
        seed=seed,
    )


class TestFastPathEquivalence:
    @given(
        n=st.sampled_from([2, 3, 4, 8]),
        link_mbps=st.sampled_from([5.0, 10.0, 45.0]),
        interval=st.sampled_from([1, 2, 4]),
        position=st.integers(min_value=0, max_value=7),
        backlog=st.sampled_from([2, 8, 32]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_clean_runs_identical(
        self, n, link_mbps, interval, position, backlog, seed
    ):
        """Loss-free: bit-identical (time, seq) records and marker counts."""
        config = _config(
            n, link_mbps, 0.0, interval, position, "marker", backlog, seed
        )
        ref_records, ref_markers = _run(config, fast=False, batch=False)
        fast_records, fast_markers = _run(config, fast=True, batch=True)
        assert ref_records  # the run actually delivered something
        assert fast_records == ref_records
        assert fast_markers == ref_markers

    @given(
        n=st.sampled_from([2, 4]),
        loss_rate=st.sampled_from([0.1, 0.4, 0.8]),
        interval=st.sampled_from([1, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_lossy_runs_identical(self, n, loss_rate, interval, seed):
        """Under loss (stopping mid-run) the records still match exactly:
        lossy channels run the classic per-packet path, and the RNG draw
        order is preserved, so every loss hits the same packet."""
        config = _config(n, 10.0, loss_rate, interval, 0, "marker", 16, seed)
        ref_records, ref_markers = _run(config, fast=False, batch=False)
        fast_records, fast_markers = _run(config, fast=True, batch=True)
        assert fast_records == ref_records
        assert fast_markers == ref_markers

    @given(
        mode=st.sampled_from(["plain", "none"]),
        n=st.sampled_from([2, 4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_other_resequencing_modes_identical(self, mode, n, seed):
        config = _config(n, 10.0, 0.0, 1, 0, mode, 16, seed)
        ref_records, _ = _run(config, fast=False, batch=False)
        fast_records, _ = _run(config, fast=True, batch=True)
        assert fast_records == ref_records

    @given(
        n=st.sampled_from([2, 4]),
        loss_rate=st.sampled_from([0.0, 0.4]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_results_independent_of_event_batching(self, n, loss_rate, seed):
        """run(batch=True) vs run(): same records on BOTH paths, even
        though events_processed differs — no observable state may depend
        on event pop granularity."""
        config = _config(n, 10.0, loss_rate, 1, 0, "marker", 16, seed)
        for fast in (False, True):
            plain, _ = _run(config, fast=fast, batch=False)
            batched, _ = _run(config, fast=fast, batch=True)
            assert batched == plain


def _mode_config(mode, loss=0.0, n=4, seed=0, backlog=None):
    return SocketTestbedConfig(
        n_channels=n,
        link_mbps=(10.0,),
        prop_delay_s=tuple(0.5e-3 + 0.1e-3 * i for i in range(n)),
        loss_rates=(loss,),
        message_bytes=1000,
        marker_interval_rounds=1,
        source_backlog=backlog if backlog is not None else 4 * n,
        seed=seed,
        reliability=mode,
        reliability_options=RELIABLE_OPTIONS if mode == "reliable" else None,
    )


def _run_with_faults(config, fast, schedule, fault_seed):
    """One run with an optional fault schedule installed post-build.

    The schedule must be installed *after* the testbed claims each
    channel's ``on_deliver`` (the injector interposes on the current
    handler), and with the same seed on both runs of a pair — the
    injector RNG is per-channel-seeded, so the fault draws replay
    identically and ref/fast equivalence stays well-defined.
    """
    config = dataclasses.replace(config, fast=fast)
    sim = Simulator()
    testbed = build_socket_testbed(sim, config)
    installed = None
    if schedule is not None:
        installed = schedule.install(
            sim, [link.ab for link in testbed.links], seed=fault_seed
        )
    sim.run(until=DURATION_S, batch=fast)
    records = [(d.time, d.seq) for d in testbed.deliveries]
    return records, installed, testbed


class TestReliabilityModeEquivalence:
    """All three reliability modes ride the fast path bit-identically.

    These mirror the per-mode benchmark rows (``run_reliability_mode_bench``)
    as deterministic regression tests: clean and persistently-lossy runs,
    plus reliable-mode recovery through a channel crash — each asserting
    the fast path's ``(time, seq)`` records equal the reference path's.
    """

    MODES = ("best_effort", "quasi_fifo", "reliable")

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", [0, 11])
    def test_clean_runs_identical(self, mode, seed):
        config = _mode_config(mode, seed=seed)
        ref_records, _, _ = _run_with_faults(config, False, None, 0)
        fast_records, _, _ = _run_with_faults(config, True, None, 0)
        assert ref_records
        assert fast_records == ref_records

    @pytest.mark.parametrize("mode", MODES)
    def test_lossy_runs_identical(self, mode):
        """10% Bernoulli loss for the whole run, never stopped — the
        regime the benchmark's per-mode equivalence column runs in."""
        config = _mode_config(mode, loss=0.1, seed=3)
        ref_records, _, _ = _run_with_faults(config, False, None, 0)
        fast_records, _, _ = _run_with_faults(config, True, None, 0)
        assert ref_records
        assert fast_records == ref_records

    def test_reliable_lossy_delivers_exactly_once_in_order(self):
        config = _mode_config("reliable", loss=0.1, seed=3)
        records, _, testbed = _run_with_faults(config, True, None, 0)
        seqs = [seq for _, seq in records]
        assert seqs == list(range(len(seqs)))
        arq = testbed.sender.reliable
        assert arq is not None and arq.stats.retransmissions > 0

    @pytest.mark.parametrize("seed", [0, 5])
    def test_reliable_channel_crash_identical(self, seed):
        """Reliable mode under 10% loss plus a one-channel crash: both
        paths recover identically (the injector forces faulted channels
        onto the classic per-packet pump on both runs, and the crash
        drops replay from the same per-channel RNG)."""
        config = _mode_config("reliable", loss=0.1, seed=seed)
        schedule = FaultSchedule(
            [FaultEvent(time=0.10, channel=0, kind="crash", duration=0.10)]
        )
        ref_records, ref_faults, _ = _run_with_faults(
            config, False, schedule, seed
        )
        fast_records, fast_faults, _ = _run_with_faults(
            config, True, schedule, seed
        )
        assert ref_records
        assert fast_records == ref_records
        assert ref_faults.crash_drops > 0
        assert fast_faults.crash_drops == ref_faults.crash_drops
        seqs = [seq for _, seq in fast_records]
        assert seqs == list(range(len(seqs)))

    def test_reliable_persistent_loss_schedule_identical(self):
        """PR-5's persistent-loss family (fractional crashes on every
        channel for half the run) through the fast path."""
        config = _mode_config("reliable", seed=7)
        schedule = persistent_loss_schedule(
            config.n_channels, 0.1, start=0.0, until=DURATION_S / 2
        )
        ref_records, _, ref_bed = _run_with_faults(config, False, schedule, 2)
        fast_records, _, fast_bed = _run_with_faults(config, True, schedule, 2)
        assert ref_records
        assert fast_records == ref_records
        for testbed in (ref_bed, fast_bed):
            arq = testbed.sender.reliable
            assert arq is not None and arq.stats.retransmissions > 0


class TestFastPathCounters:
    """The fast sender's ``stats()`` counters actually count."""

    def test_batched_pump_counters_nonzero(self):
        config = _mode_config("quasi_fifo", seed=1)
        _, _, testbed = _run_with_faults(config, True, None, 0)
        stats = testbed.sender.stats()
        assert stats["batched_pumps"] > 0
        assert stats["batched_packets"] > stats["batched_pumps"]
        assert "burst_submits" not in stats  # no ARQ in quasi_fifo mode

    def test_reliable_arq_counters_nonzero(self):
        config = _mode_config("reliable", seed=1)
        _, _, testbed = _run_with_faults(config, True, None, 0)
        stats = testbed.sender.stats()
        assert stats["batched_pumps"] > 0
        assert stats["batched_packets"] > 0
        assert stats["burst_submits"] > 0
        assert stats["sack_scans"] > 0
        arq = testbed.sender.reliable
        assert arq.stats.acked > 0

    @pytest.mark.parametrize("fast", [False, True])
    def test_marker_free_pool_recycles_at_delivery(self, fast):
        """The PacketPool contract for marker-free receive: direct
        reception holds no reference past the delivery callback, so
        release-at-delivery actually recycles — after warm-up the pool
        serves (nearly) every acquire from the free list."""
        config = SocketTestbedConfig(
            n_channels=2,
            link_mbps=(10.0,),
            prop_delay_s=(0.5e-3,) * 2,
            loss_rates=(0.0,),
            message_bytes=1000,
            discipline="sprinklers",
            discipline_options={"initial_share": 1.0},
            packet_pool=True,
            fast=fast,
            seed=3,
        )
        sim = Simulator()
        testbed = build_socket_testbed(sim, config)
        sim.run(until=DURATION_S)
        pool = testbed.pool
        assert pool is not None
        assert len(testbed.deliveries) > 100
        assert pool.reused > 0
        assert pool.released >= pool.reused
        # Steady state: the free list absorbs the whole flight window, so
        # fresh constructions stop — reuse dominates allocation.
        assert pool.reused > pool.allocated
