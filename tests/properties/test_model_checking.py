"""Exhaustive small-model checking of the protocol theorems.

Hypothesis samples the space; these tests *enumerate* it completely at
small sizes, which is as close to model checking as pure pytest gets:

* Theorem 5.1 over ALL loss patterns of up to 3 losses in a 24-packet run
  (every subset of early positions, on both channels, data and markers
  alike): after losses stop and markers flow, the delivery tail is FIFO.
* Theorem 4.1 over ALL arrival interleavings of two 4-packet channels
  (C(8,4) = 70 interleavings): identical, exact FIFO delivery.
* C1 never violated: across all those runs, the receiver never delivers a
  higher-round packet before a lower-round one *after recovery*.
"""

import itertools

from repro.core.markers import SRRReceiver
from repro.core.packet import Packet
from repro.core.resequencer import Resequencer
from repro.core.srr import SRR
from repro.core.striper import ListPort, MarkerPolicy, Striper
from repro.core.transform import TransformedLoadSharer, stripe_sequence


def build_streams(n_packets=24, quantum=100.0, interval=1):
    algorithm = SRR([quantum, quantum])
    ports = [ListPort(), ListPort()]
    striper = Striper(
        TransformedLoadSharer(algorithm), ports,
        MarkerPolicy(interval_rounds=interval, initial_markers=False),
    )
    for i in range(n_packets):
        striper.submit(Packet(int(quantum), seq=i))
    return [list(p.sent) for p in ports]


def deliver(streams, quantum=100.0):
    receiver = SRRReceiver(SRR([quantum, quantum]))
    out = []
    receiver.on_deliver = lambda p: out.append(p.seq)
    longest = max(len(s) for s in streams)
    for i in range(longest):
        for channel, stream in enumerate(streams):
            if i < len(stream):
                receiver.push(channel, stream[i])
    return out


class TestTheorem51Exhaustive:
    def test_all_single_losses(self):
        """Drop each individual wire item (data or marker) in turn."""
        base = build_streams()
        total_items = sum(len(s) for s in base)
        checked = 0
        for channel in range(2):
            for position in range(len(base[channel])):
                streams = [list(s) for s in base]
                del streams[channel][position]
                delivered = deliver(streams)
                tail = delivered[-8:]
                assert tail == sorted(tail), (
                    f"tail not FIFO after dropping item {position} "
                    f"on channel {channel}: {delivered}"
                )
                checked += 1
        assert checked == total_items

    def test_all_double_losses_in_prefix(self):
        """Every pair of drops among the first 10 items of each channel."""
        base = build_streams()
        prefix = 10
        positions = [
            (c, i) for c in range(2) for i in range(min(prefix, len(base[c])))
        ]
        count = 0
        for (c1, i1), (c2, i2) in itertools.combinations(positions, 2):
            streams = [list(s) for s in base]
            # delete the higher index first within the same channel
            for channel, index in sorted([(c1, i1), (c2, i2)],
                                         key=lambda t: (t[0], -t[1])):
                del streams[channel][index]
            delivered = deliver(streams)
            tail = delivered[-8:]
            assert tail == sorted(tail), (
                f"tail not FIFO after dropping {(c1, i1)} and {(c2, i2)}: "
                f"{delivered}"
            )
            count += 1
        assert count == len(positions) * (len(positions) - 1) // 2

    def test_all_triple_losses_small_prefix(self):
        base = build_streams()
        prefix = 6
        positions = [(c, i) for c in range(2) for i in range(prefix)]
        for combo in itertools.combinations(positions, 3):
            streams = [list(s) for s in base]
            for channel, index in sorted(combo, key=lambda t: (t[0], -t[1])):
                del streams[channel][index]
            delivered = deliver(streams)
            tail = delivered[-8:]
            assert tail == sorted(tail)

    def test_no_duplicates_ever(self):
        """Across all single-loss runs: every packet delivered at most once."""
        base = build_streams()
        for channel in range(2):
            for position in range(len(base[channel])):
                streams = [list(s) for s in base]
                del streams[channel][position]
                delivered = deliver(streams)
                assert len(delivered) == len(set(delivered))


class TestTheorem41Exhaustive:
    def test_all_interleavings_of_small_channels(self):
        """Every merge order of two 4-packet channel streams delivers the
        identical FIFO sequence."""
        packets = [Packet(100, seq=i) for i in range(8)]
        channels = stripe_sequence(
            TransformedLoadSharer(SRR([100.0, 100.0])), packets
        )
        lengths = [len(c) for c in channels]
        assert lengths == [4, 4]
        # every way to choose the positions of channel-0 pushes among 8
        reference = None
        count = 0
        for mask in itertools.combinations(range(8), 4):
            receiver = Resequencer(SRR([100.0, 100.0]))
            out = []
            receiver.on_deliver = lambda p: out.append(p.seq)
            cursors = [0, 0]
            mask_set = set(mask)
            for step in range(8):
                channel = 0 if step in mask_set else 1
                receiver.push(channel, channels[channel][cursors[channel]])
                cursors[channel] += 1
            if reference is None:
                reference = out
            assert out == reference == list(range(8))
            count += 1
        assert count == 70

    def test_all_interleavings_variable_sizes(self):
        """Same exhaustiveness with non-uniform packet sizes (the channel
        split is no longer 4/4; enumerate whatever it is)."""
        sizes = [150, 90, 300, 60, 210, 120, 80, 260]
        packets = [Packet(s, seq=i) for i, s in enumerate(sizes)]
        channels = stripe_sequence(
            TransformedLoadSharer(SRR([250.0, 250.0])), packets
        )
        n0, n1 = len(channels[0]), len(channels[1])
        total = n0 + n1
        for mask in itertools.combinations(range(total), n0):
            receiver = Resequencer(SRR([250.0, 250.0]))
            out = []
            receiver.on_deliver = lambda p: out.append(p.seq)
            cursors = [0, 0]
            mask_set = set(mask)
            for step in range(total):
                channel = 0 if step in mask_set else 1
                receiver.push(channel, channels[channel][cursors[channel]])
                cursors[channel] += 1
            assert out == list(range(8))
