"""Property-based tests for the extension subsystems.

* Fragmentation: cut-to-fit + reassembly is lossless and order-preserving
  for arbitrary packet sizes, MTUs, and quanta.
* Reset protocol: after any interleaving of data and a reset, the
  delivered stream is the concatenation of an old-epoch prefix and a
  new-epoch stream, each in order.
* Credit invariant: under arbitrary schedules, in-flight never exceeds the
  advertised buffer.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.packet import Packet
from repro.core.resequencer import Resequencer
from repro.core.srr import SRR
from repro.core.striper import ListPort
from repro.core.transform import TransformedLoadSharer
from repro.net.fragmentation import (
    FRAGMENT_HEADER_BYTES,
    FragmentingStriper,
    Reassembler,
)


class TestFragmentationRoundtrip:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=20000),
                       min_size=1, max_size=60),
        mtus=st.lists(st.integers(min_value=100, max_value=9000),
                      min_size=2, max_size=4),
        quanta=st.lists(st.integers(min_value=500, max_value=5000),
                        min_size=2, max_size=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=80, deadline=None)
    def test_lossless_ordered_reassembly(self, sizes, mtus, quanta, seed):
        n = min(len(mtus), len(quanta))
        mtus, quanta = mtus[:n], [float(q) for q in quanta[:n]]
        ports = [ListPort() for _ in range(n)]
        striper = FragmentingStriper(
            TransformedLoadSharer(SRR(quanta)), ports, mtus=mtus
        )
        packets = [Packet(size=s, seq=i) for i, s in enumerate(sizes)]
        for packet in packets:
            striper.submit(packet)

        # byte conservation on the wire
        fragments = [f for port in ports for f in port.sent]
        assert sum(f.payload_bytes for f in fragments) == sum(sizes)
        assert all(f.size <= max(mtus) for f in fragments)

        # reassembly through logical reception under a random interleaving
        rebuilt = []
        reassembler = Reassembler(on_packet=rebuilt.append)
        receiver = Resequencer(SRR(quanta), on_deliver=reassembler.push)
        rng = random.Random(seed)
        positions = [0] * n
        remaining = sum(len(p.sent) for p in ports)
        while remaining:
            candidates = [
                i for i in range(n) if positions[i] < len(ports[i].sent)
            ]
            channel = rng.choice(candidates)
            receiver.push(channel, ports[channel].sent[positions[channel]])
            positions[channel] += 1
            remaining -= 1
        assert [p.seq for p in rebuilt] == [p.seq for p in packets]
        assert reassembler.packets_aborted == 0

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=20000),
                       min_size=1, max_size=40),
        mtu=st.integers(min_value=64, max_value=2000),
    )
    @settings(max_examples=60, deadline=None)
    def test_fragment_sizes_respect_channel_mtu(self, sizes, mtu):
        ports = [ListPort(), ListPort()]
        striper = FragmentingStriper(
            TransformedLoadSharer(SRR([1500.0, 1500.0])), ports,
            mtus=[mtu, 2 * mtu],
        )
        for i, size in enumerate(sizes):
            striper.submit(Packet(size=size, seq=i))
        for fragment in ports[0].sent:
            assert fragment.size <= mtu
        for fragment in ports[1].sent:
            assert fragment.size <= 2 * mtu


class TestResetStreamProperty:
    @given(
        before=st.integers(min_value=0, max_value=40),
        after=st.integers(min_value=1, max_value=40),
        quanta=st.lists(st.integers(min_value=100, max_value=1000),
                        min_size=2, max_size=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_delivery_is_prefix_then_new_epoch(self, before, after, quanta, seed):
        from repro.core.session import (
            StripeConfig,
            StripeReceiverSession,
            StripeSenderSession,
        )
        from repro.sim.engine import Simulator

        sim = Simulator()
        n = len(quanta)
        ports = [ListPort() for _ in range(n)]
        config = StripeConfig(quanta=tuple(float(q) for q in quanta))
        sender = StripeSenderSession(sim, ports, config)
        delivered = []
        receiver = StripeReceiverSession(
            sim, n, config,
            send_control=lambda p: sender.on_control(p),
            on_deliver=lambda p: delivered.append(p.seq),
        )
        for i in range(before):
            sender.submit(Packet(100, seq=i))
        sender.initiate_reset()
        for i in range(before, before + after):
            sender.submit(Packet(100, seq=i))

        # random channel-preserving interleaving of everything
        rng = random.Random(seed)
        positions = [0] * n
        total = sum(len(p.sent) for p in ports)
        while total:
            candidates = [
                i for i in range(n) if positions[i] < len(ports[i].sent)
            ]
            channel = rng.choice(candidates)
            receiver.push(channel, ports[channel].sent[positions[channel]])
            positions[channel] += 1
            total -= 1
        # flush post-ack traffic (reset completion re-pumps the sender)
        for channel in range(n):
            for packet in ports[channel].sent[positions[channel]:]:
                receiver.push(channel, packet)

        # Delivered = some subset of old epoch (in order, values < before)
        # followed by the complete new epoch (in order).
        new_epoch = [s for s in delivered if s >= before]
        old_epoch = [s for s in delivered if s < before]
        assert old_epoch == sorted(old_epoch)
        assert new_epoch == sorted(new_epoch)
        assert new_epoch == list(range(before, before + after))
        # no interleaving: every old-epoch delivery precedes the new epoch
        if old_epoch and new_epoch:
            last_old = max(i for i, s in enumerate(delivered) if s < before)
            first_new = min(i for i, s in enumerate(delivered) if s >= before)
            assert last_old < first_new


class TestCreditScheduleProperty:
    @given(
        schedule=st.lists(st.sampled_from(["send", "consume"]),
                          min_size=1, max_size=500),
        buffer_size=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=80, deadline=None)
    def test_inflight_never_exceeds_buffer(self, schedule, buffer_size):
        from repro.transport.credit import CreditReceiver, CreditSender

        sender = CreditSender(1, initial_credit=buffer_size)
        receiver = CreditReceiver(
            1, buffer_size, send_credit=lambda c, l: sender.on_credit(c, l)
        )
        in_buffer = 0
        for action in schedule:
            if action == "send" and sender.can_send(0):
                sender.on_send(0)
                in_buffer += 1
            elif action == "consume" and in_buffer:
                in_buffer -= 1
                receiver.on_consumed(0)
            assert in_buffer <= buffer_size
