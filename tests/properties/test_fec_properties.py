"""FEC / hybrid recovery properties over the full striped pipeline.

The executable form of the erasure-coding claims:

* **pure fec** — at modest random loss, `reliability="fec"` delivers an
  in-order, duplicate-free, bit-exact stream with *zero* retransmissions
  (there is no ARQ mounted to retransmit) and non-trivial local
  reconstruction;
* **hybrid** — FEC in front of the PR-5 ARQ backstop preserves ARQ's
  exactly-once / complete / in-order guarantee under persistent loss plus
  a full channel crash, while repairing most holes locally (never more
  retransmissions than pure ARQ under the same regime);
* **fairness** — parity rides the SRR kernel like any data, so total
  per-channel bytes (data + parity + retransmissions) stay inside the
  Theorem 3.2 envelope.

The rig mirrors ``test_chaos_invariants.ChaosRig``: endpoint pipelines
over raw simulated channels with the fault injector layered on top.
"""

from typing import List, Tuple

import pytest

from repro.core.packet import is_marker, is_parity
from repro.core.srr import SRR
from repro.core.striper import MarkerPolicy
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultEvent,
    FaultSchedule,
    burst_loss_schedule,
    persistent_loss_schedule,
)
from repro.transport.endpoint import (
    StripeReceiverPipeline,
    StripeSenderPipeline,
)
from repro.transport.fast_path import FastChannelPort

N_CHANNELS = 3
MESSAGE_BYTES = 500
PAYLOAD_BYTES = 64
BANDWIDTH_BPS = 8e6
PROP_DELAY = 0.5e-3
QUEUE_LIMIT = 64
#: Theorem 3.2 envelope for equal quanta (Max + 2 * Quantum).
FAIRNESS_ENVELOPE = MESSAGE_BYTES + 2 * MESSAGE_BYTES


def payload_for(seq: int) -> bytes:
    """Deterministic per-message payload (reconstruction fidelity probe)."""
    return seq.to_bytes(4, "big") * (PAYLOAD_BYTES // 4)


class FecRig:
    """Striped endpoint pipelines over raw channels, FEC modes enabled."""

    def __init__(
        self,
        sim: Simulator,
        *,
        reliability: str,
        k: int = 6,
        m: int = 2,
        group_timeout_s: float = 0.25,
    ) -> None:
        self.sim = sim
        self.channels = [
            Channel(
                sim,
                bandwidth_bps=BANDWIDTH_BPS,
                prop_delay=PROP_DELAY,
                queue_limit=QUEUE_LIMIT,
                name=f"ch{i}",
            )
            for i in range(N_CHANNELS)
        ]
        self.ports = [FastChannelPort(ch) for ch in self.channels]
        quanta = [float(MESSAGE_BYTES)] * N_CHANNELS
        sender_options = {"fec": {"k": k, "m": m}}
        if reliability in ("reliable", "hybrid"):
            # A roomy ARQ window so the closed-loop source keeps offering
            # traffic across a crash window instead of stalling on
            # backpressure (the stall itself is covered elsewhere).
            sender_options["window_packets"] = 256
        self.sender = StripeSenderPipeline(
            self.ports,
            SRR(quanta),
            marker_policy=MarkerPolicy(interval_rounds=1),
            sim=sim,
            marker_keepalive_s=0.02,
            reliability=reliability,
            reliability_options=sender_options,
        )
        self.deliveries: List[Tuple[float, int]] = []
        self.payloads: dict = {}

        def on_message(packet):
            self.deliveries.append((sim.now, packet.seq))
            self.payloads[packet.seq] = packet.payload

        self.receiver = StripeReceiverPipeline(
            N_CHANNELS,
            SRR(quanta),
            mode="marker",
            on_message=on_message,
            sim=sim,
            reliability=reliability,
            send_ack=lambda sack: sim.schedule(
                PROP_DELAY, self.sender.on_ack, sack
            ),
            reliability_options={
                "fec": {"k": k, "m": m, "group_timeout_s": group_timeout_s}
            },
        )
        self.arrived: List[int] = []
        self.parity_arrived = 0
        for index, channel in enumerate(self.channels):
            inner = self.receiver.channel_handler(index)

            def handler(packet, inner=inner):
                if is_parity(packet):
                    self.parity_arrived += 1
                elif not is_marker(packet):
                    self.arrived.append(packet.seq)
                inner(packet)

            channel.on_deliver = handler
            channel.on_space = self.sender._pump

    def start_source(self, interval: float, stop_at: float) -> None:
        sim = self.sim

        def tick() -> None:
            if sim.now >= stop_at:
                self.sender.flush()  # seal the trailing partial group
                return
            if self.sender.can_submit():
                self.sender.send_message(
                    MESSAGE_BYTES,
                    payload=payload_for(self.sender.messages_submitted),
                )
            sim.schedule(interval, tick)

        sim.schedule_at(0.0, tick)

    def delivered_seqs(self) -> List[int]:
        return [seq for _, seq in self.deliveries]


def run_rig(sim, schedule, *, reliability, seed, drain=2.0, **rig_kw):
    rig = FecRig(sim, reliability=reliability, **rig_kw)
    stop_at = 0.8
    rig.start_source(interval=0.4e-3, stop_at=stop_at)
    installed = schedule.install(sim, rig.channels, seed=seed)
    sim.run(until=stop_at + drain)
    return rig, installed


# --------------------------------------------------------------------- #
# acceptance: pure fec at 5% random loss — zero retransmissions


@pytest.mark.parametrize("seed", range(10))
def test_pure_fec_random_loss_recovers_without_retransmission(sim, seed):
    """k=6, m=3 at 5% i.i.d. loss: in-order, duplicate-free, bit-exact
    delivery with no ARQ in the stack at all — recovery is purely local."""
    schedule = persistent_loss_schedule(N_CHANNELS, 0.05, until=0.8)
    rig, installed = run_rig(
        sim, schedule, reliability="fec", seed=seed, k=6, m=3,
    )
    assert installed.crash_drops > 20, "the loss regime never materialized"
    # Structurally zero retransmissions: no reliability layer is mounted.
    assert rig.sender.reliable is None
    assert rig.receiver.reliable is None

    submitted = rig.sender.messages_submitted
    delivered = rig.delivered_seqs()
    assert submitted > 1000
    assert delivered == sorted(set(delivered)), "not in order / not unique"
    assert len(delivered) >= 0.98 * submitted, (
        f"recovered only {len(delivered)} of {submitted}"
    )
    fec = rig.receiver.fec
    assert fec.stats.reconstructed > 0, "loss never exercised the decoder"
    # Bit-exact reconstruction: every delivered payload matches what the
    # source attached, including the reconstructed ones.
    for seq in delivered:
        assert rig.payloads[seq] == payload_for(seq), f"payload of {seq}"
    assert rig.sender.fec.stats.groups_sealed > 0
    assert fec.stats.parity_packets > 0


@pytest.mark.parametrize("seed", range(3))
def test_pure_fec_lossless_is_transparent(sim, seed):
    """No loss: FEC adds parity overhead but changes nothing observable."""
    schedule = FaultSchedule([])
    rig, _ = run_rig(sim, schedule, reliability="fec", seed=seed)
    submitted = rig.sender.messages_submitted
    assert rig.delivered_seqs() == list(range(submitted))
    assert rig.receiver.fec.stats.reconstructed == 0
    assert rig.receiver.fec.stats.skipped == 0


@pytest.mark.parametrize("seed", range(3))
def test_pure_fec_under_burst_loss_stays_in_order(sim, seed):
    """Gilbert–Elliott bursts (satellite fault kind): striping decorrelates
    a one-channel burst across many groups, so most positions still
    recover; whatever cannot is gap-skipped without breaking order."""
    schedule = burst_loss_schedule(N_CHANNELS, 0.15, until=0.8)
    rig, installed = run_rig(
        sim, schedule, reliability="fec", seed=seed,
        group_timeout_s=0.1,
    )
    assert installed.burst_drops > 50
    submitted = rig.sender.messages_submitted
    delivered = rig.delivered_seqs()
    assert delivered == sorted(set(delivered))
    assert len(delivered) >= 0.85 * submitted
    fec = rig.receiver.fec
    assert fec.stats.reconstructed > 0
    # Position conservation: every submitted position was either
    # delivered or explicitly abandoned — the resequencer never wedges.
    assert len(delivered) + fec.stats.skipped == submitted
    assert not fec._pending


# --------------------------------------------------------------------- #
# hybrid: exactly-once under loss + crash, parity inside the envelope


@pytest.mark.parametrize("seed", range(30))
def test_hybrid_exactly_once_under_loss_and_crash(sim, seed):
    """30 seeds of persistent 8% loss plus a full channel crash window:
    hybrid keeps ARQ's guarantee — every submitted message delivered
    exactly once, in order — and total per-channel bytes (data + parity +
    retransmissions) stay inside the Theorem 3.2 fairness envelope."""
    stop_at = 0.8
    events = list(persistent_loss_schedule(N_CHANNELS, 0.08, until=stop_at))
    events.append(
        FaultEvent(
            time=0.2, channel=seed % N_CHANNELS, kind="crash", duration=0.15
        )
    )
    schedule = FaultSchedule(events)
    rig, installed = run_rig(
        sim, schedule, reliability="hybrid", seed=seed, drain=2.5,
    )
    assert installed.crash_drops > 100

    submitted = rig.sender.messages_submitted
    delivered = rig.delivered_seqs()
    # The closed-loop source stalls while the crash fills the ARQ window,
    # so volume is below the loss-only runs — but still substantial.
    assert submitted > 500
    assert delivered == sorted(set(delivered)), "not exactly-once in order"
    assert set(delivered) == set(range(submitted)), (
        f"lost {submitted - len(set(delivered))} of {submitted} messages"
    )
    arq = rig.sender.reliable
    assert not arq.unacked and not arq.backlog
    # FEC actually repaired holes locally (the crash window guarantees
    # multi-packet gaps; parity fills most of them without a round trip).
    assert rig.receiver.fec.stats.reconstructed > 0

    per_channel = [port.data_bytes_sent for port in rig.sender.ports]
    assert max(per_channel) - min(per_channel) <= FAIRNESS_ENVELOPE, (
        f"parity/retransmissions broke striping fairness: {per_channel}"
    )


@pytest.mark.parametrize("seed", range(5))
def test_hybrid_never_retransmits_more_than_pure_arq(sim, seed):
    """Same persistent-loss regime, same seed: the hybrid's local repairs
    strictly reduce the retransmission load the ARQ layer carries."""
    def run(reliability):
        local_sim = Simulator()
        schedule = persistent_loss_schedule(N_CHANNELS, 0.10, until=0.8)
        rig, _ = run_rig(
            local_sim, schedule, reliability=reliability, seed=seed,
            drain=2.5,
        )
        submitted = rig.sender.messages_submitted
        assert rig.delivered_seqs() == list(range(submitted))
        return rig.sender.reliable.stats.retransmissions

    arq_retx = run("reliable")
    hybrid_retx = run("hybrid")
    assert arq_retx > 0
    assert hybrid_retx <= arq_retx, (
        f"hybrid retransmitted more than pure ARQ "
        f"({hybrid_retx} > {arq_retx})"
    )


def test_hybrid_unrecoverable_groups_fall_back_to_arq(sim):
    """Loss heavier than the parity budget (m=1 at 20%): FEC alone cannot
    cover every group, yet nothing is lost — the ARQ backstop retransmits
    what parity could not rebuild."""
    schedule = persistent_loss_schedule(N_CHANNELS, 0.20, until=0.8)
    # The group timeout must beat the SACK fast-retransmit path (~2 ms
    # round trip here) to observe groups giving up: with a longer timeout
    # the ARQ repairs land first and every group resolves as recovered.
    rig, _ = run_rig(
        sim, schedule, reliability="hybrid", seed=11, drain=3.0,
        k=6, m=1, group_timeout_s=0.005,
    )
    submitted = rig.sender.messages_submitted
    delivered = rig.delivered_seqs()
    assert delivered == list(range(submitted))
    assert rig.receiver.fec.stats.unrecoverable_groups > 0
    assert rig.sender.reliable.stats.retransmissions > 0
    assert rig.receiver.fec.stats.reconstructed > 0
